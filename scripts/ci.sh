#!/usr/bin/env bash
# Local CI gate for the DPCopula workspace. Mirrors the tier-1 verify:
# release build, full test suite, and a smoke run of the experiment
# harness. Everything runs --offline: the workspace has zero registry
# dependencies (rngkit/testkit are in-repo), so this works in a hermetic
# container with no crates.io access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (offline, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --offline

echo "==> cargo test -q (offline)"
cargo test -q --offline

echo "==> bench-target compile check (offline)"
cargo check --workspace --all-targets --offline

echo "==> experiment-harness smoke: table02_domains"
QUICK=1 cargo run -p dpcopula-bench --release --offline --bin table02_domains

echo "==> dpcopula-cli smoke: fit-once/sample-many bit-identity"
CLI=target/release/dpcopula-cli
SMOKE="$(mktemp -d)"
SERVE_PID=""
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$SMOKE"' EXIT
"$CLI" gen --out "$SMOKE/census.csv" --records 2000 --seed 7
"$CLI" fit --input "$SMOKE/census.csv" --out "$SMOKE/model.dpcm" --epsilon 1.0 --seed 99
"$CLI" inspect --model "$SMOKE/model.dpcm" >/dev/null
"$CLI" sample --model "$SMOKE/model.dpcm" --out "$SMOKE/served.csv" --rows 1000 --workers 3
"$CLI" synth --input "$SMOKE/census.csv" --out "$SMOKE/synthed.csv" --rows 1000 \
    --epsilon 1.0 --seed 99
# Serving a saved artifact must reproduce in-process synthesis exactly.
diff "$SMOKE/served.csv" "$SMOKE/synthed.csv"
echo "    served rows are byte-identical to in-process synthesis"

echo "==> dpcopula-cli smoke: fast sampling profile"
# Fast is deterministic with itself (any worker count), draws a stream
# distinct from reference, and serves identically to in-process synth.
"$CLI" synth --input "$SMOKE/census.csv" --out "$SMOKE/fast-a.csv" --rows 1000 \
    --epsilon 1.0 --seed 99 --profile fast
"$CLI" synth --input "$SMOKE/census.csv" --out "$SMOKE/fast-b.csv" --rows 1000 \
    --epsilon 1.0 --seed 99 --profile fast --workers 3
diff "$SMOKE/fast-a.csv" "$SMOKE/fast-b.csv"
echo "    fast profile is byte-identical with itself across worker counts"
if cmp -s "$SMOKE/fast-a.csv" "$SMOKE/synthed.csv"; then
    echo "    fast profile unexpectedly reproduced the reference stream" >&2
    exit 1
fi
echo "    fast profile draws a stream distinct from reference"
"$CLI" sample --model "$SMOKE/model.dpcm" --out "$SMOKE/fast-served.csv" --rows 1000 \
    --workers 2 --profile fast
diff "$SMOKE/fast-served.csv" "$SMOKE/fast-a.csv"
echo "    fast served rows are byte-identical to in-process fast synthesis"

echo "==> distfit tier: fit-shard x4 + merge vs fit --shards 4 (byte identity)"
# Split the census CSV at the global shard boundaries (first rows%N
# shards take one extra row, like shard_specs), fit each part in its own
# process, merge the .dpcs artifacts, and demand the merged model is
# byte-identical to the single-process sharded fit.
"$CLI" fit --input "$SMOKE/census.csv" --out "$SMOKE/sharded.dpcm" \
    --epsilon 1.0 --seed 99 --shards 4
ROWS=$(( $(wc -l < "$SMOKE/census.csv") - 1 ))
BASE=$(( ROWS / 4 )); EXTRA=$(( ROWS % 4 )); START=0
for i in 0 1 2 3; do
    TAKE=$BASE
    [ "$i" -lt "$EXTRA" ] && TAKE=$(( BASE + 1 ))
    { head -n 1 "$SMOKE/census.csv"
      tail -n +2 "$SMOKE/census.csv" | sed -n "$(( START + 1 )),$(( START + TAKE ))p"
    } > "$SMOKE/part$i.csv"
    "$CLI" fit-shard --input "$SMOKE/part$i.csv" --out "$SMOKE/part$i.dpcs" \
        --shard-index "$i" --shards 4 --total-rows "$ROWS" --epsilon 1.0 --seed 99
    START=$(( START + TAKE ))
done
"$CLI" merge "$SMOKE/part0.dpcs" "$SMOKE/part1.dpcs" "$SMOKE/part2.dpcs" \
    "$SMOKE/part3.dpcs" --out "$SMOKE/merged.dpcm"
cmp "$SMOKE/merged.dpcm" "$SMOKE/sharded.dpcm"
echo "    fit-shard x4 + merge reproduces fit --shards 4 byte-for-byte"
# Degenerate single-shard form: one worker over the whole CSV must
# reproduce the plain (unsharded) fit of the same seed and budget.
"$CLI" fit-shard --input "$SMOKE/census.csv" --out "$SMOKE/whole.dpcs" \
    --shard-index 0 --shards 1 --total-rows "$ROWS" --epsilon 1.0 --seed 99
"$CLI" merge "$SMOKE/whole.dpcs" --out "$SMOKE/merged1.dpcm"
cmp "$SMOKE/merged1.dpcm" "$SMOKE/model.dpcm"
echo "    fit-shard x1 + merge reproduces the plain fit byte-for-byte"

echo "==> observability: CLI metrics smoke vs golden manifest"
# synth with a JSON snapshot; the emitted metric *names* must match the
# checked-in manifest exactly (taxonomy drift lands with a manifest
# update, never silently). Metrics must not perturb the release either.
"$CLI" synth --input "$SMOKE/census.csv" --out "$SMOKE/obs.csv" --rows 1000 \
    --epsilon 1.0 --seed 99 --metrics json --metrics-out "$SMOKE/obs.metrics.json"
diff "$SMOKE/obs.csv" "$SMOKE/synthed.csv"
echo "    synthesis with metrics on is byte-identical to metrics off"
sed -n 's/.*"id":"\([a-z_]*\).*/\1/p' "$SMOKE/obs.metrics.json" | sort -u \
    > "$SMOKE/metric_names.txt"
diff scripts/metrics_manifest.txt "$SMOKE/metric_names.txt"
echo "    metric names match scripts/metrics_manifest.txt"
# Prometheus rendering smoke: serving counters move and the exposition
# format carries TYPE headers.
"$CLI" sample --model "$SMOKE/model.dpcm" --out "$SMOKE/obs-served.csv" --rows 500 \
    --workers 2 --metrics prom --metrics-out "$SMOKE/obs.metrics.prom"
grep -q '^# TYPE serve_rows_total counter' "$SMOKE/obs.metrics.prom"
grep -q '^serve_rows_total 500' "$SMOKE/obs.metrics.prom"
echo "    prometheus exposition carries live serving counters"

echo "==> observability: stray-timing grep gate"
# All wall-clock timing flows through obskit (Stopwatch/Span); testkit's
# bench harness predates it and is the only other sanctioned caller.
if grep -rn --include='*.rs' 'Instant::now()' crates \
    | grep -v '^crates/obskit/' | grep -v '^crates/testkit/'; then
    echo "    stray Instant::now() outside obskit/testkit (use obskit::Stopwatch)" >&2
    exit 1
fi
echo "    no stray Instant::now() outside obskit/testkit"

echo "==> observability: disabled-sink overhead gate"
QUICK=1 cargo run -p dpcopula-bench --release --offline --bin bench_obskit

echo "==> serving-throughput regression gate (fast >= 4x reference)"
# bench_serving exits nonzero when the fast profile's sampling
# throughput falls below 4x the reference profile's. QUICK keeps the
# committed BENCH_serving.json untouched.
QUICK=1 cargo run -p dpcopula-bench --release --offline --bin bench_serving

echo "==> serve tier: daemon smoke over HTTP"
# Start the daemon on an ephemeral port over a model dir seeded with the
# CLI-fit artifact, wait for its listening line, then curl every route.
mkdir -p "$SMOKE/models"
cp "$SMOKE/model.dpcm" "$SMOKE/models/model.dpcm"
printf 'default = 1.5\n' > "$SMOKE/tenants.conf"
"$CLI" serve --model-dir "$SMOKE/models" --addr 127.0.0.1:0 \
    --tenants "$SMOKE/tenants.conf" > "$SMOKE/serve.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#^listening on http://##p' "$SMOKE/serve.log")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "    daemon never reported its address" >&2
    cat "$SMOKE/serve.log" >&2
    exit 1
fi
curl -sf "http://$ADDR/healthz" | grep -q '^ok$'
echo "    healthz answers"
# A window sampled over HTTP must be byte-identical to the CLI-served
# window from the same artifact (which itself matches in-process synth).
curl -sf -X POST "http://$ADDR/v1/sample" \
    -d '{"model":"model","offset":0,"rows":1000}' > "$SMOKE/http-served.csv"
diff "$SMOKE/http-served.csv" "$SMOKE/served.csv"
echo "    HTTP-served rows are byte-identical to CLI-served rows"
# Fit over HTTP: first fit fits in the tenant budget, the second must be
# refused with 429 (admission control), and sampling must keep serving.
# sed joins lines with literal \n; tr strips the real trailing newline
# sed appends, which would be a raw control byte inside the JSON string.
{ printf '{"id":"httpfit","epsilon":1.0,"seed":99,"csv":"'
  sed ':a;N;$!ba;s/\n/\\n/g' "$SMOKE/census.csv" | tr -d '\n'
  printf '\\n"}'; } > "$SMOKE/fit.json"
curl -sf -X POST "http://$ADDR/v1/fit" \
    -H 'Content-Type: application/json' --data-binary "@$SMOKE/fit.json" \
    | grep -q '"id":"httpfit"'
echo "    fit over HTTP releases a model"
FIT2_STATUS="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/fit" \
    -H 'Content-Type: application/json' --data-binary "@$SMOKE/fit.json")"
if [ "$FIT2_STATUS" != "429" ]; then
    echo "    expected 429 for the over-budget fit, got $FIT2_STATUS" >&2
    exit 1
fi
curl -sf -X POST "http://$ADDR/v1/sample" \
    -d '{"model":"httpfit","rows":10}' > /dev/null
echo "    exhausted tenant gets 429 on fit while sampling keeps serving"
curl -sf "http://$ADDR/v1/models" | grep -q '"id":"httpfit"'
echo "    model listing reflects the HTTP-fit artifact"
# The daemon's /metrics must expose exactly the manifest's metric names.
curl -sf "http://$ADDR/metrics" > "$SMOKE/serve.metrics.prom"
sed -n 's/^# TYPE \([a-z_]*\) .*/\1/p' "$SMOKE/serve.metrics.prom" | sort -u \
    > "$SMOKE/serve_metric_names.txt"
diff scripts/metrics_manifest.txt "$SMOKE/serve_metric_names.txt"
grep -q 'budget_rejections_total{tenant="default"} 1' "$SMOKE/serve.metrics.prom"
echo "    /metrics matches the manifest and counts the rejection"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "==> faults tier: deterministic fault-injection suite"
# Every faultline fault (slowloris head, stalled body, mid-body cut,
# split writes, seeded floods) must map to its pinned status code and
# metrics delta. This is the same binary `cargo test` already ran; the
# explicit invocation keeps the tier addressable on its own.
cargo test -q --offline -p integration-tests --test serving_faults

echo "==> faults tier: overload shed + lifecycle smoke against the live daemon"
# A daemon with a deliberately tiny sample gate, hit by 12 concurrent
# samples big enough to overlap: some must be admitted, the rest must
# shed as 503s that show up in server_shed_total. Then the model is
# DELETEd and must 404 afterwards.
"$CLI" serve --model-dir "$SMOKE/models" --addr 127.0.0.1:0 --max-inflight 2 \
    > "$SMOKE/faults.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#^listening on http://##p' "$SMOKE/faults.log")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "    faults daemon never reported its address" >&2
    cat "$SMOKE/faults.log" >&2
    exit 1
fi
rm -f "$SMOKE"/flood-*.code
CURL_PIDS=""
for i in $(seq 1 12); do
    curl -s -o /dev/null -w '%{http_code}\n' -X POST "http://$ADDR/v1/sample" \
        -d '{"model":"model","rows":300000}' > "$SMOKE/flood-$i.code" &
    CURL_PIDS="$CURL_PIDS $!"
done
for p in $CURL_PIDS; do wait "$p" || true; done
ADMITTED="$(cat "$SMOKE"/flood-*.code | grep -c '^200$' || true)"
SHED="$(cat "$SMOKE"/flood-*.code | grep -c '^503$' || true)"
if [ "$ADMITTED" -lt 1 ]; then
    echo "    flood expected at least one admitted sample, got $ADMITTED" >&2
    exit 1
fi
curl -sf "http://$ADDR/metrics" > "$SMOKE/faults.metrics.prom"
if ! grep -q 'server_shed_total{route="sample"} [1-9]' "$SMOKE/faults.metrics.prom"; then
    echo "    flood never moved server_shed_total (admitted=$ADMITTED shed=$SHED)" >&2
    exit 1
fi
echo "    flood: $ADMITTED admitted, $SHED shed, counter moved"
DEL_STATUS="$(curl -s -o /dev/null -w '%{http_code}' -X DELETE \
    "http://$ADDR/v1/models/model")"
if [ "$DEL_STATUS" != "200" ]; then
    echo "    expected 200 deleting the model, got $DEL_STATUS" >&2
    exit 1
fi
GONE_STATUS="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "http://$ADDR/v1/sample" -d '{"model":"model","rows":10}')"
if [ "$GONE_STATUS" != "404" ]; then
    echo "    expected 404 sampling a deleted model, got $GONE_STATUS" >&2
    exit 1
fi
echo "    DELETE invalidates the model and later samples 404"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "==> serve load-test regression gate (HTTP efficiency floor)"
# bench_serve exits nonzero when end-to-end HTTP sampling throughput
# falls below 15% of the in-process baseline. QUICK keeps the committed
# BENCH_serve.json untouched.
QUICK=1 cargo run -p dpcopula-bench --release --offline --bin bench_serve

echo "==> sharded-fit regression gates (merge overhead < 15%, shard speedup)"
# bench_pipeline exits nonzero when merging 4 shard summaries costs more
# than 15% of the single-shard fit, or (on hosts with >= 4 cores) when
# the 4-shard fit is under 2x the serial fit. QUICK keeps the committed
# BENCH_pipeline.json untouched.
QUICK=1 cargo run -p dpcopula-bench --release --offline --bin bench_pipeline

echo "==> statcheck smoke: empirical DP audit of every margin method"
# Exits nonzero if any registered mechanism exceeds its declared epsilon
# empirically, or if the broken-Laplace negative control goes undetected.
# STATCHECK_FULL=1 (or scripts/statcheck_full.sh) runs the deep sweep.
cargo run -p statcheck --release --offline --bin statcheck

echo "==> ci.sh: all green"
