#!/usr/bin/env bash
# Local CI gate for the DPCopula workspace. Mirrors the tier-1 verify:
# release build, full test suite, and a smoke run of the experiment
# harness. Everything runs --offline: the workspace has zero registry
# dependencies (rngkit/testkit are in-repo), so this works in a hermetic
# container with no crates.io access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (offline, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --offline

echo "==> cargo test -q (offline)"
cargo test -q --offline

echo "==> bench-target compile check (offline)"
cargo check --workspace --all-targets --offline

echo "==> experiment-harness smoke: table02_domains"
QUICK=1 cargo run -p dpcopula-bench --release --offline --bin table02_domains

echo "==> ci.sh: all green"
