#!/usr/bin/env bash
# Deep statistical acceptance sweep. The smoke tier in scripts/ci.sh
# audits every margin method at one epsilon with ~1.5k trials per arm;
# this wrapper re-runs the auditor at three epsilon levels with 15k
# trials per arm (tighter empirical-epsilon lower bounds), then runs the
# tier-2 statistical acceptance tests. Exits nonzero on any empirical
# budget violation or an undetected negative control.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> statcheck full sweep (3 epsilon levels, 15k trials/arm)"
STATCHECK_FULL=1 cargo run -p statcheck --release --offline --bin statcheck

echo "==> statcheck tier-2 acceptance tests"
cargo test -p statcheck --release --offline -q

echo "==> statcheck_full.sh: all green (see BENCH_statcheck.json)"
