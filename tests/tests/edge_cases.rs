//! Edge cases and failure injection across the whole stack: degenerate
//! domains, minimal datasets, extreme budgets, constant attributes, and
//! pathological margins must all either work or fail with the documented
//! error — never panic or emit invalid releases.

use dpcopula::empirical::MarginalDistribution;
use dpcopula::error::DpCopulaError;
use dpcopula::hybrid::{HybridConfig, HybridSynthesizer};
use dpcopula::sampler::CopulaSampler;
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig, MarginMethod};
use dpmech::Epsilon;
use mathkit::Matrix;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

fn all_margin_methods() -> Vec<MarginMethod> {
    vec![
        MarginMethod::Efpa,
        MarginMethod::EfpaDct,
        MarginMethod::Identity,
        MarginMethod::Privelet,
        MarginMethod::Php,
        MarginMethod::Hierarchical,
        MarginMethod::NoiseFirst,
    ]
}

#[test]
fn single_record_multi_attribute_errors_cleanly() {
    // Pairwise correlation needs two observations; this must be a typed
    // error, not a panic (code-review finding).
    let cols = vec![vec![0u32], vec![1u32]];
    let mut rng = StdRng::seed_from_u64(0);
    let err = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()))
        .synthesize(&cols, &[2, 2], &mut rng)
        .unwrap_err();
    assert!(matches!(
        err,
        DpCopulaError::TooFewRecords { records: 1, .. }
    ));
    // Single attribute with one record is fine (margins only).
    let ok = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()))
        .synthesize(&[vec![3u32]], &[5], &mut rng)
        .unwrap();
    assert_eq!(ok.columns[0].len(), 1);
}

#[test]
fn two_record_dataset_synthesizes() {
    let cols = vec![vec![0u32, 49], vec![49u32, 0]];
    let mut rng = StdRng::seed_from_u64(1);
    let out = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()))
        .synthesize(&cols, &[50, 50], &mut rng)
        .unwrap();
    assert_eq!(out.columns[0].len(), 2);
    assert!(out.columns.iter().flatten().all(|&v| v < 50));
}

#[test]
fn constant_attribute_is_handled() {
    // Kendall's tau over a constant column is 0 by the tie convention;
    // the pipeline must not divide by zero anywhere.
    let cols = vec![vec![7u32; 500], (0..500u32).map(|i| i % 90).collect()];
    let mut rng = StdRng::seed_from_u64(2);
    let out = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()))
        .synthesize(&cols, &[100, 90], &mut rng)
        .unwrap();
    assert!(out.correlation[(0, 1)].abs() <= 1.0);
    assert!(out.columns[1].iter().all(|&v| v < 90));
}

#[test]
fn extreme_budgets_do_not_break_structure() {
    let cols = vec![
        (0..300u32).map(|i| i % 40).collect::<Vec<_>>(),
        (0..300u32).map(|i| (i * 3) % 40).collect::<Vec<_>>(),
    ];
    for eps in [1e-6, 1e6] {
        let mut rng = StdRng::seed_from_u64(3);
        let out = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(eps).unwrap()))
            .synthesize(&cols, &[40, 40], &mut rng)
            .unwrap();
        assert_eq!(out.columns[0].len(), 300, "eps={eps}");
        assert!(out.columns.iter().flatten().all(|&v| v < 40));
        assert!(mathkit::cholesky::is_positive_definite(&out.correlation));
    }
}

#[test]
fn every_margin_method_survives_pathological_histograms() {
    let mut rng = StdRng::seed_from_u64(4);
    let eps = Epsilon::new(0.5).unwrap();
    let cases: Vec<Vec<f64>> = vec![
        vec![0.0; 17],                                       // all-empty bins
        vec![1e9, 0.0, 0.0, 0.0],                            // one giant spike
        vec![5.0],                                           // single bin
        (0..1020).map(|i| f64::from(i % 2) * 3.0).collect(), // oscillating
    ];
    for counts in &cases {
        for method in all_margin_methods() {
            let out = method.publish(counts, eps, &mut rng);
            assert_eq!(
                out.len(),
                counts.len(),
                "{method:?} on {} bins",
                counts.len()
            );
            assert!(
                out.iter().all(|v| v.is_finite()),
                "{method:?} produced non-finite output"
            );
        }
    }
}

#[test]
fn marginal_distribution_handles_all_zero_and_spikes() {
    // All-noise-negative margins fall back to uniform; spikes dominate.
    let m = MarginalDistribution::from_noisy_histogram(&[-3.0, -1.0, -9.0]);
    let mut rng = StdRng::seed_from_u64(5);
    let s = CopulaSampler::new(&Matrix::identity(1), vec![m]).unwrap();
    let cols = s.sample_columns(3_000, &mut rng);
    // Uniform fallback: all three values appear.
    for v in 0..3u32 {
        assert!(cols[0].contains(&v), "value {v} missing");
    }
}

#[test]
fn hybrid_with_empty_partitions_emits_only_noise_counts() {
    // One binary attribute where value 1 never occurs: its partition is
    // empty, gets a pure-noise count, and must still produce valid rows
    // (or be skipped when the noisy count rounds to zero).
    let n = 1_000;
    let cols = vec![
        vec![0u32; n],
        (0..n as u32).map(|i| i % 64).collect::<Vec<_>>(),
    ];
    let mut rng = StdRng::seed_from_u64(6);
    let base = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let out = HybridSynthesizer::new(HybridConfig::new(base))
        .synthesize(&cols, &[2, 64], &mut rng)
        .unwrap();
    assert_eq!(out.partitions, 2);
    // Any rows with the never-seen value must still be in-domain.
    assert!(out.columns[1].iter().all(|&v| v < 64));
    let phantom = out.columns[0].iter().filter(|&&g| g == 1).count();
    assert!(phantom < 50, "phantom partition emitted {phantom} rows");
}

#[test]
fn mle_error_is_reported_not_panicked() {
    // Too little data for the Auto partition rule must surface the typed
    // error through the full pipeline.
    let cols = vec![vec![1u32, 2, 3, 4], vec![4u32, 3, 2, 1]];
    let mut rng = StdRng::seed_from_u64(7);
    let config = DpCopulaConfig::mle(Epsilon::new(0.1).unwrap());
    let err = DpCopula::new(config)
        .synthesize(&cols, &[10, 10], &mut rng)
        .unwrap_err();
    assert!(matches!(err, DpCopulaError::InsufficientDataForMle { .. }));
}

#[test]
fn domain_of_one_is_degenerate_but_valid() {
    // An attribute with a single possible value: margins are trivially
    // exact, correlation is meaningless but must stay in range.
    let cols = vec![vec![0u32; 200], (0..200u32).map(|i| i % 30).collect()];
    let mut rng = StdRng::seed_from_u64(8);
    let out = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()))
        .synthesize(&cols, &[1, 30], &mut rng)
        .unwrap();
    assert!(out.columns[0].iter().all(|&v| v == 0));
}

#[test]
fn output_records_zero_produces_empty_release() {
    let cols = vec![vec![0u32, 1, 2], vec![2u32, 1, 0]];
    let mut rng = StdRng::seed_from_u64(9);
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()).with_output_records(0);
    let out = DpCopula::new(config)
        .synthesize(&cols, &[3, 3], &mut rng)
        .unwrap();
    assert!(out.columns.iter().all(Vec::is_empty));
}
