//! Cross-crate consistency of the range-count estimators: with a huge
//! privacy budget every published structure must converge to the exact
//! scan answer, and the different exact evaluation paths must agree.

use dphist::fp::FpSummary;
use dphist::histogram::{scan_range_count, HistogramNd};
use dphist::identity::NoisyGrid;
use dphist::prefix::PrefixGrid;
use dphist::privelet::PriveletPlus;
use dphist::psd::{Psd, PsdConfig};
use dphist::{DimRange, RangeCountEstimator};
use dpmech::Epsilon;
use queryeval::{RangeQuery, Workload};
use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};

fn clustered_data(n: usize, m: usize, domain: u32, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|j| {
            (0..n)
                .map(|_| {
                    let c = (j as u32 * 13) % domain;
                    (c + rng.gen_range(0..domain / 4)) % domain
                })
                .collect()
        })
        .collect()
}

#[test]
fn exact_paths_agree() {
    let cols = clustered_data(2_000, 3, 40, 1);
    let domains = vec![40usize; 3];
    let h = HistogramNd::from_columns(&cols, &domains);
    let p = PrefixGrid::from_histogram(&h);
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..100 {
        let q: Vec<DimRange> = domains
            .iter()
            .map(|&d| {
                let a = rng.gen_range(0..d as u32);
                let b = rng.gen_range(0..d as u32);
                (a.min(b), a.max(b))
            })
            .collect();
        let scan = scan_range_count(&cols, &q);
        assert_eq!(h.range_sum(&q), scan);
        assert!((p.range_sum(&q) - scan).abs() < 1e-9);
        let rq = RangeQuery::new(q.clone());
        assert_eq!(rq.count(&cols), scan);
    }
}

#[test]
fn all_estimators_converge_with_huge_budget() {
    let cols = clustered_data(5_000, 2, 64, 3);
    let domains = vec![64usize, 64];
    let eps = Epsilon::new(1e5).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let workload = Workload::random(&domains, 50, &mut rng);
    let truth = workload.true_counts(&cols);

    let exact = HistogramNd::from_columns(&cols, &domains);

    let mut estimators: Vec<(&str, Box<dyn RangeCountEstimator>)> = vec![
        (
            "noisy-grid",
            Box::new(NoisyGrid::publish(&exact, eps, &mut rng)),
        ),
        (
            "psd",
            Box::new(Psd::publish(
                &cols,
                &domains,
                eps,
                PsdConfig::default(),
                &mut rng,
            )),
        ),
        (
            "privelet+",
            Box::new(PriveletPlus::publish(cols.clone(), &domains, eps, 11)),
        ),
        (
            "fp",
            Box::new(FpSummary::publish(
                &cols,
                &domains,
                eps,
                Some(0.5),
                &mut rng,
            )),
        ),
    ];
    for (name, est) in &mut estimators {
        let answers = workload.estimate_with(|q| est.range_count(q.ranges()));
        if *name == "psd" {
            // PSD keeps a *structural* estimation error even without
            // noise: partially-overlapped leaves are answered under a
            // uniformity assumption (the paper's "estimation error").
            // Assert aggregate quality instead of per-query exactness.
            let summary = queryeval::ErrorSummary::from_answers(&answers, &truth, 50.0);
            assert!(
                summary.mean_relative < 1.0,
                "psd aggregate relative error {}",
                summary.mean_relative
            );
        } else {
            for (a, t) in answers.iter().zip(&truth) {
                assert!(
                    (a - t).abs() <= 1.0 + t * 0.01,
                    "{name}: answer {a} vs truth {t}"
                );
            }
        }
    }
}

#[test]
fn estimators_report_dims() {
    let cols = clustered_data(100, 4, 16, 5);
    let domains = vec![16usize; 4];
    let mut rng = StdRng::seed_from_u64(6);
    let eps = Epsilon::new(1.0).unwrap();
    assert_eq!(
        Psd::publish(&cols, &domains, eps, PsdConfig::default(), &mut rng).dims(),
        4
    );
    assert_eq!(
        PriveletPlus::publish(cols.clone(), &domains, eps, 1).dims(),
        4
    );
    assert_eq!(
        FpSummary::publish(&cols, &domains, eps, None, &mut rng).dims(),
        4
    );
}
