//! Empirical verification of the convergence theorems (§4.3): as the
//! cardinality grows, the DP synthetic data converges to the original in
//! margins (Lemma 4.1 of §4.3) and dependence (Lemma 4.2 / Theorem 4.3).

use datagen::synthetic::{MarginKind, SyntheticSpec};
use dpcopula::convergence::ConvergenceReport;
use dpcopula::kendall::{dp_kendall_tau, kendall_tau};
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig, MarginMethod};
use dpmech::Epsilon;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

fn report_at(n: usize) -> ConvergenceReport {
    let data = SyntheticSpec {
        records: n,
        dims: 3,
        domain: 300,
        margin: MarginKind::Gaussian,
        rho: 0.6,
        seed: 99,
    }
    .generate();
    // Average the distances over a few releases.
    let mut ks_acc = [0.0; 3];
    let mut tau_acc = 0.0;
    let runs = 3;
    for s in 0..runs {
        let mut rng = StdRng::seed_from_u64(1000 + s);
        let config =
            DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()).with_margin(MarginMethod::Php);
        let out = DpCopula::new(config)
            .synthesize(data.columns(), &data.domains(), &mut rng)
            .unwrap();
        let r = ConvergenceReport::compare(data.columns(), &out.columns);
        for (acc, v) in ks_acc.iter_mut().zip(&r.marginal_ks) {
            *acc += v;
        }
        tau_acc += r.max_tau_gap;
    }
    ConvergenceReport {
        marginal_ks: ks_acc.iter().map(|v| v / runs as f64).collect(),
        max_tau_gap: tau_acc / runs as f64,
    }
}

#[test]
fn margins_and_dependence_converge_with_n() {
    let small = report_at(500);
    let large = report_at(20_000);
    assert!(
        large.max_marginal_ks() < small.max_marginal_ks(),
        "marginal KS should shrink: {} -> {}",
        small.max_marginal_ks(),
        large.max_marginal_ks()
    );
    assert!(
        large.max_tau_gap < small.max_tau_gap + 0.02,
        "tau gap should not grow: {} -> {}",
        small.max_tau_gap,
        large.max_tau_gap
    );
    // At 20k records and eps=1, both distances should be genuinely small.
    // The tau bound leaves ~3x headroom over the per-pair noise scale
    // (4/(n_hat+1) / eps_pair ~ 0.04 under Auto sampling) so it holds for
    // any fixed seeding discipline, not just a lucky draw.
    assert!(
        large.max_marginal_ks() < 0.1,
        "KS {}",
        large.max_marginal_ks()
    );
    assert!(large.max_tau_gap < 0.15, "tau gap {}", large.max_tau_gap);
}

#[test]
fn noisy_kendall_converges_to_exact_kendall() {
    // Lemma 4.2: |tau~ - tau| -> 0 as n grows (noise is 4/((n+1) eps)).
    let eps = Epsilon::new(0.5).unwrap();
    let deviation_at = |n: u32| -> f64 {
        let x: Vec<u32> = (0..n).collect();
        let y: Vec<u32> = x.iter().map(|&v| v / 2).collect();
        let exact = kendall_tau(&x, &y);
        let mut rng = StdRng::seed_from_u64(5);
        (0..30)
            .map(|_| (dp_kendall_tau(&x, &y, eps, &mut rng) - exact).abs())
            .sum::<f64>()
            / 30.0
    };
    let small = deviation_at(100);
    let large = deviation_at(10_000);
    assert!(
        large < small / 10.0,
        "noise should shrink ~1/n: n=100 gives {small}, n=10000 gives {large}"
    );
}

#[test]
fn synthetic_tau_tracks_original_tau() {
    // Theorem 4.3's practical content: dependence observable in the
    // synthetic data matches the original's.
    let data = SyntheticSpec {
        records: 15_000,
        dims: 2,
        domain: 500,
        margin: MarginKind::Gaussian,
        rho: 0.8,
        seed: 3,
    }
    .generate();
    let t_orig = kendall_tau(&data.columns()[0], &data.columns()[1]);
    let mut rng = StdRng::seed_from_u64(1);
    let config = DpCopulaConfig::kendall(Epsilon::new(2.0).unwrap());
    let out = DpCopula::new(config)
        .synthesize(data.columns(), &data.domains(), &mut rng)
        .unwrap();
    let t_synth = kendall_tau(&out.columns[0], &out.columns[1]);
    assert!(
        (t_orig - t_synth).abs() < 0.08,
        "original tau {t_orig} vs synthetic {t_synth}"
    );
}
