//! The observability contract of the staged engine: the deterministic
//! view of a run's metrics snapshot is bit-identical at any worker
//! count, the instrumentation emits no series outside the registered
//! taxonomy, and the per-stage timings the engine reports are exactly
//! the span histograms in the snapshot.

use dpcopula::{DpCopulaConfig, EngineOptions, SynthesisRequest};
use dpmech::Epsilon;
use obskit::{MetricsRegistry, MetricsSink, Snapshot};
use std::sync::Arc;

const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

fn run_with_workers(workers: usize) -> (Snapshot, dpcopula::engine::PipelineReport) {
    let data = datagen::census::us_census(2_000, 0xdec0);
    let domains = data.domains();
    let registry = Arc::new(MetricsRegistry::new());
    obskit::names::register_taxonomy(&registry);
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).expect("positive epsilon"));
    let (_, report) = SynthesisRequest::from_config(data.columns(), &domains, config)
        .engine(EngineOptions::with_workers(workers))
        .seed(0x5eed)
        .metrics(MetricsSink::to_registry(registry.clone()))
        .run()
        .expect("census synthesis succeeds");
    (registry.snapshot(), report)
}

#[test]
fn deterministic_snapshot_is_identical_across_worker_counts() {
    let (reference, _) = run_with_workers(WORKER_COUNTS[0]);
    let reference_json = reference.deterministic().to_json();
    for &workers in &WORKER_COUNTS[1..] {
        let (snap, _) = run_with_workers(workers);
        assert_eq!(
            snap.deterministic().to_json(),
            reference_json,
            "deterministic metrics diverged at {workers} workers"
        );
    }
}

#[test]
fn run_emits_no_series_outside_the_taxonomy() {
    let taxonomy = MetricsRegistry::new();
    obskit::names::register_taxonomy(&taxonomy);
    let expected = taxonomy.snapshot().names();
    for &workers in &WORKER_COUNTS {
        let (snap, _) = run_with_workers(workers);
        assert_eq!(
            snap.names(),
            expected,
            "series set drifted from the registered taxonomy at {workers} workers"
        );
    }
}

#[test]
fn snapshot_covers_every_stage_with_live_values() {
    let (snap, _) = run_with_workers(2);
    // Each pipeline stage span fired exactly once.
    for stage in obskit::names::STAGES {
        let id = obskit::series_id(obskit::SPAN_NS, &[("span", &format!("pipeline/{stage}"))]);
        let hist = snap
            .get(&id)
            .and_then(|e| e.value.as_hist())
            .unwrap_or_else(|| panic!("missing span histogram {id}"));
        assert_eq!(hist.count, 1, "stage {stage} span should fire once");
    }
    // The budget ledger debited the two budgeted stages.
    for stage in ["margins", "correlation"] {
        let id = obskit::series_id(obskit::names::BUDGET_SPENDS_TOTAL, &[("stage", stage)]);
        let spends = snap.get(&id).and_then(|e| e.value.as_u64()).unwrap_or(0);
        assert!(spends > 0, "no budget debits recorded for {stage}");
        let id = obskit::series_id(
            obskit::names::NOISE_DRAWS_TOTAL,
            &[("stage", stage), ("mech", "laplace")],
        );
        let draws = snap.get(&id).and_then(|e| e.value.as_u64()).unwrap_or(0);
        assert!(draws > 0, "no laplace draws recorded for {stage}");
    }
    // Fan-out stages pushed tasks through parkit.
    for stage in ["margins", "correlation", "sampling"] {
        let id = obskit::series_id(obskit::names::PARKIT_TASKS_TOTAL, &[("stage", stage)]);
        let tasks = snap.get(&id).and_then(|e| e.value.as_u64()).unwrap_or(0);
        assert!(tasks > 0, "no parkit tasks recorded for {stage}");
    }
    // The run-level counters saw exactly this run.
    let runs = snap
        .get(obskit::names::PIPELINE_RUNS_TOTAL)
        .and_then(|e| e.value.as_u64());
    assert_eq!(runs, Some(1));
}

#[test]
fn reported_timings_equal_the_span_histograms() {
    let (snap, report) = run_with_workers(2);
    let from_snapshot = dpcopula::engine::StageTimings::from_snapshot(&snap);
    for (&(name, reported), (snap_name, derived)) in
        report.timings.stages().iter().zip(from_snapshot.stages())
    {
        assert_eq!(name, snap_name);
        assert_eq!(
            reported, derived,
            "stage {name}: report says {reported:?}, snapshot says {derived:?}"
        );
    }
}
