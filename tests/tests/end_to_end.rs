//! End-to-end integration: the full DPCopula pipeline on every dataset
//! family in the workspace, checked for structural validity and, with a
//! generous budget, for actual utility.

use datagen::census::{brazil_census, us_census};
use datagen::synthetic::{MarginKind, SyntheticSpec};
use dpcopula::hybrid::{HybridConfig, HybridSynthesizer};
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig, MarginMethod};
use dpmech::Epsilon;
use queryeval::{ErrorSummary, Workload};
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

fn assert_valid_release(columns: &[Vec<u32>], domains: &[usize], expect_n: usize, tol: f64) {
    assert_eq!(columns.len(), domains.len());
    let n = columns[0].len();
    assert!(
        (n as f64 - expect_n as f64).abs() <= tol * expect_n as f64 + 50.0,
        "cardinality {n} too far from {expect_n}"
    );
    for (col, &d) in columns.iter().zip(domains) {
        assert_eq!(col.len(), n);
        assert!(col.iter().all(|&v| (v as usize) < d), "domain violation");
    }
}

#[test]
fn synthetic_families_round_trip() {
    for margin in [
        MarginKind::Gaussian,
        MarginKind::Uniform,
        MarginKind::Zipf(1.2),
    ] {
        let data = SyntheticSpec {
            records: 3_000,
            dims: 4,
            domain: 200,
            margin,
            ..Default::default()
        }
        .generate();
        let mut rng = StdRng::seed_from_u64(1);
        let out = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()))
            .synthesize(data.columns(), &data.domains(), &mut rng)
            .unwrap();
        assert_valid_release(&out.columns, &data.domains(), data.len(), 0.0);
    }
}

#[test]
fn us_census_hybrid_release() {
    let data = us_census(20_000, 3);
    let base = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let mut rng = StdRng::seed_from_u64(2);
    let out = HybridSynthesizer::new(HybridConfig::new(base))
        .synthesize(data.columns(), &data.domains(), &mut rng)
        .unwrap();
    // Gender is the only small-domain attribute: 2 partitions.
    assert_eq!(out.partitions, 2);
    assert_eq!(out.small_attributes, vec![3]);
    assert_valid_release(&out.columns, &data.domains(), data.len(), 0.02);
}

#[test]
fn brazil_census_hybrid_release() {
    let data = brazil_census(20_000, 4);
    let base = DpCopulaConfig::kendall(Epsilon::new(2.0).unwrap()).with_margin(MarginMethod::Php);
    let mut rng = StdRng::seed_from_u64(5);
    let out = HybridSynthesizer::new(HybridConfig::new(base))
        .synthesize(data.columns(), &data.domains(), &mut rng)
        .unwrap();
    // Three binary attributes: 8 partitions.
    assert_eq!(out.partitions, 8);
    assert_eq!(out.small_attributes, vec![1, 2, 3]);
    assert_valid_release(&out.columns, &data.domains(), data.len(), 0.02);
}

#[test]
fn generous_budget_gives_low_query_error() {
    let data = SyntheticSpec {
        records: 20_000,
        dims: 3,
        domain: 500,
        margin: MarginKind::Gaussian,
        ..Default::default()
    }
    .generate();
    let mut rng = StdRng::seed_from_u64(6);
    let workload = Workload::random(&data.domains(), 200, &mut rng);
    let truth = workload.true_counts(data.columns());

    let config =
        DpCopulaConfig::kendall(Epsilon::new(10.0).unwrap()).with_margin(MarginMethod::Php);
    let out = DpCopula::new(config)
        .synthesize(data.columns(), &data.domains(), &mut rng)
        .unwrap();
    let answers = workload.estimate_with(|q| q.count(&out.columns));
    let summary = ErrorSummary::from_answers(&answers, &truth, 1.0);
    assert!(
        summary.mean_relative < 0.6,
        "relative error {} too high for eps=10",
        summary.mean_relative
    );
}

#[test]
fn error_grows_as_budget_shrinks() {
    let data = SyntheticSpec {
        records: 10_000,
        dims: 2,
        domain: 300,
        margin: MarginKind::Gaussian,
        ..Default::default()
    }
    .generate();
    let mut rng = StdRng::seed_from_u64(7);
    let workload = Workload::random(&data.domains(), 200, &mut rng);
    let truth = workload.true_counts(data.columns());

    let rel_at = |eps: f64| -> f64 {
        let mut total = 0.0;
        for s in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(70 + s);
            let config =
                DpCopulaConfig::kendall(Epsilon::new(eps).unwrap()).with_margin(MarginMethod::Php);
            let out = DpCopula::new(config)
                .synthesize(data.columns(), &data.domains(), &mut rng)
                .unwrap();
            let answers = workload.estimate_with(|q| q.count(&out.columns));
            total += ErrorSummary::from_answers(&answers, &truth, 1.0).mean_relative;
        }
        total / 3.0
    };
    let tight = rel_at(0.01);
    let loose = rel_at(10.0);
    assert!(
        tight > loose,
        "error at eps=0.01 ({tight}) should exceed error at eps=10 ({loose})"
    );
}
