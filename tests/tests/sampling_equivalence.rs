//! Statistical equivalence of the two sampling profiles.
//!
//! The `Fast` profile (ziggurat normals + blocked Cholesky + quantile
//! lookup tables) deliberately draws a *different* random stream than
//! `Reference`, so it can never be compared byte-for-byte. Its contract
//! is **distributional equality**: both profiles sample the same fitted
//! DP model, so at matching sizes their outputs must agree as samples —
//! per-margin goodness of fit against the model's own distribution,
//! two-sample closeness between the profiles, and matching dependence
//! structure. This tier pins that contract for every margin method in
//! the registry, at fixed seeds with in-crate critical values, so a
//! regression in any fast-path kernel (ziggurat tails, table edges,
//! blocked apply ordering) shows up as a statistical rejection.

use datagen::census::us_census;
use dpcopula::empirical::MarginalDistribution;
use dpcopula::kendall::kendall_tau;
use dpcopula::synthesizer::{DpCopulaConfig, MarginMethod};
use dpcopula::{FittedModel, SamplingProfile, SynthesisRequest};
use dpmech::Epsilon;
use mathkit::Matrix;
use statcheck::{
    chi_square_critical, chi_square_statistic, correlation_mean_abs_error, ks_critical,
};

/// Rows served per profile. Large enough that the GoF tests have real
/// power against tail defects, small enough for a debug-mode test run.
const N_SERVE: usize = 30_000;

/// Per-comparison significance. The harness runs ~100 fixed-seed
/// comparisons; at 1e-4 each a correct implementation passes with
/// probability ≈ 99%, and the seeds are pinned so a pass is permanent.
const ALPHA: f64 = 1e-4;

/// Every registered margin method — the whole `MarginRegistry` surface.
const METHODS: [MarginMethod; 8] = [
    MarginMethod::Efpa,
    MarginMethod::EfpaDct,
    MarginMethod::Identity,
    MarginMethod::Privelet,
    MarginMethod::Php,
    MarginMethod::Hierarchical,
    MarginMethod::NoiseFirst,
    MarginMethod::StructureFirst,
];

fn fit(method: MarginMethod) -> FittedModel {
    let data = us_census(4_000, 42);
    let config = DpCopulaConfig::kendall(Epsilon::new(2.0).unwrap()).with_margin(method);
    let (model, _) = SynthesisRequest::from_config(data.columns(), &data.domains(), config)
        .seed(1234)
        .fit()
        .unwrap_or_else(|e| panic!("fit failed for {method:?}: {e}"));
    model
}

/// Pools adjacent bins until each pooled bin has expectation >= 5
/// (Cochran's rule), so the chi-square statistic's asymptotics hold even
/// on the census's long sparse tails (income domain 1020).
fn pool_bins(observed: &[f64], expected: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut obs = Vec::new();
    let mut exp = Vec::new();
    let (mut o_acc, mut e_acc) = (0.0, 0.0);
    for (&o, &e) in observed.iter().zip(expected) {
        o_acc += o;
        e_acc += e;
        if e_acc >= 5.0 {
            obs.push(o_acc);
            exp.push(e_acc);
            o_acc = 0.0;
            e_acc = 0.0;
        }
    }
    if o_acc > 0.0 || e_acc > 0.0 {
        match (obs.last_mut(), exp.last_mut()) {
            (Some(lo), Some(le)) => {
                *lo += o_acc;
                *le += e_acc;
            }
            _ => {
                obs.push(o_acc);
                exp.push(e_acc);
            }
        }
    }
    (obs, exp)
}

/// Chi-square GoF of one served column against the model's own marginal
/// pmf — the distribution both profiles are contractually sampling.
fn assert_margin_gof(label: &str, column: &[u32], margin: &MarginalDistribution) {
    let n = column.len() as f64;
    let domain = margin.domain();
    let mut observed = vec![0.0; domain];
    for &v in column {
        observed[v as usize] += 1.0;
    }
    let expected: Vec<f64> = (0..domain as u32).map(|k| n * margin.pmf(k)).collect();
    let (obs, exp) = pool_bins(&observed, &expected);
    assert!(obs.len() >= 2, "{label}: margin collapsed to one bin");
    let stat = chi_square_statistic(&obs, &exp);
    let critical = chi_square_critical(obs.len() - 1, ALPHA);
    assert!(
        stat < critical,
        "{label}: chi-square {stat:.2} >= critical {critical:.2} (df {})",
        obs.len() - 1
    );
}

/// Two-sample KS between the fast and reference draws of one attribute:
/// the supremum over the (discrete) support of the distance between the
/// two empirical CDFs, both taken right-continuous. (`ks_statistic` is
/// the *continuous* one-sample form — on heavily tied integer data it
/// compares one CDF post-jump against the other pre-jump, inflating the
/// statistic by the largest bin's pmf, so the sup is computed directly
/// here.) Equal sample sizes, so the critical value is the one-sample
/// `c(alpha)/sqrt(n)` scaled by `sqrt(2)`; discreteness only makes the
/// threshold conservative.
fn assert_two_sample_ks(label: &str, fast: &[u32], reference: &[u32], domain: usize) {
    assert_eq!(fast.len(), reference.len());
    let n = fast.len() as f64;
    let mut fast_counts = vec![0u32; domain];
    let mut ref_counts = vec![0u32; domain];
    for &v in fast {
        fast_counts[v as usize] += 1;
    }
    for &v in reference {
        ref_counts[v as usize] += 1;
    }
    let (mut d, mut cum_fast, mut cum_ref) = (0.0f64, 0.0, 0.0);
    for k in 0..domain {
        cum_fast += fast_counts[k] as f64;
        cum_ref += ref_counts[k] as f64;
        d = d.max((cum_fast - cum_ref).abs() / n);
    }
    let critical = ks_critical(fast.len(), ALPHA) * 2f64.sqrt();
    assert!(
        d < critical,
        "{label}: two-sample KS {d:.5} >= critical {critical:.5}"
    );
}

/// Kendall-tau matrix of a served sample — the dependence structure a
/// profile actually realised.
fn tau_matrix(columns: &[Vec<u32>]) -> Matrix {
    let d = columns.len();
    let mut m = Matrix::identity(d);
    for i in 0..d {
        for j in i + 1..d {
            let t = kendall_tau(&columns[i], &columns[j]);
            m[(i, j)] = t;
            m[(j, i)] = t;
        }
    }
    m
}

#[test]
fn fast_profile_is_distributionally_equal_to_reference_for_every_margin_method() {
    for method in METHODS {
        let model = fit(method);
        let reference = model.sample_range(0, N_SERVE, 2);
        let fast = model.sample_range_profiled(SamplingProfile::Fast, 0, N_SERVE, 3);

        let margins: Vec<MarginalDistribution> = model
            .artifact()
            .margins
            .iter()
            .map(|h| MarginalDistribution::from_noisy_histogram(h))
            .collect();

        for (j, margin) in margins.iter().enumerate() {
            let label = format!("{method:?} attr {j}");
            // Both profiles must fit the model's marginal distribution…
            assert_margin_gof(&format!("{label} fast"), &fast[j], margin);
            assert_margin_gof(&format!("{label} reference"), &reference[j], margin);
            // …and each other.
            assert_two_sample_ks(&label, &fast[j], &reference[j], margin.domain());
        }

        // Correlation recovery: both profiles realise the same dependence
        // structure (they share the one DP correlation matrix).
        let mae = correlation_mean_abs_error(&tau_matrix(&reference), &tau_matrix(&fast));
        assert!(
            mae < 0.05,
            "{method:?}: kendall-tau MAE between profiles {mae:.4} >= 0.05"
        );
    }
}

#[test]
fn both_profiles_stay_within_attribute_domains() {
    let model = fit(MarginMethod::Efpa);
    let domains = model.domains();
    for profile in [SamplingProfile::Reference, SamplingProfile::Fast] {
        let cols = model.sample_range_profiled(profile, 0, 5_000, 2);
        for (col, &d) in cols.iter().zip(&domains) {
            assert_eq!(col.len(), 5_000);
            assert!(
                col.iter().all(|&v| (v as usize) < d),
                "{profile:?} violated domain {d}"
            );
        }
    }
}
