//! Integration tests for the future-work extensions: t copula, AIC
//! family selection, the evolving synthesizer, and the empirical-copula
//! diagnostic — exercised together across crates.

use dpcopula::empirical::MarginalDistribution;
use dpcopula::empirical_copula::EmpiricalCopula;
use dpcopula::evolving::EvolvingSynthesizer;
use dpcopula::selection::{synthesize_adaptive, AdaptiveConfig, CopulaFamily};
use dpcopula::synthesizer::{DpCopulaConfig, MarginMethod};
use dpcopula::tcopula::TCopulaSampler;
use dpmech::Epsilon;
use mathkit::correlation::equicorrelation;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

fn uniform_margin(domain: usize) -> MarginalDistribution {
    MarginalDistribution::from_noisy_histogram(&vec![1.0; domain])
}

#[test]
fn adaptive_synthesizer_preserves_empirical_copula() {
    // Generate from a t copula, synthesize adaptively, and verify the
    // empirical-copula distance between original and release is small —
    // the cross-module sanity check tying selection + sampling together.
    let p = equicorrelation(2, 0.6);
    let gen = TCopulaSampler::new(&p, 4.0, vec![uniform_margin(300), uniform_margin(300)]).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let data = gen.sample_columns(10_000, &mut rng);

    let config = AdaptiveConfig::new(
        DpCopulaConfig::kendall(Epsilon::new(4.0).unwrap()).with_margin(MarginMethod::Php),
    );
    let out = synthesize_adaptive(&config, &data, &[300, 300], &mut rng).unwrap();

    let c_orig = EmpiricalCopula::from_columns(&data);
    let c_synth = EmpiricalCopula::from_columns(&out.synthesis.columns);
    let d = c_orig.sup_distance(&c_synth, 6);
    assert!(d < 0.08, "empirical copula distance {d}");
}

#[test]
fn family_selection_is_part_of_the_budget() {
    let p = equicorrelation(2, 0.5);
    let gen = TCopulaSampler::new(&p, 5.0, vec![uniform_margin(100), uniform_margin(100)]).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let data = gen.sample_columns(5_000, &mut rng);

    let total = 2.0;
    let mut config = AdaptiveConfig::new(DpCopulaConfig::kendall(Epsilon::new(total).unwrap()));
    config.selection_fraction = 0.25;
    let out = synthesize_adaptive(&config, &data, &[100, 100], &mut rng).unwrap();
    let downstream = out.synthesis.epsilon_margins + out.synthesis.epsilon_correlations;
    assert!(
        (downstream - total * 0.75).abs() < 1e-9,
        "downstream budget {downstream}"
    );
}

#[test]
fn evolving_stream_is_structurally_valid_per_epoch() {
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let mut ev = EvolvingSynthesizer::new(config, 0.5);
    let mut rng = StdRng::seed_from_u64(3);
    let p = equicorrelation(3, 0.4);
    let gen = dpcopula::sampler::CopulaSampler::new(
        &p,
        vec![uniform_margin(50), uniform_margin(50), uniform_margin(50)],
    )
    .unwrap();
    for _ in 0..3 {
        let cols = gen.sample_columns(1_500, &mut rng);
        let out = ev.process_epoch(&cols, &[50, 50, 50], &mut rng).unwrap();
        assert_eq!(out.columns.len(), 3);
        assert_eq!(out.columns[0].len(), 1_500);
        assert!(out.columns.iter().flatten().all(|&v| v < 50));
        assert!(mathkit::cholesky::is_positive_definite(&out.correlation));
    }
    assert_eq!(ev.epochs(), 3);
}

#[test]
fn gaussian_data_keeps_gaussian_family_end_to_end() {
    let p = equicorrelation(2, 0.5);
    let gen =
        dpcopula::sampler::CopulaSampler::new(&p, vec![uniform_margin(200), uniform_margin(200)])
            .unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let data = gen.sample_columns(12_000, &mut rng);
    let mut config = AdaptiveConfig::new(DpCopulaConfig::kendall(Epsilon::new(8.0).unwrap()));
    // Only two sharply separated candidates to keep selection noise low.
    config.candidates = vec![CopulaFamily::Gaussian, CopulaFamily::StudentT { df: 2.5 }];
    let out = synthesize_adaptive(&config, &data, &[200, 200], &mut rng).unwrap();
    assert_eq!(
        out.family,
        CopulaFamily::Gaussian,
        "scores {:?}",
        out.scores
    );
}
