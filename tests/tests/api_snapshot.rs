//! Pins the public API surface of the workspace's exported crates.
//!
//! A plain-text snapshot (`tests/api_snapshot.txt`) lists every `pub`
//! item declared in the sources of `core`, `dpmech`, `modelstore`,
//! `obskit` and `serve`. Renaming, removing, or adding a public item makes this test
//! fail with a readable diff, so API changes are deliberate and land
//! together with their snapshot update. Bless an intentional change with
//!
//! ```text
//! API_SNAPSHOT_UPDATE=1 cargo test -p integration-tests api_snapshot
//! ```
//!
//! The scan is a line-level parse: it records `pub fn|struct|enum|
//! const|static|trait|type|mod NAME` declarations (methods in `impl`
//! blocks included) and skips `pub(crate)`/`pub(super)` items, which
//! never leave the crate. Macro-generated items would be invisible to
//! it — the workspace defines none.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The crates whose API the snapshot pins, as `(name, src dir)` pairs
/// relative to the workspace root.
const CRATES: [(&str, &str); 5] = [
    ("dpcopula", "crates/core/src"),
    ("dpmech", "crates/dpmech/src"),
    ("modelstore", "crates/modelstore/src"),
    ("obskit", "crates/obskit/src"),
    ("dpcopula-serve", "crates/serve/src"),
];

const KINDS: [&str; 8] = [
    "fn", "struct", "enum", "const", "static", "trait", "type", "mod",
];

fn workspace_root() -> PathBuf {
    // integration-tests lives at <root>/tests.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate sits inside the workspace")
        .to_path_buf()
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = std::fs::read_dir(dir).expect("crate src dir exists");
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extracts `kind name` from one line if it declares a fully-public
/// item, else `None`.
fn public_item(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    // `pub(crate)` / `pub(super)` / `pub(in ...)` are not public API.
    let rest = trimmed.strip_prefix("pub ")?;
    // Strip qualifiers that may precede the item keyword.
    let mut rest = rest.trim_start();
    for qualifier in ["unsafe ", "async ", "const ", "extern \"C\" "] {
        if let Some(r) = rest.strip_prefix(qualifier) {
            // `pub const NAME` is itself an item; only strip `const`
            // when a `fn` follows (`pub const fn`).
            if qualifier != "const " || r.trim_start().starts_with("fn ") {
                rest = r.trim_start();
            }
        }
    }
    for kind in KINDS {
        if let Some(r) = rest.strip_prefix(kind) {
            let r = r.strip_prefix(' ').or_else(|| r.strip_prefix('\t'))?;
            let name: String = r
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                return None;
            }
            return Some(format!("{kind} {name}"));
        }
    }
    None
}

fn scan() -> BTreeSet<String> {
    let root = workspace_root();
    let mut items = BTreeSet::new();
    for (krate, src) in CRATES {
        let mut files = Vec::new();
        rust_files(&root.join(src), &mut files);
        for file in files {
            let rel = file
                .strip_prefix(root.join(src))
                .expect("file under src dir")
                .display()
                .to_string();
            let text = std::fs::read_to_string(&file).expect("readable source file");
            let mut in_test_mod = false;
            let mut depth = 0usize;
            for line in text.lines() {
                if line.trim_start().starts_with("#[cfg(test)]") {
                    in_test_mod = true;
                    depth = 0;
                }
                if in_test_mod {
                    depth += line.matches('{').count();
                    depth = depth.saturating_sub(line.matches('}').count());
                    if depth == 0 && line.contains('}') {
                        in_test_mod = false;
                    }
                    continue;
                }
                if let Some(item) = public_item(line) {
                    items.insert(format!("{krate}/{rel}: {item}"));
                }
            }
        }
    }
    items
}

#[test]
fn public_api_matches_snapshot() {
    let snapshot_path = workspace_root().join("tests/api_snapshot.txt");
    let actual: Vec<String> = scan().into_iter().collect();
    let rendered = format!("{}\n", actual.join("\n"));

    if std::env::var("API_SNAPSHOT_UPDATE").as_deref() == Ok("1") {
        std::fs::write(&snapshot_path, &rendered).expect("write api_snapshot.txt");
        println!(
            "blessed {} items into {}",
            actual.len(),
            snapshot_path.display()
        );
        return;
    }

    let expected_text = std::fs::read_to_string(&snapshot_path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); bless it with API_SNAPSHOT_UPDATE=1",
            snapshot_path.display()
        )
    });
    let expected: BTreeSet<&str> = expected_text.lines().filter(|l| !l.is_empty()).collect();
    let actual_set: BTreeSet<&str> = actual.iter().map(String::as_str).collect();

    let missing: Vec<&&str> = expected.difference(&actual_set).collect();
    let added: Vec<&&str> = actual_set.difference(&expected).collect();
    assert!(
        missing.is_empty() && added.is_empty(),
        "public API drifted from tests/api_snapshot.txt\n\
         removed ({}):\n  {}\nadded ({}):\n  {}\n\
         if intentional, bless with API_SNAPSHOT_UPDATE=1 cargo test -p integration-tests api_snapshot",
        missing.len(),
        missing
            .iter()
            .map(|s| **s)
            .collect::<Vec<_>>()
            .join("\n  "),
        added.len(),
        added.iter().map(|s| **s).collect::<Vec<_>>().join("\n  "),
    );
}
