//! Fault-injection tests of the `dpcopula-serve` daemon: every fault
//! `faultline` can inject maps to a pinned status code and metrics
//! delta, and none of them leak a pool worker.
//!
//! Layout per test: a real server on an ephemeral port (usually with
//! `pool_workers = 1`, so a leaked worker turns into a hang the next
//! request would expose), a [`faultline::FaultProxy`] in front of it
//! where the fault shapes the request bytes, and `/metrics` scraped
//! before and after to pin the exact counter movement.

use dpcopula_serve::{ModelRegistry, RegistryError, ServeConfig, Server, ShutdownHandle};
use faultline::{flood, send_request, Fault, FaultProxy, HttpReply};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// One running daemon over a temp model dir, torn down on drop.
struct TestServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    model_dir: PathBuf,
    join: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(tag: &str, configure: impl FnOnce(&mut ServeConfig)) -> Self {
        let model_dir =
            std::env::temp_dir().join(format!("dpcopula-faults-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&model_dir);
        std::fs::create_dir_all(&model_dir).unwrap();
        let mut config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            model_dir: model_dir.clone(),
            ..ServeConfig::default()
        };
        configure(&mut config);
        let server = Server::bind(config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || server.run().unwrap());
        Self {
            addr,
            handle,
            model_dir,
            join: Some(join),
        }
    }

    fn metrics(&self) -> String {
        let reply = send_request(
            self.addr,
            b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        assert_eq!(reply.status, 200);
        String::from_utf8(reply.body).unwrap()
    }

    /// The current value of one rendered metric line, 0 when absent.
    fn metric(&self, line_prefix: &str) -> u64 {
        self.metrics()
            .lines()
            .find(|l| l.starts_with(line_prefix) && l[line_prefix.len()..].starts_with(' '))
            .and_then(|l| l.rsplit(' ').next()?.parse().ok())
            .unwrap_or(0)
    }

    fn healthy(&self) {
        let reply = send_request(
            self.addr,
            b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, b"ok\n");
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        let _ = std::fs::remove_dir_all(&self.model_dir);
    }
}

/// Escapes `s` into a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn training_csv() -> String {
    let mut csv = String::from("age:5,income:4,region:3\n");
    for i in 0..80u32 {
        csv.push_str(&format!("{},{},{}\n", i % 5, (i / 3) % 4, (i * 7) % 3));
    }
    csv
}

/// Frames `body` as a `POST path` request with explicit close.
fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Fits a model over HTTP and asserts success.
fn fit_model(server: &TestServer, id: &str, seed: u64) {
    let body = format!(
        "{{\"id\":\"{id}\",\"epsilon\":1.0,\"seed\":{seed},\"csv\":{}}}",
        json_str(&training_csv())
    );
    let reply = send_request(server.addr, &post("/v1/fit", &body)).unwrap();
    assert_eq!(
        reply.status,
        200,
        "fit failed: {}",
        String::from_utf8_lossy(&reply.body)
    );
}

#[test]
fn slowloris_head_gets_408_and_does_not_pin_the_worker() {
    let server = TestServer::start("slowloris", |c| {
        c.pool_workers = 1; // a leaked worker would hang the follow-up
        c.read_timeout = Duration::from_millis(80);
        c.head_timeout = Duration::from_millis(120);
    });
    let proxy = FaultProxy::start(
        server.addr,
        vec![Fault::Throttle {
            chunk: 2,
            pause: Duration::from_millis(25),
        }],
    )
    .unwrap();
    // ~27 chunks * 25ms ≈ 700ms of trickling against a 120ms head
    // deadline: the server must cut it off with a named 408.
    let reply = send_request(
        proxy.addr(),
        b"GET /healthz HTTP/1.1\r\nHost: somewhere-slow\r\n\r\n",
    )
    .unwrap();
    assert_eq!(reply.status, 408);
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("request head timed out"), "{body}");
    assert_eq!(server.metric("serve_timeouts_total{phase=\"head\"}"), 1);
    assert_eq!(server.metric("serve_timeouts_total{phase=\"body\"}"), 0);
    // The single worker is free again: a normal request answers.
    server.healthy();
}

#[test]
fn stalled_body_gets_408_in_the_body_phase() {
    let server = TestServer::start("bodystall", |c| {
        c.pool_workers = 1;
        c.read_timeout = Duration::from_millis(80);
        c.body_timeout = Duration::from_millis(200);
    });
    let request = post("/v1/sample", "{\"model\":\"x\",\"rows\":1}");
    // The head (everything up to the blank line) arrives instantly;
    // the body then goes silent for longer than the socket timeout.
    let head_len = request.len() - "{\"model\":\"x\",\"rows\":1}".len();
    let proxy = FaultProxy::start(
        server.addr,
        vec![Fault::StallAfter {
            bytes: head_len,
            pause: Duration::from_millis(400),
        }],
    )
    .unwrap();
    let reply = send_request(proxy.addr(), &request).unwrap();
    assert_eq!(reply.status, 408);
    let body = String::from_utf8(reply.body).unwrap();
    assert!(body.contains("request body timed out"), "{body}");
    assert_eq!(server.metric("serve_timeouts_total{phase=\"body\"}"), 1);
    assert_eq!(server.metric("serve_timeouts_total{phase=\"head\"}"), 0);
    server.healthy();
}

#[test]
fn mid_body_disconnect_is_a_counted_400_and_the_daemon_survives() {
    let server = TestServer::start("midbody", |c| {
        c.pool_workers = 1;
        c.read_timeout = Duration::from_millis(200);
    });
    let request = post("/v1/sample", "{\"model\":\"x\",\"rows\":1}");
    let head_len = request.len() - "{\"model\":\"x\",\"rows\":1}".len();
    // Cut 8 bytes into the declared body: the server sees EOF before
    // Content-Length is satisfied — a truncated body, not a timeout.
    let proxy = FaultProxy::start(
        server.addr,
        vec![Fault::CutAfter {
            bytes: head_len + 8,
        }],
    )
    .unwrap();
    let err = send_request(proxy.addr(), &request).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::BrokenPipe
        ),
        "client should see the cut, got {:?}",
        err.kind()
    );
    // The undeliverable 400 is still typed and counted.
    let mut seen = false;
    for _ in 0..400 {
        if server.metric("serve_requests_total{endpoint=\"other\",status=\"400\"}") == 1 {
            seen = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(seen, "truncated-body 400 never reached /metrics");
    assert_eq!(server.metric("serve_timeouts_total{phase=\"body\"}"), 0);
    server.healthy();
}

#[test]
fn split_writes_reassemble_to_a_byte_identical_response() {
    let server = TestServer::start("splitwrites", |c| {
        c.pool_workers = 2;
    });
    fit_model(&server, "census", 42);
    let request = post(
        "/v1/sample",
        "{\"model\":\"census\",\"offset\":100,\"rows\":64}",
    );
    let direct = send_request(server.addr, &request).unwrap();
    assert_eq!(direct.status, 200);
    // The same request dripped 3 bytes per TCP write must reassemble
    // to the same parse and the same sampled bytes.
    let proxy = FaultProxy::start(server.addr, vec![Fault::SplitWrites { chunk: 3 }]).unwrap();
    let split = send_request(proxy.addr(), &request).unwrap();
    assert_eq!(split.status, 200);
    assert_eq!(split.body, direct.body);
    // And both match in-process sampling of the saved artifact.
    let model = dpcopula::FittedModel::load(server.model_dir.join("census.dpcm")).unwrap();
    let columns = model.try_sample_range(100, 64, 1).unwrap();
    let attributes: Vec<datagen::Attribute> = model
        .artifact()
        .schema
        .iter()
        .map(|a| datagen::Attribute::new(a.name.clone(), a.domain))
        .collect();
    let mut in_process = Vec::new();
    datagen::io::write_csv(&datagen::Dataset::new(attributes, columns), &mut in_process).unwrap();
    assert_eq!(split.body, in_process);
}

#[test]
fn connection_flood_past_the_cap_sheds_503_with_retry_after() {
    let server = TestServer::start("connflood", |c| {
        c.pool_workers = 2;
        c.max_connections = 2;
        c.read_timeout = Duration::from_secs(2);
        c.head_timeout = Duration::from_secs(2);
    });
    // Pin both admitted slots with half-sent requests. The two pinned
    // connections are dispatched in accept order, so by the time the
    // third connects the pool's pending count is 2 — the shed is
    // deterministic, not a scheduling accident.
    let mut pinned: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut s = TcpStream::connect(server.addr).unwrap();
            s.write_all(b"GET /healthz HTT").unwrap();
            s.flush().unwrap();
            s
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    let reply = send_request(
        server.addr,
        b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    assert_eq!(reply.status, 503);
    assert_eq!(reply.header("retry-after"), Some("1"));
    assert!(String::from_utf8_lossy(&reply.body).contains("connection capacity"));

    // Finish the pinned requests: both slots drain and service resumes.
    for s in &mut pinned {
        s.write_all(b"P/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        assert!(
            String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200 OK"),
            "pinned connection should complete normally"
        );
    }
    // Only now is the pool drained enough to admit the scrape itself.
    assert!(server.metric("server_shed_total{route=\"connection\"}") > 0);
    server.healthy();
}

#[test]
fn seeded_route_flood_sheds_deterministically_while_one_sample_holds_the_gate() {
    let server = TestServer::start("routeflood", |c| {
        c.pool_workers = 8;
        c.max_inflight = 1; // sample gate: one in flight
    });
    fit_model(&server, "census", 7);

    // Occupy the sample gate deterministically: ask for a CSV far
    // larger than the socket buffers and do not read it. The handler
    // blocks inside the response write — gate held — until we drain.
    let big = post("/v1/sample", "{\"model\":\"census\",\"rows\":2000000}");
    let mut holder = TcpStream::connect(server.addr).unwrap();
    holder.write_all(&big).unwrap();
    holder.flush().unwrap();
    // The first response byte proves the handler is in its write (and
    // therefore holds the gate).
    let mut first = [0u8; 1];
    holder.peek(&mut first).unwrap();

    // A seeded flood of small samples: with the gate held, every one
    // of them must shed — same statuses for the same base seed.
    let shed_before = server.metric("server_shed_total{route=\"sample\"}");
    let replies = flood(
        server.addr,
        0xD5C0_9A11,
        4,
        5,
        &post("/v1/sample", "{\"model\":\"census\",\"rows\":8}"),
    );
    for reply in &replies {
        let reply = reply.as_ref().expect("shed replies are still delivered");
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert!(String::from_utf8_lossy(&reply.body).contains("`sample` at capacity"));
    }
    assert_eq!(
        server.metric("server_shed_total{route=\"sample\"}"),
        shed_before + 4,
        "exactly the flooded requests shed"
    );

    // Drain the held response: the admitted request completes intact.
    let mut raw = Vec::new();
    holder.read_to_end(&mut raw).unwrap();
    let text_head = String::from_utf8_lossy(&raw[..64.min(raw.len())]);
    assert!(text_head.starts_with("HTTP/1.1 200 OK"), "{text_head}");
    let newlines = raw.iter().filter(|&&b| b == b'\n').count();
    // Head lines + CSV header + 2_000_000 rows.
    assert!(newlines > 2_000_000, "admitted sample truncated");

    // Gate released: small samples are admitted again.
    let reply = send_request(
        server.addr,
        &post("/v1/sample", "{\"model\":\"census\",\"rows\":8}"),
    )
    .unwrap();
    assert_eq!(reply.status, 200);
}

#[test]
fn delete_while_sampling_finishes_the_sample_and_404s_afterwards() {
    let server = TestServer::start("delete", |c| {
        c.pool_workers = 4;
    });
    fit_model(&server, "victim", 11);

    // Start a long sample, then delete the model while it runs. The
    // in-flight sample holds its own Arc and must finish complete.
    let sample = post("/v1/sample", "{\"model\":\"victim\",\"rows\":400000}");
    let addr = server.addr;
    let sampler = std::thread::spawn(move || send_request(addr, &sample).unwrap());
    std::thread::sleep(Duration::from_millis(15));
    let reply = send_request(
        server.addr,
        b"DELETE /v1/models/victim HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    assert_eq!(
        reply.status,
        200,
        "{}",
        String::from_utf8_lossy(&reply.body)
    );
    assert!(String::from_utf8_lossy(&reply.body).contains("\"deleted\":\"victim\""));

    let sampled = sampler.join().unwrap();
    assert_eq!(sampled.status, 200);
    assert_eq!(
        sampled.body.iter().filter(|&&b| b == b'\n').count(),
        400_001,
        "in-flight sample must deliver every row"
    );

    // Afterwards: artifact gone, 404 on sample and on re-delete,
    // exactly one delete counted.
    assert!(!server.model_dir.join("victim.dpcm").exists());
    let reply = send_request(
        server.addr,
        &post("/v1/sample", "{\"model\":\"victim\",\"rows\":1}"),
    )
    .unwrap();
    assert_eq!(reply.status, 404);
    let reply = send_request(
        server.addr,
        b"DELETE /v1/models/victim HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    assert_eq!(reply.status, 404);
    let reply = send_request(
        server.addr,
        b"GET /v1/models/victim HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    assert_eq!(reply.status, 405, "only DELETE is routed under /v1/models/");
    assert_eq!(server.metric("registry_deletes_total"), 1);
    assert_eq!(
        server.metric("serve_requests_total{endpoint=\"delete\",status=\"200\"}"),
        1
    );
    server.healthy();
}

#[test]
fn concurrent_gets_decode_once_and_a_racing_delete_converges() {
    let dir = std::env::temp_dir().join(format!("dpcopula-faults-registry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = Arc::new(obskit::MetricsRegistry::new());
    let sink = obskit::MetricsSink::to_registry(Arc::clone(&metrics));
    let registry = Arc::new(ModelRegistry::new(&dir, 4, sink));

    // Fit one small artifact directly.
    let columns = vec![
        (0..40u32).map(|i| i % 4).collect::<Vec<u32>>(),
        (0..40u32).map(|i| (i / 2) % 3).collect(),
    ];
    let (model, _) =
        dpcopula::SynthesisRequest::new(&columns, &[4usize, 3], dpmech::Epsilon::new(2.0).unwrap())
            .seed(1)
            .fit()
            .unwrap();
    model.save(registry.path_for("m")).unwrap();

    let loads = |m: &obskit::MetricsRegistry| {
        m.snapshot()
            .get("modelstore_loads_total")
            .and_then(|e| e.value.as_u64())
            .unwrap_or(0)
    };

    // Phase 1 — two cold gets race: single-flight means one decode.
    let barrier = Arc::new(Barrier::new(2));
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                registry.get("m").expect("artifact is on disk")
            })
        })
        .collect();
    for r in racers {
        r.join().expect("no panic in concurrent get");
    }
    assert_eq!(loads(&metrics), 1, "exactly one decode for two cold gets");

    // Phase 2 — two hot-loading threads race a deleting third. Any
    // interleaving is legal per call (a get sees the model or a 404),
    // but nothing may panic and the registry must converge to absent.
    let barrier = Arc::new(Barrier::new(3));
    let panics = Arc::new(AtomicUsize::new(0));
    let mut workers = Vec::new();
    for _ in 0..2 {
        let registry = Arc::clone(&registry);
        let barrier = Arc::clone(&barrier);
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..50 {
                match registry.get("m") {
                    Ok(_) | Err(RegistryError::UnknownModel { .. }) => {}
                    Err(other) => panic!("unexpected registry error: {other}"),
                }
            }
        }));
    }
    {
        let registry = Arc::clone(&registry);
        let barrier = Arc::clone(&barrier);
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            match registry.delete("m") {
                Ok(()) | Err(RegistryError::UnknownModel { .. }) => {}
                Err(other) => panic!("unexpected delete error: {other}"),
            }
        }));
    }
    for w in workers {
        if w.join().is_err() {
            panics.fetch_add(1, Ordering::SeqCst);
        }
    }
    assert_eq!(panics.load(Ordering::SeqCst), 0, "no panics under the race");

    // Deterministic final state: the file is gone, the next get says
    // so, and nothing stale stays cached.
    assert!(!registry.path_for("m").exists());
    assert!(matches!(
        registry.get("m"),
        Err(RegistryError::UnknownModel { .. })
    ));
    assert_eq!(registry.cached_models(), 0);
    // Decodes stay bounded: the initial one, plus at most a handful of
    // legitimate re-decodes while gets raced the eviction — never one
    // per get.
    assert!(loads(&metrics) <= 4, "decode storm: {}", loads(&metrics));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `BufReader`/`HttpReply` round-trip against the real daemon, kept
/// here so a faultline parser regression is caught by the serving tier
/// and not only by faultline's own unit tests.
#[test]
fn http_reply_parses_the_daemons_own_responses() {
    let server = TestServer::start("replyparse", |_| {});
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let reply = HttpReply::read_from(&mut BufReader::new(stream)).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("content-type"),
        Some("text/plain; charset=utf-8")
    );
    assert_eq!(reply.body, b"ok\n");
}
