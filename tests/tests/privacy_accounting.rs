//! Integration tests for privacy-budget conservation across the composed
//! pipeline (Theorems 3.1, 3.2, 4.1, 4.2 of the paper).

use dpcopula::synthesizer::{DpCopula, DpCopulaConfig};
use dpmech::{BudgetAccountant, BudgetError, Epsilon};
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

#[test]
fn synthesizer_budget_sums_to_total_for_any_split() {
    let cols = vec![
        (0..500u32).map(|i| i % 50).collect::<Vec<_>>(),
        (0..500u32).map(|i| (i * 3) % 50).collect::<Vec<_>>(),
        (0..500u32).map(|i| (i * 11) % 50).collect::<Vec<_>>(),
    ];
    for eps in [0.1, 1.0, 3.0] {
        for k in [0.5, 1.0, 8.0, 20.0] {
            let mut rng = StdRng::seed_from_u64(1);
            let config = DpCopulaConfig::kendall(Epsilon::new(eps).unwrap()).with_k_ratio(k);
            let out = DpCopula::new(config)
                .synthesize(&cols, &[50, 50, 50], &mut rng)
                .unwrap();
            assert!(
                (out.epsilon_margins + out.epsilon_correlations - eps).abs() < 1e-9,
                "eps={eps} k={k}: {} + {}",
                out.epsilon_margins,
                out.epsilon_correlations
            );
            assert!(
                (out.epsilon_margins / out.epsilon_correlations - k).abs() < 1e-6,
                "ratio mismatch at k={k}"
            );
        }
    }
}

#[test]
fn accountant_simulates_theorem_4_2() {
    // m margins at eps1/m plus C(m,2) coefficients at eps2/C(m,2) must
    // exactly exhaust eps1 + eps2 = eps.
    for m in [2usize, 4, 8, 16] {
        let total = Epsilon::new(1.0).unwrap();
        let (e1, e2) = total.split_ratio(8.0);
        let mut acc = BudgetAccountant::new(total);
        for _ in 0..m {
            acc.spend(e1.divide(m)).unwrap();
        }
        let pairs = m * (m - 1) / 2;
        for _ in 0..pairs {
            acc.spend(e2.divide(pairs)).unwrap();
        }
        assert!(acc.remaining() < 1e-9, "m={m} left {}", acc.remaining());
        // One more microspend must fail.
        assert!(matches!(
            acc.spend(Epsilon::new(1e-3).unwrap()),
            Err(BudgetError::Exhausted { .. })
        ));
    }
}

#[test]
fn hybrid_parallel_composition_costs_once() {
    // Algorithm 6: the per-partition DPCopula runs are on disjoint data.
    // Simulate the accounting: count noise (eps1) + one full per-partition
    // budget (eps - eps1), regardless of the partition count.
    let total = Epsilon::new(1.0).unwrap();
    let eps_counts = total.fraction(0.1);
    let eps_copula = Epsilon::new(total.value() - eps_counts.value()).unwrap();
    let mut acc = BudgetAccountant::new(total);
    let partitions = 64;
    acc.spend_parallel(eps_counts, partitions).unwrap();
    acc.spend_parallel(eps_copula, partitions).unwrap();
    assert!(acc.remaining() < 1e-12);
}

#[test]
fn noise_scales_inversely_with_budget_end_to_end() {
    // The released correlation coefficient's deviation from truth must
    // shrink as epsilon grows (on average).
    let n = 4_000;
    let x: Vec<u32> = (0..n).collect();
    let y = x.clone();
    let cols = vec![x, y];
    let spread = |eps: f64| -> f64 {
        let mut dev = 0.0;
        for s in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(s);
            let config = DpCopulaConfig::kendall(Epsilon::new(eps).unwrap());
            let out = DpCopula::new(config)
                .synthesize(&cols, &[n as usize, n as usize], &mut rng)
                .unwrap();
            dev += (out.correlation[(0, 1)] - 1.0).abs();
        }
        dev / 10.0
    };
    let tight = spread(0.01);
    let loose = spread(10.0);
    assert!(
        tight > loose,
        "correlation deviation should shrink with budget: {tight} vs {loose}"
    );
}
