//! End-to-end tests of the `dpcopula-serve` daemon: a real server on an
//! ephemeral port, a hand-rolled `std::net` HTTP client, and the two
//! contracts the serving layer promises —
//!
//! 1. a row window fetched over HTTP is **byte-identical** to the same
//!    window sampled in-process from the same artifact (sampling is
//!    deterministic post-processing, the transport adds nothing);
//! 2. per-tenant ε admission refuses fits once the budget is spent
//!    (429, with the remaining budget in the body) while sampling keeps
//!    serving, because it is ε-free.

use dpcopula::FittedModel;
use dpcopula_serve::{ServeConfig, Server, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

/// One running daemon over a temp model dir, torn down on drop.
struct TestServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    model_dir: PathBuf,
    join: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(tag: &str, configure: impl FnOnce(&mut ServeConfig)) -> Self {
        let model_dir =
            std::env::temp_dir().join(format!("dpcopula-serve-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&model_dir);
        std::fs::create_dir_all(&model_dir).unwrap();
        let mut config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            model_dir: model_dir.clone(),
            ..ServeConfig::default()
        };
        configure(&mut config);
        let server = Server::bind(config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || {
            server.run().unwrap();
        });
        Self {
            addr,
            handle,
            model_dir,
            join: Some(join),
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        let _ = std::fs::remove_dir_all(&self.model_dir);
    }
}

/// Sends one request, reads the full response, returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    // The server may refuse (413) and close without reading the body;
    // a broken-pipe here is part of the behaviour under test.
    let _ = stream.write_all(body);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, Vec<u8>) {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response head");
    let head = std::str::from_utf8(&raw[..split]).unwrap();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code in status line")
        .parse()
        .unwrap();
    (status, raw[split + 4..].to_vec())
}

/// Escapes `s` into a JSON string literal (for embedding CSV bodies).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A small deterministic CSV in datagen's `name:domain` header format.
fn training_csv() -> String {
    let mut csv = String::from("age:5,income:4,region:3\n");
    for i in 0..80u32 {
        csv.push_str(&format!("{},{},{}\n", i % 5, (i / 3) % 4, (i * 7) % 3));
    }
    csv
}

fn fit_body(id: &str, tenant: &str, epsilon: f64, seed: u64) -> Vec<u8> {
    format!(
        "{{\"id\":\"{id}\",\"tenant\":\"{tenant}\",\"epsilon\":{epsilon},\"seed\":{seed},\"csv\":{}}}",
        json_str(&training_csv())
    )
    .into_bytes()
}

fn write_tenants(dir: &Path, text: &str) -> PathBuf {
    let path = dir.join("tenants.conf");
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn http_sample_window_is_byte_identical_to_in_process_sampling() {
    let server = TestServer::start("identity", |c| {
        c.sample_workers = 2; // any worker count must yield the same bytes
    });
    let (status, body) = http(
        server.addr,
        "POST",
        "/v1/fit",
        &fit_body("census", "default", 1.5, 42),
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let fit_reply = String::from_utf8(body).unwrap();
    assert!(fit_reply.contains("\"id\":\"census\""), "{fit_reply}");
    assert!(fit_reply.contains("\"checksum\":\""), "{fit_reply}");

    // A mid-stream window over HTTP...
    let (status, http_csv) = http(
        server.addr,
        "POST",
        "/v1/sample",
        br#"{"model":"census","offset":1000,"rows":200}"#,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&http_csv));

    // ...must be byte-for-byte what in-process sampling of the same
    // artifact produces, at an unrelated worker count.
    let model = FittedModel::load(server.model_dir.join("census.dpcm")).unwrap();
    let columns = model.try_sample_range(1000, 200, 3).unwrap();
    let attributes: Vec<datagen::Attribute> = model
        .artifact()
        .schema
        .iter()
        .map(|a| datagen::Attribute::new(a.name.clone(), a.domain))
        .collect();
    let dataset = datagen::Dataset::new(attributes, columns);
    let mut in_process = Vec::new();
    datagen::io::write_csv(&dataset, &mut in_process).unwrap();
    assert_eq!(http_csv, in_process);

    // The fitted attribute names round-tripped into the CSV header.
    assert!(in_process.starts_with(b"age:5,income:4,region:3\n"));

    // JSON format serves the same rows.
    let (status, json_rows) = http(
        server.addr,
        "POST",
        "/v1/sample",
        br#"{"model":"census","offset":1000,"rows":1,"format":"json"}"#,
    );
    assert_eq!(status, 200);
    let text = String::from_utf8(json_rows).unwrap();
    assert!(
        text.starts_with("{\"columns\":[\"age\",\"income\",\"region\"],\"rows\":[["),
        "{text}"
    );
}

#[test]
fn exhausted_tenant_gets_429_while_sampling_keeps_serving() {
    let server = TestServer::start("budget", |c| {
        c.tenant_file = Some(write_tenants(&c.model_dir, "alpha = 1.0\nbeta = 0.25\n"));
    });

    // alpha's first fit spends its whole budget.
    let (status, _) = http(
        server.addr,
        "POST",
        "/v1/fit",
        &fit_body("m1", "alpha", 1.0, 7),
    );
    assert_eq!(status, 200);

    // The second is refused with the remaining budget in the body.
    let (status, body) = http(
        server.addr,
        "POST",
        "/v1/fit",
        &fit_body("m2", "alpha", 0.5, 8),
    );
    assert_eq!(status, 429);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("budget exhausted"), "{text}");
    assert!(text.contains("\"remaining_eps\":0"), "{text}");

    // A rejected fit writes no artifact.
    assert!(!server.model_dir.join("m2.dpcm").exists());

    // Unknown tenants are 403, not 429.
    let (status, body) = http(
        server.addr,
        "POST",
        "/v1/fit",
        &fit_body("m3", "mallory", 0.1, 9),
    );
    assert_eq!(status, 403);
    assert!(String::from_utf8(body).unwrap().contains("unknown tenant"));

    // Sampling from the fitted model still serves: ε-free post-processing.
    let (status, csv) = http(
        server.addr,
        "POST",
        "/v1/sample",
        br#"{"model":"m1","rows":10}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(csv.iter().filter(|&&b| b == b'\n').count(), 11);

    // The rejection is visible on /metrics, per tenant.
    let (status, metrics) = http(server.addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).unwrap();
    assert!(
        metrics.contains("budget_rejections_total{tenant=\"alpha\"} 1"),
        "missing rejection counter"
    );
    assert!(metrics.contains("serve_requests_total{endpoint=\"fit\",status=\"429\"} 1"));
    assert!(metrics.contains("serve_requests_total{endpoint=\"sample\",status=\"200\"} 1"));
}

#[test]
fn error_paths_are_typed_and_never_kill_the_daemon() {
    let server = TestServer::start("errors", |c| {
        c.max_body_bytes = 4096;
    });

    // Unknown model → 404.
    let (status, body) = http(
        server.addr,
        "POST",
        "/v1/sample",
        br#"{"model":"nope","rows":1}"#,
    );
    assert_eq!(status, 404);
    assert!(String::from_utf8(body)
        .unwrap()
        .contains("unknown model `nope`"));

    // Unknown route → 404; wrong method → 405.
    assert_eq!(http(server.addr, "GET", "/v2/everything", b"").0, 404);
    assert_eq!(http(server.addr, "GET", "/v1/sample", b"").0, 405);

    // Corrupt artifact → 500 naming the damaged entry. Flip one byte in
    // the middle of a valid artifact so a section checksum fails.
    let fit = fit_body("good", "default", 1.0, 3);
    assert_eq!(http(server.addr, "POST", "/v1/fit", &fit).0, 200);
    let mut bytes = std::fs::read(server.model_dir.join("good.dpcm")).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(server.model_dir.join("bad.dpcm"), &bytes).unwrap();
    let (status, body) = http(
        server.addr,
        "POST",
        "/v1/sample",
        br#"{"model":"bad","rows":1}"#,
    );
    assert_eq!(status, 500);
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("model directory entry") && text.contains("bad.dpcm"),
        "{text}"
    );

    // Oversized body → 413 before the body is read.
    let huge = vec![b' '; 8192];
    let (status, body) = http(server.addr, "POST", "/v1/fit", &huge);
    assert_eq!(status, 413);
    assert!(String::from_utf8(body).unwrap().contains("8192"));

    // Truncated body (Content-Length larger than what arrives) → 400.
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream
        .write_all(b"POST /v1/fit HTTP/1.1\r\nContent-Length: 512\r\n\r\nshort")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let (status, body) = parse_response(&raw);
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("truncated"));

    // Malformed JSON and malformed CSV → 400 with positions.
    let (status, body) = http(server.addr, "POST", "/v1/sample", b"{nope");
    assert_eq!(status, 400);
    assert!(String::from_utf8(body)
        .unwrap()
        .contains("invalid JSON body"));
    let (status, body) = http(
        server.addr,
        "POST",
        "/v1/fit",
        br#"{"id":"x","epsilon":1.0,"csv":"not a header\n"}"#,
    );
    assert_eq!(status, 400);
    assert!(String::from_utf8(body)
        .unwrap()
        .contains("invalid csv body"));

    // After all of that, the daemon still answers.
    let (status, body) = http(server.addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");

    // /v1/models lists the good and the damaged artifact side by side.
    let (status, listing) = http(server.addr, "GET", "/v1/models", b"");
    assert_eq!(status, 200);
    let listing = String::from_utf8(listing).unwrap();
    assert!(listing.contains("\"id\":\"good\""), "{listing}");
    assert!(listing.contains("\"id\":\"bad\""), "{listing}");
}

/// Sends raw bytes on a fresh connection and returns everything the
/// server answers before closing.
fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(bytes).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    raw
}

#[test]
fn request_head_exactly_at_the_cap_parses_and_one_byte_over_is_refused() {
    use dpcopula_serve::http::MAX_HEAD_BYTES;
    let server = TestServer::start("headcap", |_| {});
    // The head budget covers the request-line content plus, per header
    // line, its content and CRLF — and the final blank line still needs
    // room for its CR. The longest padding that fits:
    let overhead =
        "GET /healthz HTTP/1.1".len() + "X-Pad: ".len() + 2 + "Connection: close".len() + 2 + 1;
    let pad_max = MAX_HEAD_BYTES - overhead;
    for (pad, expect) in [(pad_max, 200u16), (pad_max + 1, 400u16)] {
        let head = format!(
            "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\nConnection: close\r\n\r\n",
            "a".repeat(pad)
        );
        let (status, body) = parse_response(&raw_exchange(server.addr, head.as_bytes()));
        assert_eq!(status, expect, "pad {pad}");
        if expect == 400 {
            assert!(
                String::from_utf8_lossy(&body).contains("request head exceeds"),
                "pad {pad}: {}",
                String::from_utf8_lossy(&body)
            );
        } else {
            assert_eq!(body, b"ok\n", "pad {pad}");
        }
    }
}

#[test]
fn pipelined_keep_alive_serves_the_valid_request_then_refuses_the_malformed() {
    let server = TestServer::start("pipeline", |_| {});
    // Both requests in one write: the first is valid and keeps the
    // connection alive, the second is garbage. The server must answer
    // 200 then 400, then close — not tear down before replying, not
    // let the garbage poison the first response.
    let raw = raw_exchange(
        server.addr,
        b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nNOT-A-REQUEST\r\n\r\n",
    );
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("ok\n"), "{text}");
    let second = text
        .find("HTTP/1.1 400")
        .expect("second response on the same connection");
    assert!(text[second..].contains("malformed request line"), "{text}");
    // The 400 closes the session: no third response, stream ended.
    assert!(text.ends_with("}\n"), "{text}");
}

/// Sends one raw-CSV request (`Content-Type: text/csv`, fit params in
/// the query string) and returns (status, body).
fn http_csv(addr: SocketAddr, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Type: text/csv\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    let _ = stream.write_all(body);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    parse_response(&raw)
}

/// A deterministic CSV with enough rows to exceed a byte budget.
fn csv_rows(rows: u32) -> String {
    let mut csv = String::from("age:5,income:4,region:3\n");
    for i in 0..rows {
        csv.push_str(&format!("{},{},{}\n", i % 5, (i / 3) % 4, (i * 7) % 3));
    }
    csv
}

/// The 16-hex-digit checksum out of a fit response body.
fn checksum_of(reply: &str) -> &str {
    let at = reply.find("\"checksum\":\"").expect("checksum field") + "\"checksum\":\"".len();
    &reply[at..at + 16]
}

#[test]
fn oversized_fit_body_spools_to_disk_and_matches_the_eager_fit() {
    let csv = csv_rows(1000); // ~6 KiB, past the 4 KiB in-memory cap
    assert!(csv.len() > 4096 && csv.len() < 16 * 1024);

    let spooling = TestServer::start("spool", |c| {
        c.max_body_bytes = 4096;
        c.max_fit_body_bytes = 16 * 1024;
        c.tenant_file = Some(write_tenants(&c.model_dir, "default = 10.0\ngamma = 1.0\n"));
    });

    // The oversized body spools, streams through the out-of-core fit,
    // and fits the same model the eager path releases.
    let (status, body) = http_csv(
        spooling.addr,
        "/v1/fit?id=big&epsilon=1.0&seed=42",
        csv.as_bytes(),
    );
    let reply = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"rows\":1000"), "{reply}");
    let spooled_checksum = checksum_of(&reply).to_string();

    // Reference: the same CSV through the JSON envelope on a server
    // with a cap large enough to hold it in memory.
    let eager = TestServer::start("spool-ref", |_| {});
    let json = format!(
        "{{\"id\":\"ref\",\"epsilon\":1.0,\"seed\":42,\"csv\":{}}}",
        json_str(&csv)
    );
    let (status, body) = http(eager.addr, "POST", "/v1/fit", json.as_bytes());
    let reply = String::from_utf8(body).unwrap();
    assert_eq!(status, 200, "{reply}");
    assert_eq!(
        checksum_of(&reply),
        spooled_checksum,
        "spooled fit must release the same artifact as the eager fit"
    );

    // The spooled-fit model serves rows like any other.
    let (status, rows) = http(
        spooling.addr,
        "POST",
        "/v1/sample",
        br#"{"model":"big","rows":10}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(rows.iter().filter(|&&b| b == b'\n').count(), 11);

    // A small raw-CSV body (under the in-memory cap) takes the same
    // query-parameter surface without spooling.
    let small = csv_rows(40);
    assert!(small.len() < 4096);
    let (status, body) = http_csv(
        spooling.addr,
        "/v1/fit?id=small&epsilon=0.5&seed=7",
        small.as_bytes(),
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));

    // Past the spool cap the 413 contract is unchanged — refused before
    // the body is read, naming the declared size.
    let giant = csv_rows(4000); // ~24 KiB > the 16 KiB spool cap
    let (status, body) = http_csv(
        spooling.addr,
        "/v1/fit?id=nope&epsilon=0.5",
        giant.as_bytes(),
    );
    assert_eq!(status, 413);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains(&giant.len().to_string()), "{text}");
    assert!(!spooling.model_dir.join("nope.dpcm").exists());

    // Spooling is fit-only: other routes keep the in-memory cap.
    let (status, _) = http(spooling.addr, "POST", "/v1/sample", &vec![b' '; 8192]);
    assert_eq!(status, 413);

    // A malformed spooled body is a 400 that costs the tenant no ε:
    // gamma's whole 1.0 budget is still there for the real fit.
    let garbage = vec![b'#'; 6000];
    let (status, body) = http_csv(
        spooling.addr,
        "/v1/fit?id=junk&epsilon=1.0&tenant=gamma",
        &garbage,
    );
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("invalid csv body"));
    let (status, _) = http_csv(
        spooling.addr,
        "/v1/fit?id=gamma-model&epsilon=1.0&tenant=gamma&seed=3",
        csv.as_bytes(),
    );
    assert_eq!(status, 200, "the failed fit must not have debited gamma");

    // Spool files are deleted once their request is done.
    let pid = std::process::id();
    let mut leftovers = usize::MAX;
    for _ in 0..400 {
        leftovers = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("dpcopula-spool-{pid}-"))
            })
            .count();
        if leftovers == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(leftovers, 0, "spool files must not outlive their request");

    // Missing query parameters on the raw surface are named.
    let (status, body) = http_csv(spooling.addr, "/v1/fit?epsilon=1.0", small.as_bytes());
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("query parameter `id`"));
}

#[test]
fn content_length_mismatch_with_early_close_is_recorded_and_survivable() {
    let server = TestServer::start("clmismatch", |_| {});

    // Under-delivery then full close: the client declares 64 bytes,
    // sends 8, and vanishes. The 400 may be undeliverable, but it is
    // still typed, counted, and the daemon survives.
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream
        .write_all(b"POST /v1/sample HTTP/1.1\r\nContent-Length: 64\r\n\r\n{\"model\"")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Both).unwrap();
    drop(stream);
    let deadline = 400; // polls of 5ms — the handler races our assert
    let mut seen = false;
    for _ in 0..deadline {
        let (status, metrics) = http(server.addr, "GET", "/metrics", b"");
        assert_eq!(status, 200);
        if String::from_utf8_lossy(&metrics)
            .contains("serve_requests_total{endpoint=\"other\",status=\"400\"} 1")
        {
            seen = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(seen, "truncated-body 400 never showed up in /metrics");

    // Over-delivery on keep-alive: 4 declared, 14 sent. The surplus is
    // parsed as the next pipelined request and refused.
    let raw = raw_exchange(
        server.addr,
        b"GET /healthz HTTP/1.1\r\nContent-Length: 4\r\n\r\nokokEXTRA JUNK\r\n\r\n",
    );
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("HTTP/1.1 400"), "{text}");
    assert!(text.contains("malformed request line"), "{text}");

    let (status, body) = http(server.addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");
}
