//! Determinism contracts: every stochastic component must be fully
//! reproducible from its seed — the experiment harness depends on it.

use datagen::census::us_census;
use datagen::synthetic::SyntheticSpec;
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig};
use dphist::privelet::PriveletPlus;
use dphist::RangeCountEstimator;
use dpmech::Epsilon;
use rngkit::rngs::StdRng;
use rngkit::{RngCore, SeedableRng};
use std::collections::HashSet;

#[test]
fn data_generation_is_seed_deterministic() {
    let spec = SyntheticSpec {
        records: 500,
        dims: 3,
        ..Default::default()
    };
    assert_eq!(spec.generate(), spec.generate());
    assert_eq!(us_census(200, 9), us_census(200, 9));
    assert_ne!(us_census(200, 9), us_census(200, 10));
}

#[test]
fn synthesis_is_rng_deterministic() {
    let data = SyntheticSpec {
        records: 800,
        dims: 2,
        domain: 64,
        ..Default::default()
    }
    .generate();
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        DpCopula::new(config)
            .synthesize(data.columns(), &data.domains(), &mut rng)
            .unwrap()
            .columns
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}

#[test]
fn lazy_privelet_noise_is_seed_stable() {
    let cols = vec![vec![1u32, 2, 3, 4, 5], vec![5u32, 4, 3, 2, 1]];
    let domains = vec![8usize, 8];
    let eps = Epsilon::new(0.5).unwrap();
    let q = [(1u32, 6u32), (0u32, 7u32)];
    let mut a = PriveletPlus::publish(cols.clone(), &domains, eps, 7);
    let mut b = PriveletPlus::publish(cols.clone(), &domains, eps, 7);
    let mut c = PriveletPlus::publish(cols, &domains, eps, 8);
    assert_eq!(a.range_count(&q), b.range_count(&q));
    assert_ne!(a.range_count(&q), c.range_count(&q));
}

const WINDOW: usize = 1_000_000;

fn draw_window(rng: &mut StdRng) -> HashSet<u64> {
    (0..WINDOW).map(|_| rng.next_u64()).collect()
}

/// Per-thread streams derived via `split()` must not overlap: two
/// distinct child streams share no value in a 1e6-draw window (a
/// collision between independent 64-bit streams has probability
/// ~1e12/2^64 ≈ 5e-8; an accidentally shared stream collides on every
/// draw).
#[test]
fn split_streams_do_not_overlap_in_a_million_draws() {
    let mut parent = StdRng::seed_from_u64(0xD1CE);
    let mut a = parent.split();
    let mut b = parent.split();
    let wa = draw_window(&mut a);
    assert_eq!(wa.len(), WINDOW, "split stream repeated a value in-window");
    let overlap = (0..WINDOW).filter(|_| wa.contains(&b.next_u64())).count();
    assert_eq!(overlap, 0, "split streams overlapped {overlap} times");
}

/// `jump()` advances by 2^128 steps: the pre-jump and post-jump windows
/// of the same generator must be disjoint, and the jumped stream must be
/// reproducible.
#[test]
fn jump_separated_streams_do_not_overlap_in_a_million_draws() {
    let mut front = StdRng::seed_from_u64(0xBEEF);
    let mut back = front.clone();
    back.jump();
    let mut back2 = StdRng::seed_from_u64(0xBEEF);
    back2.jump();

    let wf = draw_window(&mut front);
    let overlap = (0..WINDOW)
        .filter(|_| wf.contains(&back.next_u64()))
        .count();
    assert_eq!(overlap, 0, "jump streams overlapped {overlap} times");
    assert_eq!(back2.next_u64(), {
        let mut b = StdRng::seed_from_u64(0xBEEF);
        b.jump();
        b.next_u64()
    });
}
