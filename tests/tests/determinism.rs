//! Determinism contracts: every stochastic component must be fully
//! reproducible from its seed — the experiment harness depends on it.

use datagen::census::us_census;
use datagen::synthetic::SyntheticSpec;
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig};
use dphist::privelet::PriveletPlus;
use dphist::RangeCountEstimator;
use dpmech::Epsilon;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn data_generation_is_seed_deterministic() {
    let spec = SyntheticSpec {
        records: 500,
        dims: 3,
        ..Default::default()
    };
    assert_eq!(spec.generate(), spec.generate());
    assert_eq!(us_census(200, 9), us_census(200, 9));
    assert_ne!(us_census(200, 9), us_census(200, 10));
}

#[test]
fn synthesis_is_rng_deterministic() {
    let data = SyntheticSpec {
        records: 800,
        dims: 2,
        domain: 64,
        ..Default::default()
    }
    .generate();
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        DpCopula::new(config)
            .synthesize(data.columns(), &data.domains(), &mut rng)
            .unwrap()
            .columns
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}

#[test]
fn lazy_privelet_noise_is_seed_stable() {
    let cols = vec![vec![1u32, 2, 3, 4, 5], vec![5u32, 4, 3, 2, 1]];
    let domains = vec![8usize, 8];
    let eps = Epsilon::new(0.5).unwrap();
    let q = [(1u32, 6u32), (0u32, 7u32)];
    let mut a = PriveletPlus::publish(cols.clone(), &domains, eps, 7);
    let mut b = PriveletPlus::publish(cols.clone(), &domains, eps, 7);
    let mut c = PriveletPlus::publish(cols, &domains, eps, 8);
    assert_eq!(a.range_count(&q), b.range_count(&q));
    assert_ne!(a.range_count(&q), c.range_count(&q));
}
