//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only hosts
//! small utilities (seeded RNG construction, tolerance assertions) reused
//! across them.

/// Asserts that `a` and `b` differ by at most `tol`, with a readable message.
pub fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() <= tol,
        "{what}: expected {b} +/- {tol}, got {a} (delta {})",
        (a - b).abs()
    );
}
