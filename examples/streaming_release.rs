//! Streaming release: synthesize arriving data epoch by epoch with the
//! evolving synthesizer (the paper's future-work item on dynamically
//! evolving datasets). Each epoch is a disjoint batch, so the whole
//! stream costs one per-epoch epsilon by parallel composition; the
//! correlation estimate is smoothed across epochs for free
//! (post-processing).
//!
//! ```sh
//! cargo run -p dpcopula-examples --release --bin streaming_release
//! ```

use datagen::stream::{DriftingStream, RhoSchedule};
use datagen::synthetic::{MarginKind, SyntheticSpec};
use dpcopula::evolving::EvolvingSynthesizer;
use dpcopula::kendall::kendall_tau;
use dpcopula::synthesizer::DpCopulaConfig;
use dpcopula_examples::heading;
use dpmech::Epsilon;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

fn main() {
    let epochs = 6;
    heading("stream with drifting dependence (rho: 0.2 -> 0.8 over 6 epochs)");
    let stream = DriftingStream::new(
        SyntheticSpec {
            records: 4_000,
            dims: 2,
            domain: 256,
            margin: MarginKind::Gaussian,
            rho: 0.2,
            seed: 23,
        },
        RhoSchedule::Linear {
            from: 0.2,
            to: 0.8,
            epochs,
        },
    );
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let mut synthesizer = EvolvingSynthesizer::new(config, 0.4);
    let mut rng = StdRng::seed_from_u64(23);

    println!(
        "{:>5} {:>10} {:>12} {:>14} {:>14}",
        "epoch", "true rho", "epoch tau", "released P01", "synthetic tau"
    );
    for (e, batch) in stream.take(epochs).enumerate() {
        let cols = batch.columns();
        let tau_in = kendall_tau(&cols[0], &cols[1]);
        let out = synthesizer
            .process_epoch(cols, &batch.domains(), &mut rng)
            .expect("epoch synthesis failed");
        let tau_out = kendall_tau(&out.columns[0], &out.columns[1]);
        println!(
            "{:>5} {:>10.2} {:>12.3} {:>14.3} {:>14.3}",
            e,
            0.2 + 0.6 * e as f64 / (epochs - 1) as f64,
            tau_in,
            out.correlation[(0, 1)],
            tau_out
        );
    }
    println!(
        "\nprocessed {} epochs; each record was touched by exactly one DP run,",
        synthesizer.epochs()
    );
    println!("so the whole stream satisfies the per-epoch epsilon (parallel composition).");
}
