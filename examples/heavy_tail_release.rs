//! Heavy-tail release: data whose extremes co-occur (tail dependence)
//! is poorly served by a Gaussian copula. This example uses the adaptive
//! synthesizer — DP model selection by AIC between the Gaussian and
//! Student-t families (the paper's future-work extension) — and shows the
//! t copula winning on t-generated data.
//!
//! ```sh
//! cargo run -p dpcopula-examples --release --bin heavy_tail_release
//! ```

use dpcopula::empirical::MarginalDistribution;
use dpcopula::selection::{synthesize_adaptive, AdaptiveConfig};
use dpcopula::synthesizer::DpCopulaConfig;
use dpcopula::tcopula::TCopulaSampler;
use dpcopula_examples::heading;
use dpmech::Epsilon;
use mathkit::correlation::equicorrelation;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// Joint-extreme co-occurrence rate: fraction of records where both
/// attributes fall in their own top q-quantile — the observable tail
/// dependence.
fn joint_tail_rate(cols: &[Vec<u32>], domain: u32, q: f64) -> f64 {
    let cut = (f64::from(domain) * (1.0 - q)) as u32;
    let hits = cols[0]
        .iter()
        .zip(&cols[1])
        .filter(|(&a, &b)| a >= cut && b >= cut)
        .count();
    hits as f64 / cols[0].len() as f64
}

fn main() {
    heading("generating tail-dependent data (t copula, nu = 3)");
    let domain = 400u32;
    let n = 15_000;
    let margins = vec![
        MarginalDistribution::from_noisy_histogram(&vec![1.0; domain as usize]),
        MarginalDistribution::from_noisy_histogram(&vec![1.0; domain as usize]),
    ];
    let generator = TCopulaSampler::new(&equicorrelation(2, 0.6), 3.0, margins).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let data = generator.sample_columns(n, &mut rng);
    let tail_orig = joint_tail_rate(&data, domain, 0.02);
    println!("records: {n}; joint 2%-tail rate: {tail_orig:.4}");
    println!("(independence would give 0.0004; the excess is tail dependence)");

    heading("adaptive DP synthesis with AIC family selection (epsilon = 2.0)");
    let config = AdaptiveConfig::new(DpCopulaConfig::kendall(Epsilon::new(2.0).unwrap()));
    let out = synthesize_adaptive(&config, &data, &[domain as usize; 2], &mut rng)
        .expect("synthesis failed");
    for s in &out.scores {
        println!(
            "  candidate {:<12} noisy AIC block votes = {:.1}",
            s.family.to_string(),
            s.noisy_votes
        );
    }
    println!("selected family: {}", out.family);

    heading("tail fidelity of the release");
    let tail_synth = joint_tail_rate(&out.synthesis.columns, domain, 0.02);
    println!("joint 2%-tail rate: original {tail_orig:.4} -> synthetic {tail_synth:.4}");

    // Contrast: a plain Gaussian DPCopula release of the same data.
    let gauss = dpcopula::DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(2.0).unwrap()))
        .synthesize(&data, &[domain as usize; 2], &mut rng)
        .expect("synthesis failed");
    let tail_gauss = joint_tail_rate(&gauss.columns, domain, 0.02);
    println!("plain Gaussian copula release would give {tail_gauss:.4}");
    println!("\nthe t copula preserves co-extremes the Gaussian flattens.");
}
