//! Fit once, sample many: fit a DPCopula model on the simulated US
//! census, persist it as a `.dpcm` artifact, then serve three disjoint
//! row shards from a "fresh server" that only ever sees the artifact —
//! demonstrating that serving is free post-processing and that sharded
//! servers jointly reproduce the single-machine output bit for bit.
//!
//! ```sh
//! cargo run -p dpcopula-examples --release --bin fit_once_sample_many
//! ```

use datagen::census::us_census;
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig};
use dpcopula::{EngineOptions, FittedModel};
use dpcopula_examples::heading;
use dpmech::Epsilon;

fn main() {
    heading("fitting the model (this is the only step that spends epsilon)");
    let data = us_census(30_000, 13);
    let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));
    let opts = EngineOptions::with_workers(4);
    let (mut model, report) = dp
        .fit_staged(data.columns(), &data.domains(), 2024, &opts)
        .expect("fit failed");
    let names: Vec<&str> = data.attributes().iter().map(|a| a.name.as_str()).collect();
    model.set_attribute_names(&names);
    println!(
        "fitted {} attributes from {} records in {:?}",
        model.dims(),
        data.len(),
        report.timings.total()
    );
    let ledger = &model.artifact().ledger;
    for e in &ledger.entries {
        println!("  spent epsilon {:.4} on {}", e.epsilon, e.label);
    }
    println!("  total: {:.4} of {:.4}", ledger.spent(), ledger.total);

    heading("persisting the release as a .dpcm artifact");
    std::fs::create_dir_all("results").expect("cannot create results dir");
    let path = "results/us_census_model.dpcm";
    model.save(path).expect("cannot write artifact");
    let bytes = std::fs::metadata(path).expect("stat artifact").len();
    println!("wrote {path} ({bytes} bytes, checksummed, self-describing)");

    heading("serving from a fresh process: three disjoint shards");
    // A deployment would do this on three separate machines; each loads
    // the artifact and owns one row range. No raw data, no extra budget.
    let n = 30_000;
    let shard_rows = n / 3;
    let mut shards = Vec::new();
    for s in 0..3 {
        let server = FittedModel::load(path).expect("artifact must load");
        let offset = s * shard_rows;
        let rows = server.sample_range(offset, shard_rows, 1 + s);
        println!(
            "  server {s}: rows [{offset}, {}) with {} worker(s)",
            offset + shard_rows,
            1 + s
        );
        shards.push(rows);
    }

    heading("checking the shards stitch to the single-machine output");
    let reference = FittedModel::load(path)
        .expect("artifact must load")
        .sample_range(0, n, 8);
    for j in 0..model.dims() {
        let stitched: Vec<u32> = shards.iter().flat_map(|s| s[j].iter().copied()).collect();
        assert_eq!(stitched, reference[j], "column {j} must stitch exactly");
    }
    println!(
        "all {} columns identical — shards are seamless.",
        model.dims()
    );
    println!(
        "\nevery row above is post-processing of one {:.1}-DP release:\n\
         serve as many rows, from as many servers, as you like.",
        ledger.total
    );
}
