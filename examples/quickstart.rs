//! Quickstart: synthesize a differentially private copy of a small
//! two-attribute dataset and check what survived.
//!
//! ```sh
//! cargo run -p dpcopula-examples --release --bin quickstart
//! ```

use dpcopula::convergence::ConvergenceReport;
use dpcopula::kendall::kendall_tau;
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig};
use dpcopula_examples::heading;
use dpmech::Epsilon;
use mathkit::correlation::equicorrelation;
use mathkit::dist::MultivariateNormal;
use mathkit::special::norm_cdf;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

fn main() {
    // 1. Make a toy dataset: two attributes on a domain of 200 values,
    //    strongly dependent (Gaussian dependence, rho = 0.75).
    heading("original data");
    let n = 20_000;
    let domain = 200usize;
    let mvn = MultivariateNormal::new(&equicorrelation(2, 0.75)).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let columns: Vec<Vec<u32>> = mvn
        .sample_columns(&mut rng, n)
        .into_iter()
        .map(|zc| {
            zc.into_iter()
                .map(|z| ((norm_cdf(z) * domain as f64) as u32).min(domain as u32 - 1))
                .collect()
        })
        .collect();
    let tau_before = kendall_tau(&columns[0], &columns[1]);
    println!("records: {n}, domains: {domain}x{domain}");
    println!("kendall tau(a, b) = {tau_before:.3}");

    // 2. Synthesize under a total budget of epsilon = 1.0 with the
    //    paper's defaults (Kendall correlation, k = 8, EFPA margins).
    heading("DPCopula synthesis (epsilon = 1.0)");
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let synthesis = DpCopula::new(config)
        .synthesize(&columns, &[domain, domain], &mut rng)
        .expect("synthesis failed");
    println!(
        "budget split: margins eps1 = {:.3}, correlations eps2 = {:.3}",
        synthesis.epsilon_margins, synthesis.epsilon_correlations
    );
    println!(
        "released correlation matrix entry P[0,1] = {:.3}",
        synthesis.correlation[(0, 1)]
    );

    // 3. Compare: margins, dependence, and a few range counts.
    heading("utility check");
    let tau_after = kendall_tau(&synthesis.columns[0], &synthesis.columns[1]);
    println!("kendall tau original {tau_before:.3} -> synthetic {tau_after:.3}");
    let report = ConvergenceReport::compare(&columns, &synthesis.columns);
    println!(
        "max marginal KS distance = {:.4}, max tau gap = {:.4}",
        report.max_marginal_ks(),
        report.max_tau_gap
    );

    for (lo_a, hi_a, lo_b, hi_b) in [
        (0u32, 99u32, 0u32, 99u32),
        (50, 150, 50, 150),
        (0, 20, 180, 199),
    ] {
        let truth = count(&columns, lo_a, hi_a, lo_b, hi_b);
        let synth = count(&synthesis.columns, lo_a, hi_a, lo_b, hi_b);
        println!(
            "count(a in [{lo_a},{hi_a}], b in [{lo_b},{hi_b}]): true {truth}, synthetic {synth}"
        );
    }
    println!("\ndone — the synthetic table is safe to publish under 1.0-DP.");
}

fn count(cols: &[Vec<u32>], lo_a: u32, hi_a: u32, lo_b: u32, hi_b: u32) -> usize {
    cols[0]
        .iter()
        .zip(&cols[1])
        .filter(|(&a, &b)| a >= lo_a && a <= hi_a && b >= lo_b && b <= hi_b)
        .count()
}
