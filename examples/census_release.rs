//! Census release: run the hybrid synthesizer (Algorithm 6) on the
//! simulated Brazil census — 8 attributes, three of them binary — and
//! export the private release as CSV.
//!
//! ```sh
//! cargo run -p dpcopula-examples --release --bin census_release
//! ```

use datagen::census::brazil_census;
use datagen::io::save_csv;
use datagen::{Attribute, Dataset};
use dpcopula::convergence::ConvergenceReport;
use dpcopula::hybrid::{HybridConfig, HybridSynthesizer};
use dpcopula::synthesizer::{DpCopulaConfig, MarginMethod};
use dpcopula_examples::heading;
use dpmech::Epsilon;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

fn main() {
    heading("loading the (simulated) Brazil census");
    let n = 50_000; // trimmed from 188 846 to keep the example snappy
    let data = brazil_census(n, 7);
    for a in data.attributes() {
        println!("  {:<16} domain {}", a.name, a.domain);
    }

    heading("hybrid DPCopula synthesis (epsilon = 1.0)");
    let base = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()).with_margin(MarginMethod::Php);
    let synthesizer = HybridSynthesizer::new(HybridConfig::new(base));
    let mut rng = StdRng::seed_from_u64(11);
    let out = synthesizer
        .synthesize(data.columns(), &data.domains(), &mut rng)
        .expect("synthesis failed");
    println!(
        "partitioned on {} small-domain attribute(s) into {} cells",
        out.small_attributes.len(),
        out.partitions
    );
    println!(
        "synthetic records: {} (original {})",
        out.columns[0].len(),
        data.len()
    );

    heading("utility diagnostics");
    let report = ConvergenceReport::compare(data.columns(), &out.columns);
    for (a, ks) in data.attributes().iter().zip(&report.marginal_ks) {
        println!("  KS({:<16}) = {ks:.4}", a.name);
    }
    println!("  max pairwise tau gap = {:.4}", report.max_tau_gap);

    heading("writing the private release");
    let released = Dataset::new(
        data.attributes()
            .iter()
            .map(|a| Attribute::new(a.name.clone(), a.domain))
            .collect(),
        out.columns,
    );
    let path = "results/brazil_census_dp_release.csv";
    std::fs::create_dir_all("results").expect("cannot create results dir");
    save_csv(&released, path).expect("cannot write csv");
    println!("wrote {path} ({} records)", released.len());
    println!("\nthe file satisfies 1.0-differential privacy end to end.");
}
