//! Budget planner: how should you split a privacy budget between margins
//! and correlations (the ratio `k` of the paper's Fig 5), and what does
//! each epsilon buy you?
//!
//! The example sweeps both knobs on a synthetic workload and prints the
//! resulting error grid, plus the budget-accountant trace for one run.
//!
//! ```sh
//! cargo run -p dpcopula-examples --release --bin budget_planner
//! ```

use datagen::synthetic::{MarginKind, SyntheticSpec};
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig, MarginMethod};
use dpcopula_examples::heading;
use dpmech::{BudgetAccountant, Epsilon};
use queryeval::{ErrorSummary, Workload};
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

fn main() {
    let data = SyntheticSpec {
        records: 20_000,
        dims: 4,
        domain: 500,
        margin: MarginKind::Gaussian,
        ..Default::default()
    }
    .generate();
    let mut rng = StdRng::seed_from_u64(3);
    let workload = Workload::random(&data.domains(), 300, &mut rng);
    let truth = workload.true_counts(data.columns());

    heading("error grid: epsilon x budget-ratio k");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8}",
        "eps\\k", "0.5", "2", "8", "32"
    );
    for eps in [0.1, 0.5, 1.0, 2.0] {
        let mut row = format!("{eps:>8}");
        for k in [0.5, 2.0, 8.0, 32.0] {
            let config = DpCopulaConfig::kendall(Epsilon::new(eps).unwrap())
                .with_k_ratio(k)
                .with_margin(MarginMethod::Php);
            let mut rel = 0.0;
            let runs = 3;
            for s in 0..runs {
                let mut rng = StdRng::seed_from_u64(100 + s);
                let out = DpCopula::new(config)
                    .synthesize(data.columns(), &data.domains(), &mut rng)
                    .expect("synthesis failed");
                let answers = workload.estimate_with(|q| q.count(&out.columns));
                rel += ErrorSummary::from_answers(&answers, &truth, 1.0).mean_relative;
            }
            row.push_str(&format!(" {:>8.3}", rel / runs as f64));
        }
        println!("{row}");
    }
    println!("\n(read: rows = total epsilon, columns = k = eps1/eps2; the");
    println!(" plateau for k >= 1 is the paper's Fig 5 insensitivity claim)");

    heading("budget accounting trace (epsilon = 1.0, k = 8, m = 4)");
    let total = Epsilon::new(1.0).unwrap();
    let (eps1, eps2) = total.split_ratio(8.0);
    let mut acc = BudgetAccountant::new(total);
    let m = 4;
    for j in 0..m {
        acc.spend(eps1.divide(m)).unwrap();
        println!(
            "  margin {j}: spent {:.4}, remaining {:.4}",
            eps1.divide(m).value(),
            acc.remaining()
        );
    }
    acc.spend(eps2).unwrap();
    println!(
        "  correlations: spent {:.4}, remaining {:.4}",
        eps2.value(),
        acc.remaining()
    );
    println!("  any further spend now fails:");
    let err = acc.spend(Epsilon::new(0.01).unwrap()).unwrap_err();
    println!("  -> {err}");
}
