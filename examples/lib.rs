//! Shared helpers for the example binaries.

/// Prints a section heading.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a slice of `f64` compactly for console output.
pub fn fmt_vec(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    format!("[{}]", cells.join(", "))
}
