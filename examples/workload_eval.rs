//! Workload evaluation: compare a DPCopula release against a PSD release
//! on the same random range-count workload — the paper's §5 methodology
//! in miniature, using the public APIs only.
//!
//! ```sh
//! cargo run -p dpcopula-examples --release --bin workload_eval
//! ```

use datagen::synthetic::{MarginKind, SyntheticSpec};
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig, MarginMethod};
use dpcopula_examples::heading;
use dphist::psd::{Psd, PsdConfig};
use dphist::RangeCountEstimator;
use dpmech::Epsilon;
use queryeval::{ErrorSummary, Workload};
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

fn main() {
    // 6-D, 1000-bin domains: the sparse regime the paper targets
    // (domain space 10^18 cells holding only 30 000 records).
    let data = SyntheticSpec {
        records: 30_000,
        dims: 6,
        domain: 1000,
        margin: MarginKind::Zipf(1.1),
        ..Default::default()
    }
    .generate();
    heading("dataset");
    println!(
        "records: {}, dims: {}, domain space: {:.1e} cells",
        data.len(),
        data.dims(),
        data.domain_space()
    );

    let mut rng = StdRng::seed_from_u64(5);
    let workload = Workload::random(&data.domains(), 500, &mut rng);
    let truth = workload.true_counts(data.columns());

    for eps in [0.1, 1.0] {
        heading(&format!("epsilon = {eps}"));
        let epsilon = Epsilon::new(eps).unwrap();

        // DPCopula release -> answer by counting synthetic records.
        let config = DpCopulaConfig::kendall(epsilon).with_margin(MarginMethod::Php);
        let mut rng = StdRng::seed_from_u64(50);
        let synth = DpCopula::new(config)
            .synthesize(data.columns(), &data.domains(), &mut rng)
            .expect("synthesis failed");
        let answers = workload.estimate_with(|q| q.count(&synth.columns));
        let dpcopula = ErrorSummary::from_answers(&answers, &truth, 1.0);

        // PSD release -> answer from the noisy KD tree.
        let mut rng = StdRng::seed_from_u64(51);
        let mut psd = Psd::publish(
            data.columns(),
            &data.domains(),
            epsilon,
            PsdConfig::default(),
            &mut rng,
        );
        let answers = workload.estimate_with(|q| psd.range_count(q.ranges()));
        let psd_summary = ErrorSummary::from_answers(&answers, &truth, 1.0);

        println!(
            "DPCopula: mean relative error {:.4}, mean absolute error {:.2}",
            dpcopula.mean_relative, dpcopula.mean_absolute
        );
        println!(
            "PSD:      mean relative error {:.4}, mean absolute error {:.2}",
            psd_summary.mean_relative, psd_summary.mean_absolute
        );
    }
    println!("\n(the gap in DPCopula's favour grows as epsilon shrinks and");
    println!(" dimensionality rises — the paper's headline result)");
}
