//! Golden tests for the ziggurat normal sampler: moment bounds and
//! sorted-sample quantile pins over 1e6-draw windows, at two distinct
//! seeds so a single lucky stream can't mask a biased table.

use rngkit::rngs::StdRng;
use rngkit::ziggurat::{fill_standard_normal, standard_normal};
use rngkit::SeedableRng;

const N: usize = 1_000_000;

/// Reference standard-normal quantiles (Φ⁻¹), pinned to 6 decimals.
const QUANTILE_PINS: [(f64, f64); 9] = [
    (0.001, -3.090232),
    (0.010, -2.326348),
    (0.050, -1.644854),
    (0.250, -0.674490),
    (0.500, 0.0),
    (0.750, 0.674490),
    (0.950, 1.644854),
    (0.990, 2.326348),
    (0.999, 3.090232),
];

fn window(seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = vec![0.0; N];
    fill_standard_normal(&mut rng, &mut buf);
    buf
}

#[test]
fn moments_match_standard_normal_over_1e6_draws() {
    for seed in [0x5eed_0001u64, 0x5eed_0002] {
        let xs = window(seed);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let skew = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n / var.powf(1.5);
        let kurt = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n / (var * var);
        // Sampling error of the mean is ~1/sqrt(1e6) = 1e-3; allow 5σ.
        assert!(mean.abs() < 5e-3, "seed {seed:#x}: mean {mean}");
        assert!((var - 1.0).abs() < 1.5e-2, "seed {seed:#x}: var {var}");
        assert!(skew.abs() < 2e-2, "seed {seed:#x}: skew {skew}");
        assert!((kurt - 3.0).abs() < 5e-2, "seed {seed:#x}: kurtosis {kurt}");
    }
}

#[test]
fn sample_quantiles_match_normal_quantile_pins() {
    for seed in [0xab5_0001u64, 0xab5_0002] {
        let mut xs = window(seed);
        xs.sort_by(|a, b| a.partial_cmp(b).expect("draws are finite"));
        for (p, z) in QUANTILE_PINS {
            let got = xs[((N as f64) * p) as usize];
            // Quantile sampling error scales as sqrt(p(1-p)/n)/φ(z):
            // ~0.002 at the median, ~0.04 at the 0.1% tails. Allow 5σ.
            let tol = if (0.01..=0.99).contains(&p) {
                0.02
            } else {
                0.06
            };
            assert!(
                (got - z).abs() < tol,
                "seed {seed:#x}: quantile({p}) = {got}, want {z}"
            );
        }
    }
}

#[test]
fn tail_mass_beyond_layer_edge_is_correct() {
    // P(|X| > R) for R = 3.654152885361008796 is ~2.58e-4, so a 1e6-draw
    // window expects ~258 tail hits; [150, 400] is a ±6σ Poisson band.
    let xs = window(0x7a11);
    let r = 3.654_152_885_361_009;
    let hits = xs.iter().filter(|x| x.abs() > r).count();
    assert!((150..=400).contains(&hits), "tail hits {hits}");
    // The tail path must actually produce values beyond R (not clip).
    let max = xs.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
    assert!(max > r, "max |x| = {max} never entered the tail");
}

#[test]
fn symmetric_within_sampling_error() {
    let xs = window(0x51de);
    let pos = xs.iter().filter(|x| **x > 0.0).count() as f64;
    let frac = pos / xs.len() as f64;
    assert!((frac - 0.5).abs() < 3e-3, "positive fraction {frac}");
}

#[test]
fn single_draws_match_fill() {
    let mut a = StdRng::seed_from_u64(0xf111);
    let mut b = StdRng::seed_from_u64(0xf111);
    let mut buf = [0.0; 1000];
    fill_standard_normal(&mut a, &mut buf);
    for &v in &buf {
        assert_eq!(v.to_bits(), standard_normal(&mut b).to_bits());
    }
}
