//! Named generator aliases, mirroring `rand::rngs`.

/// The workspace's standard generator — an alias for
/// [`Xoshiro256PlusPlus`](crate::Xoshiro256PlusPlus).
///
/// The `rand`-era name is kept so the `StdRng::seed_from_u64(..)` idiom
/// at existing call sites survives the dependency swap unchanged. Unlike
/// `rand`'s `StdRng` this generator is *not* cryptographically secure;
/// every use in this workspace is simulation sampling, where statistical
/// quality and reproducibility are the requirements.
pub type StdRng = crate::Xoshiro256PlusPlus;

/// Explicit alias for code that wants to name the deterministic-seeding
/// contract rather than the "standard generator" role.
pub type SmallRng = crate::Xoshiro256PlusPlus;
