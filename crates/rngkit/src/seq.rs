//! Sequence operations over a generator, mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Random operations on slices: Fisher–Yates [`shuffle`](Self::shuffle)
/// and uniform [`choose`](Self::choose).
pub trait SliceRandom {
    /// The element type of the sequence.
    type Item;

    /// Shuffles the sequence in place with the Fisher–Yates algorithm:
    /// every one of the `n!` permutations is equally likely, using
    /// exactly `n - 1` range draws.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle fixing every point is ~impossible"
        );
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..50).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn shuffle_positions_are_roughly_uniform() {
        // Element 0's final position averaged over many shuffles should
        // be near the middle of a 10-slot array.
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            let mut v: Vec<u32> = (0..10).collect();
            v.shuffle(&mut rng);
            sum += v.iter().position(|&x| x == 0).unwrap();
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 4.5).abs() < 0.1, "mean position {mean}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1u32, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
