//! Self-contained pseudo-random substrate for the DPCopula workspace.
//!
//! The crate replaces the external `rand` dependency with an in-repo
//! implementation so the workspace builds offline and every stochastic
//! run is byte-reproducible from a single `u64` seed:
//!
//! * [`SplitMix64`] — the seeding generator: expands one `u64` into the
//!   256-bit state of the main generator (and nothing else — it is too
//!   weak to drive simulations on its own);
//! * [`Xoshiro256PlusPlus`] — the workhorse generator (Blackman & Vigna),
//!   with `jump()`/`long_jump()` for guaranteed-disjoint parallel streams
//!   and [`Xoshiro256PlusPlus::split`] for cheap per-thread substreams;
//! * [`Rng`] — the user-facing extension trait: `gen`, `gen_range`,
//!   `gen_bool`, `fill`, mirroring the subset of the `rand 0.8` API this
//!   workspace uses so call sites rewire with a one-line import change;
//! * [`seq::SliceRandom`] — Fisher–Yates [`shuffle`](seq::SliceRandom::shuffle)
//!   and [`choose`](seq::SliceRandom::choose);
//! * [`rngs::StdRng`] — alias for [`Xoshiro256PlusPlus`], keeping the
//!   `rand`-era type name at the 100+ existing `StdRng::seed_from_u64`
//!   call sites.
//!
//! ```
//! use rngkit::rngs::StdRng;
//! use rngkit::{Rng, RngCore, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let u: f64 = rng.gen();            // uniform in [0, 1)
//! let k = rng.gen_range(0..10u32);   // uniform integer, unbiased
//! assert!((0.0..1.0).contains(&u) && k < 10);
//!
//! // Same seed, same stream — the reproducibility contract.
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![warn(missing_docs)]

mod range;
pub mod rngs;
pub mod seq;
mod splitmix;
mod xoshiro;
pub mod ziggurat;

pub use range::SampleRange;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// The object-safe generator core: a source of uniformly distributed
/// `u64` words. Everything else ([`Rng`]) is derived from this.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly distributed bits (the *upper* half of a
    /// `next_u64` draw — xoshiro's low bits are its weakest).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed; mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type (the full generator state, little-endian bytes).
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanded to full state
    /// via [`SplitMix64`] — the recommended constructor everywhere in
    /// this workspace: any failed test or experiment reproduces from the
    /// one number this was called with.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types drawable uniformly from a generator's raw bits via
/// [`Rng::gen`]; mirrors `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Sign bit of a u64 draw.
        rng.next_u64() >> 63 == 1
    }
}

/// The user-facing generator API, blanket-implemented for every
/// [`RngCore`]. Import it (`use rngkit::Rng;`) to get `gen`,
/// `gen_range`, `gen_bool` and `fill` on any generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its natural uniform distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`), without
    /// modulo bias for integers.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires p in [0, 1], got {p}"
        );
        self.gen::<f64>() < p
    }

    /// Fills `dest` with independent [`Standard`] draws.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::generate(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_writes_every_slot() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0.0f64; 64];
        rng.fill(&mut buf);
        assert!(buf.iter().all(|&v| (0.0..1.0).contains(&v)));
        // 64 independent U[0,1) draws are never all identical.
        assert!(buf.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fill_bytes_covers_non_multiple_of_eight() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn trait_works_through_mut_reference_and_unsized() {
        fn mean_of<R: Rng + ?Sized>(rng: &mut R, n: u32) -> f64 {
            (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let m = mean_of(&mut rng, 50_000);
        assert!((m - 0.5).abs() < 0.01, "mean was {m}");
    }
}
