//! xoshiro256++ (Blackman & Vigna 2019) — the workspace's main generator.
//!
//! 256 bits of state, period `2^256 - 1`, passes BigCrush, and ~1 ns per
//! draw. Chosen over the ChaCha-based `rand::StdRng` it replaces because
//! the DP guarantees here do not rest on cryptographic unpredictability —
//! only on the sampled *distributions* — while experiment throughput and
//! an auditable, dependency-free implementation do matter.
//!
//! Parallel streams: [`Xoshiro256PlusPlus::jump`] advances `2^128` steps,
//! so `k` jumped generators give `k` provably non-overlapping sequences
//! of `2^128` draws each; [`Xoshiro256PlusPlus::split`] derives a child
//! generator by reseeding from the parent's output, which is cheaper and
//! statistically (not provably) disjoint.

use crate::splitmix::SplitMix64;
use crate::{RngCore, SeedableRng};

/// xoshiro256++ generator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// Jump polynomial: advances the state by `2^128` steps.
const JUMP: [u64; 4] = [
    0x180e_c6d3_3cfd_0aba,
    0xd5a6_1266_f0c9_392c,
    0xa958_2618_e03f_c9aa,
    0x39ab_dc45_29b1_661c,
];

/// Long-jump polynomial: advances the state by `2^192` steps.
const LONG_JUMP: [u64; 4] = [
    0x76e1_5d3e_fefd_cbbf,
    0xc500_4e44_1c52_2fb3,
    0x7771_0069_854e_e241,
    0x3910_9bb0_2acb_e635,
];

impl Xoshiro256PlusPlus {
    /// Builds a generator directly from four state words.
    ///
    /// An all-zero state is a fixed point of the transition; it is
    /// remapped through [`SplitMix64`] so every input is usable.
    #[must_use]
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            let mut sm = SplitMix64::new(0);
            for word in &mut s {
                *word = sm.next_u64();
            }
        }
        Self { s }
    }

    /// Advances the state by `2^128` draws. Two generators separated by a
    /// `jump` cannot overlap within `2^128` draws of each other — the
    /// basis for provably independent per-thread streams.
    pub fn jump(&mut self) {
        self.apply_jump_poly(&JUMP);
    }

    /// Advances the state by `2^192` draws — for partitioning streams at
    /// a coarser level than [`jump`](Self::jump) (e.g. one `long_jump`
    /// per machine, one `jump` per thread).
    pub fn long_jump(&mut self) {
        self.apply_jump_poly(&LONG_JUMP);
    }

    /// Returns a child generator seeded from this generator's output and
    /// advances `self` by one draw. Children of distinct draws are
    /// statistically independent; use [`jump`](Self::jump) where provable
    /// non-overlap is required.
    #[must_use]
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    fn apply_jump_poly(&mut self, poly: &[u64; 4]) {
        let mut acc = [0u64; 4];
        for &word in poly {
            for bit in 0..64 {
                if word & (1 << bit) != 0 {
                    for (a, s) in acc.iter_mut().zip(&self.s) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self::from_state(s)
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = sm.next_u64();
        }
        Self::from_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-gate vector: first 10 outputs from state
    /// `[1, 2, 3, 4]`, matching the reference C implementation
    /// (https://prng.di.unimi.it/xoshiro256plusplus.c) and the
    /// `rand_xoshiro` crate's test vector.
    #[test]
    fn matches_published_reference_vector() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = Xoshiro256PlusPlus::from_seed(seed);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "draw {i} diverged from reference");
        }
    }

    /// `seed_from_u64` must equal SplitMix64 expansion into `from_state`
    /// — the documented seeding discipline.
    #[test]
    fn seed_from_u64_expands_via_splitmix() {
        let mut sm = SplitMix64::new(0);
        let state = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        assert_eq!(
            state,
            [
                16294208416658607535,
                7960286522194355700,
                487617019471545679,
                17909611376780542444
            ]
        );
        let mut a = Xoshiro256PlusPlus::seed_from_u64(0);
        let mut b = Xoshiro256PlusPlus::from_state(state);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn all_zero_state_is_remapped() {
        let mut rng = Xoshiro256PlusPlus::from_state([0; 4]);
        // An actual all-zero xoshiro state would emit zeros forever.
        assert!((0..16).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn jump_changes_stream_and_preserves_determinism() {
        let base = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut jumped = base.clone();
        jumped.jump();
        let mut jumped2 = base.clone();
        jumped2.jump();
        assert_eq!(jumped, jumped2, "jump must be deterministic");
        let mut base = base;
        assert_ne!(base.next_u64(), jumped.next_u64());
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let base = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut j = base.clone();
        j.jump();
        let mut lj = base;
        lj.long_jump();
        assert_ne!(j, lj);
    }

    #[test]
    fn split_children_are_deterministic_and_distinct() {
        let mut parent1 = Xoshiro256PlusPlus::seed_from_u64(17);
        let mut parent2 = Xoshiro256PlusPlus::seed_from_u64(17);
        let mut a1 = parent1.split();
        let mut b1 = parent1.split();
        let mut a2 = parent2.split();
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b1.next_u64());
    }
}
