//! Marsaglia–Tsang ziggurat sampler for the standard normal.
//!
//! The fast sampling profile draws one normal per table lookup in the
//! common case: a single `next_u64` supplies the layer index (low 8
//! bits) and a signed 53-bit uniform, and ~98.8% of draws accept
//! immediately with one multiply and one compare. The remaining draws
//! fall through to the wedge test (one exp) or, for layer 0, the
//! Marsaglia exponential tail.
//!
//! The tables are built once per process (`OnceLock`) from the classic
//! 256-layer construction: `R = 3.654152885361008796` and the layer
//! area `V = R·f(R) + ∫_R^∞ f` with `f(x) = exp(-x²/2)`. The tail
//! integral is evaluated with a Mills-ratio continued fraction so the
//! crate stays free of `mathkit` (rngkit sits below it in the
//! dependency graph).
//!
//! This sampler is **not** used by the `Reference` sampling profile —
//! that path keeps its pinned polar-method byte stream. `Fast` is held
//! to distributional equality instead (see the workspace DESIGN.md).

use crate::RngCore;
use std::sync::OnceLock;

/// Number of ziggurat layers.
const LAYERS: usize = 256;

/// Rightmost layer edge of the 256-layer normal ziggurat.
const NORM_R: f64 = 3.654_152_885_361_009;

/// Unnormalised standard-normal density `exp(-x²/2)`.
#[inline]
fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp()
}

/// Inverse of [`pdf`] on `x ≥ 0`: `sqrt(-2 ln y)`.
#[inline]
fn pdf_inv(y: f64) -> f64 {
    (-2.0 * y.ln()).sqrt()
}

/// Upper tail mass `∫_r^∞ exp(-x²/2) dx` via the Mills-ratio continued
/// fraction `f(r) / (r + 1/(r + 2/(r + 3/(r + …))))`, evaluated
/// backwards over 64 terms — far more than needed for r ≈ 3.65, where
/// the fraction converges to full double precision in ~25 terms.
fn tail_area(r: f64) -> f64 {
    let mut cf = 0.0;
    for k in (1..=64).rev() {
        cf = k as f64 / (r + cf);
    }
    pdf(r) / (r + cf)
}

/// Precomputed layer edges `x[0..=256]` and densities `f[i] = pdf(x[i])`.
struct Tables {
    x: [f64; LAYERS + 1],
    f: [f64; LAYERS + 1],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        // Common layer area: base strip [0, R] × f(R) plus the tail.
        let v = NORM_R * pdf(NORM_R) + tail_area(NORM_R);
        let mut x = [0.0; LAYERS + 1];
        // x[0] is the virtual base-strip edge V / f(R) (> R); x[1] = R.
        x[0] = v / pdf(NORM_R);
        x[1] = NORM_R;
        for i in 1..LAYERS - 1 {
            // Each layer has area v: f(x[i+1]) = f(x[i]) + v / x[i].
            x[i + 1] = pdf_inv(pdf(x[i]) + v / x[i]);
        }
        x[LAYERS] = 0.0;
        let mut f = [0.0; LAYERS + 1];
        for i in 0..=LAYERS {
            f[i] = pdf(x[i]);
        }
        Tables { x, f }
    })
}

/// Uniform in the *open* interval `(0, 1)` — safe to pass to `ln`.
#[inline]
fn open01<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    loop {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

/// Draws one standard-normal variate with the 256-layer ziggurat.
///
/// Consumes a variable number of `next_u64` words (one in ~98.8% of
/// calls); callers that need a reproducible stream must therefore fix
/// the *sequence of calls*, not a per-call word budget.
pub fn standard_normal<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    let t = tables();
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xff) as usize;
        // Signed uniform in [-1, 1) from the top 53 bits.
        let u = 2.0 * ((bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) - 1.0;
        let x = u * t.x[i];
        if x.abs() < t.x[i + 1] {
            // Inside the layer's rectangle core: accept immediately.
            return x;
        }
        if i == 0 {
            // Tail: Marsaglia's exponential method beyond R.
            loop {
                let ex = -open01(rng).ln() / NORM_R;
                let ey = -open01(rng).ln();
                if 2.0 * ey > ex * ex {
                    return if u < 0.0 { -(NORM_R + ex) } else { NORM_R + ex };
                }
            }
        }
        // Wedge: accept iff a uniform height under the layer falls
        // below the density at x.
        let h = t.f[i + 1]
            + (t.f[i] - t.f[i + 1]) * ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64));
        if h < pdf(x) {
            return x;
        }
    }
}

/// Fills `out` with independent standard-normal draws; identical to
/// calling [`standard_normal`] once per slot.
pub fn fill_standard_normal<G: RngCore + ?Sized>(rng: &mut G, out: &mut [f64]) {
    for slot in out {
        *slot = standard_normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn tables_are_monotone_and_anchored() {
        let t = tables();
        assert_eq!(t.x[1], NORM_R);
        assert_eq!(t.x[LAYERS], 0.0);
        assert!(t.x[0] > t.x[1], "virtual edge exceeds R");
        for i in 1..LAYERS {
            assert!(t.x[i] > t.x[i + 1], "x must strictly decrease at {i}");
        }
        // f is pdf evaluated on x: increasing as x decreases, ending at 1.
        assert_eq!(t.f[LAYERS], 1.0);
        for i in 0..LAYERS {
            assert!(t.f[i] < t.f[i + 1], "f must strictly increase at {i}");
        }
    }

    #[test]
    fn layer_areas_are_equal() {
        // Every rectangle x[i] × (f(x[i+1]) - f(x[i])) has the common
        // area v, by construction; spot-check it holds numerically.
        let t = tables();
        let v = NORM_R * pdf(NORM_R) + tail_area(NORM_R);
        for i in 1..LAYERS {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!(
                (area - v).abs() < 1e-12,
                "layer {i} area {area} deviates from {v}"
            );
        }
    }

    #[test]
    fn tail_area_matches_erfc_pin() {
        // sqrt(pi/2) * erfc(R / sqrt(2)) for R = 3.654152885361008796,
        // computed independently to 30 significant digits.
        let want = 3.233_957_646_633_212_6e-4;
        let got = tail_area(NORM_R);
        assert!((got - want).abs() < 1e-15, "tail area {got} vs {want}");
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            assert_eq!(
                standard_normal(&mut a).to_bits(),
                standard_normal(&mut b).to_bits()
            );
        }
    }

    #[test]
    fn fill_matches_sequential_draws() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut buf = [0.0; 257];
        fill_standard_normal(&mut a, &mut buf);
        for &v in &buf {
            assert_eq!(v.to_bits(), standard_normal(&mut b).to_bits());
        }
    }
}
