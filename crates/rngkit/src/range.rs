//! Uniform sampling from `a..b` / `a..=b` ranges — the implementation
//! behind [`Rng::gen_range`](crate::Rng::gen_range).
//!
//! Integer ranges use Lemire's multiply-shift rejection method
//! (*Fast Random Integer Generation in an Interval*, 2019): one 128-bit
//! multiply in the common case, exactly uniform over any span.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that [`Rng::gen_range`](crate::Rng::gen_range) can sample
/// uniformly; mirrors `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire rejection; `span == 0` means
/// the full 2^64 range.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        // Reject draws in the biased low zone: threshold = 2^64 mod span.
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty => $unsigned:ty),+ $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                let offset = uniform_below(rng, u64::from(span)) as $unsigned;
                (self.start as $unsigned).wrapping_add(offset) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                // span = end - start + 1; wraps to 0 on the full range,
                // which uniform_below treats as "no restriction".
                let span = (end as $unsigned)
                    .wrapping_sub(start as $unsigned)
                    .wrapping_add(1);
                let offset = uniform_below(rng, u64::from(span)) as $unsigned;
                (start as $unsigned).wrapping_add(offset) as $ty
            }
        }
    )+};
}

impl_int_range!(
    u8 => u8, u16 => u16, u32 => u32,
    i8 => u8, i16 => u16, i32 => u32,
);

macro_rules! impl_wide_int_range {
    ($($ty:ty),+ $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(uniform_below(rng, span)) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                (start as u64).wrapping_add(uniform_below(rng, span)) as $ty
            }
        }
    )+};
}

impl_wide_int_range!(u64, i64, usize, isize);

macro_rules! impl_float_range {
    ($($ty:ty),+ $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(
                    self.start < self.end && self.start.is_finite() && self.end.is_finite(),
                    "gen_range requires a non-empty finite range"
                );
                let u = <$ty as crate::Standard>::generate(rng);
                // u in [0, 1) keeps the draw strictly below `end` except
                // for rounding at extreme spans; clamp restores the
                // half-open contract.
                let v = self.start + (self.end - self.start) * u;
                if v >= self.end { self.start } else { v }
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(
                    start <= end && start.is_finite() && end.is_finite(),
                    "gen_range requires a non-empty finite range"
                );
                let u = <$ty as crate::Standard>::generate(rng);
                (start + (end - start) * u).min(end)
            }
        }
    )+};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..60u32);
            assert!((3..60).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn integer_range_is_unbiased_across_buckets() {
        // span 3 over u64 draws: Lemire rejection must equalise counts.
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 3];
        for _ in 0..90_000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) - 30_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn unit_width_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_range(7..8u32) == 7));
        assert!((0..100).all(|_| rng.gen_range(7..=7u32) == 7));
    }

    #[test]
    fn float_range_respects_half_open_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = rng.gen_range(0..=u64::MAX);
        let b = rng.gen_range(0..=u64::MAX);
        assert_ne!(a, b); // 2^-64 collision chance
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(5..5u32);
    }
}
