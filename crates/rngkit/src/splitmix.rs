//! SplitMix64 (Steele, Lea & Flood 2014) — the seed expander.
//!
//! One additive step plus a 3-round mixing finaliser. Equidistributed
//! over its full 2^64 period and free of zero-land pathologies, which is
//! exactly what a seeder needs: any `u64` — including 0 — expands to a
//! high-entropy xoshiro state. Not used as a simulation generator.

use crate::RngCore;

/// The golden-ratio increment `2^64 / φ`, the Weyl constant of SplitMix64.
pub(crate) const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_vigna_reference_vector() {
        // First outputs of the reference C implementation
        // (https://prng.di.unimi.it/splitmix64.c) seeded with 1234567.
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_produces_nonzero_stream() {
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        assert_ne!(first, 0);
        assert_ne!(sm.next_u64(), first);
    }

    #[test]
    fn streams_from_different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
