//! Golden tests for the log-linear histogram: exact bucket boundaries
//! at the linear/exponential transitions, and percentile values pinned
//! against hand-computed references.

use obskit::hist::{bucket_index, bucket_lower, bucket_upper, NUM_BUCKETS, SUBBUCKETS};
use obskit::Histogram;

#[test]
fn golden_bucket_boundaries() {
    // Linear region: one bucket per value, 0..16.
    let golden_linear: [(u64, usize); 4] = [(0, 0), (1, 1), (15, 15), (16, 16)];
    for (value, index) in golden_linear {
        assert_eq!(bucket_index(value), index, "value {value}");
    }
    // First exponential octave [16, 32): width-1 sub-buckets (16 values
    // over 16 sub-buckets), so still exact.
    assert_eq!(bucket_index(17), 17);
    assert_eq!(bucket_index(31), 31);
    // Second octave [32, 64): width-2 sub-buckets.
    assert_eq!(bucket_index(32), 32);
    assert_eq!(bucket_index(33), 32);
    assert_eq!(bucket_index(34), 33);
    assert_eq!(bucket_lower(32), 32);
    assert_eq!(bucket_upper(32), 33);
    // Octave [1024, 2048): width-64 sub-buckets.
    assert_eq!(bucket_lower(bucket_index(1024)), 1024);
    assert_eq!(bucket_upper(bucket_index(1024)), 1087);
    assert_eq!(bucket_index(1087), bucket_index(1024));
    assert_ne!(bucket_index(1088), bucket_index(1024));
    // Top of the range saturates instead of overflowing.
    assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
}

#[test]
fn golden_full_coverage_sweep() {
    // Exhaustively verify lower <= v <= upper and boundary adjacency for
    // every value up to 4096 (covers the linear region and 8 octaves).
    let mut prev = bucket_index(0);
    for v in 0..=4096u64 {
        let i = bucket_index(v);
        assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "value {v}");
        assert!(i == prev || i == prev + 1, "index jumped at {v}");
        prev = i;
    }
}

#[test]
fn golden_percentiles_uniform_1_to_1000() {
    let h = Histogram::new();
    for v in 1..=1000u64 {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 1000);
    assert_eq!(s.sum, 500_500);
    assert_eq!(s.min, 1);
    assert_eq!(s.max, 1000);
    // Rank 500 is value 500, inside octave [512)? No: 500 lies in octave
    // [256, 512), sub-bucket width 16: bucket [496, 511] → p50 = 511.
    assert_eq!(s.p50(), 511);
    // Rank 950 is value 950, octave [512, 1024), width 32: bucket
    // [928, 959] → p95 = 959.
    assert_eq!(s.p95(), 959);
    // Rank 990 is value 990, bucket [960, 991] → p99 = 991.
    assert_eq!(s.p99(), 991);
    // q=1.0 is clamped by the recorded max.
    assert_eq!(s.quantile(1.0), 1000);
    // q=0 clamps to rank 1 (the minimum's bucket upper bound).
    assert_eq!(s.quantile(0.0), 1);
}

#[test]
fn golden_percentiles_small_exact_region() {
    // All values inside the width-1 region: percentiles are exact order
    // statistics.
    let h = Histogram::new();
    for v in [2u64, 4, 4, 8, 15] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.p50(), 4); // rank ceil(0.5*5)=3 → second 4
    assert_eq!(s.p95(), 15); // rank ceil(0.95*5)=5
    assert_eq!(s.quantile(0.2), 2); // rank 1
}

#[test]
fn golden_single_value_histogram() {
    let h = Histogram::new();
    h.record(1_000_000);
    let s = h.snapshot();
    assert_eq!(
        (s.count, s.min, s.max, s.sum),
        (1, 1_000_000, 1_000_000, 1_000_000)
    );
    // Every quantile of a single observation is that observation's
    // bucket, clamped to max.
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(s.quantile(q), 1_000_000, "q={q}");
    }
    assert_eq!(s.buckets.len(), 1);
}

#[test]
fn quantile_upper_bound_never_understates() {
    // The reported quantile must be >= the true order statistic (the
    // "at most this" convention): check against a sorted reference.
    let values: Vec<u64> = (0..500u64).map(|i| (i * i * 7 + 13) % 100_000).collect();
    let h = Histogram::new();
    for &v in &values {
        h.record(v);
    }
    let mut sorted = values.clone();
    sorted.sort_unstable();
    let s = h.snapshot();
    for q in [0.5, 0.9, 0.95, 0.99] {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = s.quantile(q);
        assert!(est >= truth, "q={q}: est {est} < truth {truth}");
        // And within the 1/16 relative error bound.
        assert!(
            est as f64 <= truth as f64 * (1.0 + 1.0 / SUBBUCKETS as f64) + 1.0,
            "q={q}: est {est} too far above truth {truth}"
        );
    }
}
