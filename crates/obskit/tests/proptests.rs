//! Property tests for the obskit determinism contract: histogram
//! merges and registry snapshots must be independent of how
//! observations were partitioned across workers and of merge order.

use obskit::hist::{bucket_index, bucket_lower, bucket_upper, NUM_BUCKETS};
use obskit::{Histogram, MetricsRegistry, Recorder, Unit};
use testkit::prop::vec;
use testkit::{prop_assert, prop_assert_eq, property_tests};

property_tests! {
    /// Every value lands in a bucket whose [lower, upper] range
    /// contains it.
    fn buckets_contain_their_values(value in 0u64..u64::MAX) {
        let i = bucket_index(value);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lower(i) <= value, "lower({i}) > {value}");
        prop_assert!(value <= bucket_upper(i), "upper({i}) < {value}");
    }

    /// Partitioning a stream of observations into any number of
    /// per-worker histograms and merging them reproduces the snapshot
    /// of recording everything into one histogram — the property that
    /// makes parallel metric collection deterministic.
    fn partitioned_merge_equals_single_histogram(
        values in vec(0u64..1 << 48, 0..300),
        parts in 1usize..8,
    ) {
        let whole = Histogram::new();
        let shards: Vec<Histogram> = (0..parts).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            shards[i % parts].record(v);
        }
        let mut merged = shards[0].snapshot();
        for shard in &shards[1..] {
            merged.merge(&shard.snapshot());
        }
        prop_assert_eq!(merged, whole.snapshot());
    }

    /// Merge is commutative: A+B == B+A.
    fn merge_is_commutative(
        xs in vec(0u64..1 << 40, 0..150),
        ys in vec(0u64..1 << 40, 0..150),
    ) {
        let (ha, hb) = (Histogram::new(), Histogram::new());
        for &v in &xs { ha.record(v); }
        for &v in &ys { hb.record(v); }
        let (sa, sb) = (ha.snapshot(), hb.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (A+B)+C == A+(B+C).
    fn merge_is_associative(
        xs in vec(0u64..1 << 40, 0..100),
        ys in vec(0u64..1 << 40, 0..100),
        zs in vec(0u64..1 << 40, 0..100),
    ) {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals { h.record(v); }
            h.snapshot()
        };
        let (sa, sb, sc) = (mk(&xs), mk(&ys), mk(&zs));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Quantiles never understate: the reported value is an upper bound
    /// on the true order statistic, within the 1/16 relative error
    /// bound of the bucket layout.
    fn quantiles_bound_true_order_statistics(
        values in vec(1u64..1 << 32, 1..200),
        qnum in 1u64..100,
    ) {
        let q = qnum as f64 / 100.0;
        let h = Histogram::new();
        for &v in &values { h.record(v); }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.snapshot().quantile(q);
        prop_assert!(est >= truth, "q={q}: {est} < {truth}");
        prop_assert!(
            est as f64 <= truth as f64 * (1.0 + 1.0 / 16.0) + 1.0,
            "q={q}: {est} too far above {truth}"
        );
    }

    /// Registry counters are partition-independent: splitting the same
    /// labelled increments across interleaved recording orders yields
    /// identical snapshots (integer adds commute).
    fn registry_snapshot_is_recording_order_independent(
        deltas in vec(0u64..1000, 1..60),
        rot in 0usize..60,
    ) {
        let stages = ["margins", "correlation", "sampling"];
        let (ra, rb) = (MetricsRegistry::new(), MetricsRegistry::new());
        let n = deltas.len();
        for (k, &d) in deltas.iter().enumerate() {
            ra.add("x_total", &[("stage", stages[k % 3])], Unit::Count, d);
        }
        // Same multiset of increments, rotated order.
        for i in 0..n {
            let j = (i + rot) % n;
            rb.add("x_total", &[("stage", stages[j % 3])], Unit::Count, deltas[j]);
        }
        prop_assert_eq!(ra.snapshot(), rb.snapshot());
    }

    /// The deterministic view of a snapshot is stable under adding
    /// wall-clock noise: recording arbitrary Nanos observations never
    /// changes `deterministic()`.
    fn deterministic_view_ignores_timing_series(
        counts in vec(0u64..100, 1..20),
        timings in vec(0u64..1 << 30, 0..50),
    ) {
        let r = MetricsRegistry::new();
        for (i, &c) in counts.iter().enumerate() {
            let stage = if i % 2 == 0 { "margins" } else { "sampling" };
            r.add("rows_total", &[("stage", stage)], Unit::Count, c);
        }
        let before = r.snapshot().deterministic();
        for &t in &timings {
            r.observe("lat_ns", &[], Unit::Nanos, t);
            r.gauge_set("engine_workers", &[], Unit::Info, t % 16);
        }
        prop_assert_eq!(r.snapshot().deterministic(), before);
    }
}
