//! Metric registry, recorder trait, and the cloneable [`MetricsSink`]
//! handle that instrumented code records through.
//!
//! Everything funnels through the [`Recorder`] trait: the real
//! implementation is [`MetricsRegistry`]; the disabled path is
//! [`NoopRecorder`]. A [`MetricsSink`] caches the recorder's enabled
//! flag so the disabled fast path is a single predictable branch — no
//! virtual call, no allocation, no lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::Histogram;
use crate::snapshot::{MetricEntry, MetricValue, Snapshot};
use crate::span::Span;

/// What a metric's `u64` value means. Units drive formatting and the
/// deterministic-snapshot filter: wall-clock (`Nanos`) and environment
/// (`Info`) series are excluded from [`Snapshot::deterministic`]
/// because their values legitimately differ between runs, while
/// `Count`/`Bytes`/`NanoEps` series must be bit-identical at any worker
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Wall-clock nanoseconds (timings; run-dependent).
    Nanos,
    /// A plain count of events or items (deterministic).
    Count,
    /// Byte sizes (deterministic).
    Bytes,
    /// Privacy budget in integer nano-ε: `round(ε · 1e9)` (deterministic;
    /// integers so parallel accumulation is order-independent).
    NanoEps,
    /// Environment facts such as worker count (run-dependent settings,
    /// excluded from determinism comparison).
    Info,
}

impl Unit {
    /// Whether series of this unit must be bit-identical across runs
    /// with the same seed, at any worker count.
    pub fn is_deterministic(self) -> bool {
        matches!(self, Unit::Count | Unit::Bytes | Unit::NanoEps)
    }

    /// Lower-case unit name used in snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Nanos => "nanos",
            Unit::Count => "count",
            Unit::Bytes => "bytes",
            Unit::NanoEps => "nano_eps",
            Unit::Info => "info",
        }
    }
}

/// Builds the canonical series id `name{k="v",...}` (or just `name`
/// when there are no labels). Ids are the registry's BTreeMap keys, so
/// snapshot order is the lexicographic order of these strings.
pub fn series_id(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut id = String::with_capacity(name.len() + 16 * labels.len());
    id.push_str(name);
    id.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            id.push(',');
        }
        id.push_str(k);
        id.push_str("=\"");
        id.push_str(v);
        id.push('"');
    }
    id.push('}');
    id
}

/// The backend behind a [`MetricsSink`].
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// When false, sinks skip all recording work up front.
    fn enabled(&self) -> bool;
    /// Adds `delta` to the counter series `name{labels}`.
    fn add(&self, name: &str, labels: &[(&str, &str)], unit: Unit, delta: u64);
    /// Sets the gauge series `name{labels}` to `value`.
    fn gauge_set(&self, name: &str, labels: &[(&str, &str)], unit: Unit, value: u64);
    /// Records `value` into the histogram series `name{labels}`.
    fn observe(&self, name: &str, labels: &[(&str, &str)], unit: Unit, value: u64);
}

/// Recorder that drops everything. [`MetricsSink::off`] short-circuits
/// before even reaching it, so its methods are unreachable in practice
/// but harmless if called.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn add(&self, _: &str, _: &[(&str, &str)], _: Unit, _: u64) {}
    fn gauge_set(&self, _: &str, _: &[(&str, &str)], _: Unit, _: u64) {}
    fn observe(&self, _: &str, _: &[(&str, &str)], _: Unit, _: u64) {}
}

#[derive(Debug)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    unit: Unit,
    series: Series,
}

/// A set of named metric series, snapshotted on demand.
///
/// Series are created lazily on first touch (or eagerly via the
/// `ensure_*` methods, which [`crate::names::register_taxonomy`] uses
/// so every snapshot carries the full name set even when a code path
/// didn't run). Lookup takes a mutex, but the hot values themselves are
/// atomics shared out by `Arc`, so snapshots never block recorders for
/// long.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_series<R>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        unit: Unit,
        make: impl FnOnce() -> Series,
        use_series: impl FnOnce(&Series) -> R,
    ) -> R {
        let id = series_id(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let entry = inner.entry(id).or_insert_with(|| Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            unit,
            series: make(),
        });
        use_series(&entry.series)
    }

    /// Creates the counter series `name{labels}` at zero if absent.
    pub fn ensure_counter(&self, name: &str, labels: &[(&str, &str)], unit: Unit) {
        self.with_series(
            name,
            labels,
            unit,
            || Series::Counter(Arc::new(AtomicU64::new(0))),
            |_| (),
        );
    }

    /// Creates the gauge series `name{labels}` at zero if absent.
    pub fn ensure_gauge(&self, name: &str, labels: &[(&str, &str)], unit: Unit) {
        self.with_series(
            name,
            labels,
            unit,
            || Series::Gauge(Arc::new(AtomicU64::new(0))),
            |_| (),
        );
    }

    /// Creates the empty histogram series `name{labels}` if absent.
    pub fn ensure_hist(&self, name: &str, labels: &[(&str, &str)], unit: Unit) {
        self.with_series(
            name,
            labels,
            unit,
            || Series::Hist(Arc::new(Histogram::new())),
            |_| (),
        );
    }

    /// An ordered, immutable copy of every series.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let entries = inner
            .iter()
            .map(|(id, e)| MetricEntry {
                id: id.clone(),
                name: e.name.clone(),
                labels: e.labels.clone(),
                unit: e.unit,
                value: match &e.series {
                    Series::Counter(v) => MetricValue::Counter(v.load(Ordering::Relaxed)),
                    Series::Gauge(v) => MetricValue::Gauge(v.load(Ordering::Relaxed)),
                    Series::Hist(h) => MetricValue::Hist(h.snapshot()),
                },
            })
            .collect();
        Snapshot { entries }
    }
}

impl Recorder for MetricsRegistry {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &str, labels: &[(&str, &str)], unit: Unit, delta: u64) {
        self.with_series(
            name,
            labels,
            unit,
            || Series::Counter(Arc::new(AtomicU64::new(0))),
            |s| {
                if let Series::Counter(v) = s {
                    v.fetch_add(delta, Ordering::Relaxed);
                }
            },
        );
    }

    fn gauge_set(&self, name: &str, labels: &[(&str, &str)], unit: Unit, value: u64) {
        self.with_series(
            name,
            labels,
            unit,
            || Series::Gauge(Arc::new(AtomicU64::new(0))),
            |s| {
                if let Series::Gauge(v) = s {
                    v.store(value, Ordering::Relaxed);
                }
            },
        );
    }

    fn observe(&self, name: &str, labels: &[(&str, &str)], unit: Unit, value: u64) {
        let hist = self.with_series(
            name,
            labels,
            unit,
            || Series::Hist(Arc::new(Histogram::new())),
            |s| match s {
                Series::Hist(h) => Some(h.clone()),
                _ => None,
            },
        );
        if let Some(h) = hist {
            h.record(value);
        }
    }
}

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

/// The process-wide registry, created on first use. Library code should
/// prefer an injected sink; this exists for binaries that want one
/// ambient registry without threading it everywhere.
pub fn global_registry() -> &'static Arc<MetricsRegistry> {
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

/// Cheap cloneable handle instrumented code records through.
///
/// The `enabled` flag is cached at construction, so every recording
/// method on a disabled sink is one branch and an immediate return —
/// this is what makes `--metrics off` (the default) near-free.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    recorder: Arc<dyn Recorder>,
    enabled: bool,
}

impl MetricsSink {
    /// A disabled sink: records nothing, costs one branch per call.
    pub fn off() -> Self {
        Self {
            recorder: Arc::new(NoopRecorder),
            enabled: false,
        }
    }

    /// A sink writing into `registry`.
    pub fn to_registry(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            recorder: registry,
            enabled: true,
        }
    }

    /// A sink writing into the process-wide [`global_registry`].
    pub fn global() -> Self {
        Self::to_registry(global_registry().clone())
    }

    /// A sink over any custom recorder.
    pub fn to_recorder(recorder: Arc<dyn Recorder>) -> Self {
        let enabled = recorder.enabled();
        Self { recorder, enabled }
    }

    /// Whether recording does anything. Callers may use this to skip
    /// building expensive label values.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `delta` to the unlabelled counter `name`.
    pub fn add(&self, name: &str, unit: Unit, delta: u64) {
        if self.enabled {
            self.recorder.add(name, &[], unit, delta);
        }
    }

    /// Adds `delta` to the counter `name{labels}`.
    pub fn add_labeled(&self, name: &str, labels: &[(&str, &str)], unit: Unit, delta: u64) {
        if self.enabled {
            self.recorder.add(name, labels, unit, delta);
        }
    }

    /// Sets the unlabelled gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, unit: Unit, value: u64) {
        if self.enabled {
            self.recorder.gauge_set(name, &[], unit, value);
        }
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn gauge_set_labeled(&self, name: &str, labels: &[(&str, &str)], unit: Unit, value: u64) {
        if self.enabled {
            self.recorder.gauge_set(name, labels, unit, value);
        }
    }

    /// Records `value` into the unlabelled histogram `name`.
    pub fn observe(&self, name: &str, unit: Unit, value: u64) {
        if self.enabled {
            self.recorder.observe(name, &[], unit, value);
        }
    }

    /// Records `value` into the histogram `name{labels}`.
    pub fn observe_labeled(&self, name: &str, labels: &[(&str, &str)], unit: Unit, value: u64) {
        if self.enabled {
            self.recorder.observe(name, labels, unit, value);
        }
    }

    /// Opens a nested [`Span`] named `name`; see [`Span::enter`].
    pub fn span(&self, name: &str) -> Span {
        Span::enter(self, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_ids_render_labels() {
        assert_eq!(series_id("x_total", &[]), "x_total");
        assert_eq!(
            series_id("x_total", &[("stage", "margins"), ("kind", "laplace")]),
            r#"x_total{stage="margins",kind="laplace"}"#
        );
    }

    #[test]
    fn counters_gauges_hists_roundtrip() {
        let r = MetricsRegistry::new();
        r.add("a_total", &[("stage", "s1")], Unit::Count, 2);
        r.add("a_total", &[("stage", "s1")], Unit::Count, 3);
        r.gauge_set("g", &[], Unit::Info, 7);
        r.observe("h_ns", &[], Unit::Nanos, 100);
        r.observe("h_ns", &[], Unit::Nanos, 200);
        let snap = r.snapshot();
        assert_eq!(
            snap.get(r#"a_total{stage="s1"}"#).unwrap().value.as_u64(),
            Some(5)
        );
        assert_eq!(snap.get("g").unwrap().value.as_u64(), Some(7));
        let h = snap.get("h_ns").unwrap().value.as_hist().unwrap();
        assert_eq!((h.count, h.sum), (2, 300));
    }

    #[test]
    fn ensure_preregisters_zero_series() {
        let r = MetricsRegistry::new();
        r.ensure_counter("c_total", &[("stage", "x")], Unit::Count);
        r.ensure_gauge("g", &[], Unit::Info);
        r.ensure_hist("h_ns", &[], Unit::Nanos);
        let snap = r.snapshot();
        assert_eq!(snap.entries.len(), 3);
        assert_eq!(
            snap.get(r#"c_total{stage="x"}"#).unwrap().value.as_u64(),
            Some(0)
        );
    }

    #[test]
    fn snapshot_order_is_lexicographic_and_stable() {
        let r = MetricsRegistry::new();
        r.add("z_total", &[], Unit::Count, 1);
        r.add("a_total", &[("k", "2")], Unit::Count, 1);
        r.add("a_total", &[("k", "1")], Unit::Count, 1);
        let ids: Vec<String> = r.snapshot().entries.into_iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            vec![
                r#"a_total{k="1"}"#.to_string(),
                r#"a_total{k="2"}"#.to_string(),
                "z_total".to_string()
            ]
        );
    }

    #[test]
    fn off_sink_records_nothing() {
        let sink = MetricsSink::off();
        assert!(!sink.enabled());
        sink.add("x", Unit::Count, 1);
        sink.observe("y", Unit::Nanos, 1);
        sink.gauge_set("z", Unit::Info, 1);
    }
}
