//! Scoped span timers with parent/child nesting, plus a plain
//! [`Stopwatch`] for code that needs raw elapsed time.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! `finish()` (or drop) and records the elapsed nanoseconds into the
//! sink's `span_ns` histogram, labelled with the `/`-joined path of all
//! enclosing spans on the same thread: starting `"pipeline"` and then
//! `"margins"` inside it records `span_ns{span="pipeline/margins"}`.
//! Nesting is tracked per thread with a thread-local name stack, so
//! spans cost nothing to coordinate and never lock.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::MetricsSink;

/// Histogram that receives every finished span's elapsed nanoseconds.
pub const SPAN_NS: &str = "span_ns";

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A monotonic elapsed-time source. This is the one sanctioned wrapper
/// around `Instant` in the workspace; benches and instrumentation take
/// timings through it so CI can grep for stray ad-hoc timing.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time elapsed since `start()`.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        let d = self.start.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }
}

/// A scoped timer that records into `span_ns{span=<path>}` when
/// finished or dropped.
#[derive(Debug)]
pub struct Span {
    sink: MetricsSink,
    path: String,
    watch: Stopwatch,
    finished: bool,
}

impl Span {
    /// Opens a span named `name`, nested under whatever spans are
    /// currently open on this thread. Prefer [`MetricsSink::span`].
    pub fn enter(sink: &MetricsSink, name: &str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Self {
            sink: sink.clone(),
            path,
            watch: Stopwatch::start(),
            finished: false,
        }
    }

    /// The `/`-joined path of this span, e.g. `"pipeline/margins"`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Closes the span, records its duration, and returns the elapsed
    /// time **as recorded** (built back from the nanosecond value sent
    /// to the sink, so a report derived from the return value agrees
    /// with the snapshot to the nanosecond).
    pub fn finish(mut self) -> std::time::Duration {
        let ns = self.close();
        std::time::Duration::from_nanos(ns)
    }

    fn close(&mut self) -> u64 {
        self.finished = true;
        let ns = self.watch.elapsed_ns();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop our own frame; tolerate a foreign top if a child span
            // leaked across an unwind.
            if let Some(pos) = stack.iter().rposition(|p| p == &self.path) {
                stack.truncate(pos);
            }
        });
        self.sink
            .observe_labeled(SPAN_NS, &[("span", &self.path)], crate::Unit::Nanos, ns);
        ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::sync::Arc;

    #[test]
    fn spans_nest_into_slash_paths() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::to_registry(registry.clone());
        {
            let outer = Span::enter(&sink, "pipeline");
            assert_eq!(outer.path(), "pipeline");
            {
                let inner = Span::enter(&sink, "margins");
                assert_eq!(inner.path(), "pipeline/margins");
                inner.finish();
            }
            let sibling = Span::enter(&sink, "sampling");
            assert_eq!(sibling.path(), "pipeline/sampling");
            drop(sibling);
            outer.finish();
        }
        let fresh = Span::enter(&sink, "serve");
        assert_eq!(fresh.path(), "serve");
        drop(fresh);

        let snap = registry.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.id.as_str()).collect();
        assert!(names.contains(&r#"span_ns{span="pipeline"}"#), "{names:?}");
        assert!(names.contains(&r#"span_ns{span="pipeline/margins"}"#));
        assert!(names.contains(&r#"span_ns{span="pipeline/sampling"}"#));
        assert!(names.contains(&r#"span_ns{span="serve"}"#));
    }

    #[test]
    fn finish_duration_matches_recorded_ns() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::to_registry(registry.clone());
        let span = Span::enter(&sink, "unit");
        let d = span.finish();
        let snap = registry.snapshot();
        let entry = snap
            .entries
            .iter()
            .find(|e| e.id.starts_with("span_ns"))
            .expect("span recorded");
        let hist = entry.value.as_hist().expect("histogram");
        assert_eq!(hist.sum, d.as_nanos() as u64);
    }

    #[test]
    fn disabled_sink_spans_are_cheap_and_silent() {
        let sink = MetricsSink::off();
        let span = Span::enter(&sink, "noop");
        span.finish();
    }
}
