//! `obskit` — dependency-free observability for the DPCopula workspace.
//!
//! One small layer provides everything the stack reports about itself:
//!
//! * **Counters and gauges** — relaxed atomics behind a
//!   [`MetricsRegistry`].
//! * **Histograms** — log-linear (HDR-style) `u64` distributions with
//!   p50/p95/p99 extraction and order-independent merges
//!   ([`Histogram`], [`HistSnapshot`]).
//! * **Spans** — scoped timers with parent/child nesting recorded as
//!   `span_ns{span="parent/child"}` ([`Span`], opened via
//!   [`MetricsSink::span`]).
//! * **Snapshots** — point-in-time copies rendering to line-oriented
//!   JSON or Prometheus text exposition format ([`Snapshot`]), with a
//!   [`Snapshot::deterministic`] view containing only series that must
//!   be bit-identical across worker counts.
//!
//! Instrumented code takes a [`MetricsSink`] — a cheap cloneable handle
//! over a [`Recorder`]. The disabled sink ([`MetricsSink::off`]) costs
//! one branch per call; `bench_obskit` pins that overhead. Binaries
//! that want one ambient registry use [`global_registry`] /
//! [`MetricsSink::global`]; library code should accept an injected
//! sink.
//!
//! The full metric taxonomy (names, labels, units) lives in [`names`]
//! and is documented in DESIGN.md §10.

pub mod hist;
pub mod names;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use hist::{HistSnapshot, Histogram};
pub use registry::{
    global_registry, series_id, MetricsRegistry, MetricsSink, NoopRecorder, Recorder, Unit,
};
pub use snapshot::{MetricEntry, MetricValue, Snapshot};
pub use span::{Span, Stopwatch, SPAN_NS};
