//! Immutable snapshots of a [`crate::MetricsRegistry`] and their two
//! text renderings: line-oriented JSON and Prometheus text exposition
//! format.
//!
//! Snapshots hold entries sorted by series id, so two snapshots with
//! equal contents render to byte-identical text — the property the
//! determinism tests and the CI metric-name manifest rely on.

use crate::hist::HistSnapshot;
use crate::registry::Unit;

/// The value of one metric series at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonically increasing event count.
    Counter(u64),
    /// Last-set value.
    Gauge(u64),
    /// Full distribution of observed values.
    Hist(HistSnapshot),
}

impl MetricValue {
    /// The scalar value of a counter or gauge.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            MetricValue::Hist(_) => None,
        }
    }

    /// The distribution of a histogram series.
    pub fn as_hist(&self) -> Option<&HistSnapshot> {
        match self {
            MetricValue::Hist(h) => Some(h),
            _ => None,
        }
    }

    fn type_str(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Hist(_) => "histogram",
        }
    }
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// Canonical series id, `name{k="v",...}`.
    pub id: String,
    /// Metric name without labels.
    pub name: String,
    /// Label key/value pairs in declaration order.
    pub labels: Vec<(String, String)>,
    /// What the values mean (drives the deterministic filter).
    pub unit: Unit,
    /// The recorded value.
    pub value: MetricValue,
}

/// An ordered, immutable copy of every series in a registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All series, sorted by id.
    pub entries: Vec<MetricEntry>,
}

impl Snapshot {
    /// Looks up a series by its canonical id.
    pub fn get(&self, id: &str) -> Option<&MetricEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// The sorted series ids — what the CI manifest diff compares.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.id.clone()).collect()
    }

    /// The subset of series whose [`Unit::is_deterministic`] — i.e.
    /// everything that must be bit-identical across runs with the same
    /// seed at any worker count. Timings (`Nanos`) and environment
    /// gauges (`Info`) are excluded.
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter(|e| e.unit.is_deterministic())
                .cloned()
                .collect(),
        }
    }

    /// Renders the snapshot as JSON, one metric object per line inside
    /// a `"metrics"` array. Scalars carry `"value"`; histograms carry
    /// count/sum/min/max and p50/p95/p99.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\"id\":\"");
            push_json_escaped(&mut out, &e.id);
            out.push_str("\",\"type\":\"");
            out.push_str(e.value.type_str());
            out.push_str("\",\"unit\":\"");
            out.push_str(e.unit.as_str());
            out.push('"');
            match &e.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&format!(",\"value\":{v}"));
                }
                MetricValue::Hist(h) => {
                    out.push_str(&format!(
                        ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.p50(),
                        h.p95(),
                        h.p99()
                    ));
                }
            }
            out.push('}');
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the snapshot in Prometheus text exposition format.
    /// Histograms are exported summary-style: `quantile` series plus
    /// `_sum`/`_count`, which needs no bucket-boundary agreement with
    /// the scraper.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for e in &self.entries {
            if last_name != Some(e.name.as_str()) {
                let prom_type = match e.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Hist(_) => "summary",
                };
                out.push_str(&format!("# TYPE {} {prom_type}\n", e.name));
                last_name = Some(e.name.as_str());
            }
            match &e.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&e.name);
                    push_prom_labels(&mut out, &e.labels, None);
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Hist(h) => {
                    for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                        out.push_str(&e.name);
                        push_prom_labels(&mut out, &e.labels, Some(q));
                        out.push_str(&format!(" {v}\n"));
                    }
                    out.push_str(&format!("{}_sum", e.name));
                    push_prom_labels(&mut out, &e.labels, None);
                    out.push_str(&format!(" {}\n", h.sum));
                    out.push_str(&format!("{}_count", e.name));
                    push_prom_labels(&mut out, &e.labels, None);
                    out.push_str(&format!(" {}\n", h.count));
                }
            }
        }
        out
    }
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_prom_labels(out: &mut String, labels: &[(String, String)], quantile: Option<f64>) {
    if labels.is_empty() && quantile.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{v}\""));
    }
    if let Some(q) = quantile {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("quantile=\"{q}\""));
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut h = HistSnapshot::default();
        let hist = crate::hist::Histogram::new();
        for v in [10u64, 20, 30] {
            hist.record(v);
        }
        h.merge(&hist.snapshot());
        Snapshot {
            entries: vec![
                MetricEntry {
                    id: r#"budget_spends_total{stage="margins"}"#.into(),
                    name: "budget_spends_total".into(),
                    labels: vec![("stage".into(), "margins".into())],
                    unit: Unit::Count,
                    value: MetricValue::Counter(4),
                },
                MetricEntry {
                    id: "engine_workers".into(),
                    name: "engine_workers".into(),
                    labels: vec![],
                    unit: Unit::Info,
                    value: MetricValue::Gauge(7),
                },
                MetricEntry {
                    id: r#"span_ns{span="pipeline"}"#.into(),
                    name: "span_ns".into(),
                    labels: vec![("span".into(), "pipeline".into())],
                    unit: Unit::Nanos,
                    value: MetricValue::Hist(h),
                },
            ],
        }
    }

    #[test]
    fn json_rendering_is_line_oriented_and_escaped() {
        let s = sample().to_json();
        assert!(s.contains(r#"{"id":"budget_spends_total{stage=\"margins\"}","type":"counter","unit":"count","value":4}"#));
        assert!(s.contains(r#"{"id":"engine_workers","type":"gauge","unit":"info","value":7}"#));
        assert!(s.contains(r#""type":"histogram","unit":"nanos","count":3,"sum":60"#));
        assert!(s.ends_with("  ]\n}\n"));
    }

    #[test]
    fn prometheus_rendering_has_types_and_quantiles() {
        let s = sample().to_prometheus();
        assert!(s.contains("# TYPE budget_spends_total counter\n"));
        assert!(s.contains("budget_spends_total{stage=\"margins\"} 4\n"));
        assert!(s.contains("# TYPE engine_workers gauge\n"));
        assert!(s.contains("# TYPE span_ns summary\n"));
        assert!(s.contains("span_ns{span=\"pipeline\",quantile=\"0.5\"}"));
        assert!(s.contains("span_ns_sum{span=\"pipeline\"} 60\n"));
        assert!(s.contains("span_ns_count{span=\"pipeline\"} 3\n"));
    }

    #[test]
    fn deterministic_filter_drops_nanos_and_info() {
        let det = sample().deterministic();
        assert_eq!(det.entries.len(), 1);
        assert_eq!(det.entries[0].name, "budget_spends_total");
    }
}
