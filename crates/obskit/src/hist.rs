//! Log-linear (HDR-style) histograms over `u64` values.
//!
//! Values below [`SUBBUCKETS`] land in exact width-1 buckets; above that,
//! each power-of-two octave is split into [`SUBBUCKETS`] equal sub-buckets,
//! bounding the relative quantisation error of any recorded value by
//! `1 / SUBBUCKETS` (6.25%). The bucket index of a value is a pure
//! function of the value, and a histogram is just a vector of bucket
//! counts — so merging histograms is bucket-wise integer addition:
//! associative, commutative, and therefore **deterministic** no matter
//! how a parallel run partitions its observations across workers.
//!
//! Recording is lock-free (one relaxed atomic increment per bucket plus
//! count/sum/min/max upkeep), so worker threads share one histogram
//! without coordination.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave (and the width of the exact
/// linear region at the bottom of the value range).
pub const SUBBUCKETS: usize = 16;
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();
/// Total bucket count: the linear region plus `64 - SUB_BITS` octaves of
/// `SUBBUCKETS` each (the top octave is partially unreachable but cheap).
pub const NUM_BUCKETS: usize = SUBBUCKETS + (64 - SUB_BITS as usize) * SUBBUCKETS;

/// Bucket index of `value` — a pure function of the value.
pub fn bucket_index(value: u64) -> usize {
    if value < SUBBUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((value >> (msb - SUB_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
    SUBBUCKETS + octave * SUBBUCKETS + sub
}

/// Smallest value mapping to bucket `index` (saturating at `u64::MAX`
/// past the top of the representable range).
pub fn bucket_lower(index: usize) -> u64 {
    if index < SUBBUCKETS {
        return index as u64;
    }
    let octave = ((index - SUBBUCKETS) / SUBBUCKETS) as u32;
    let sub = ((index - SUBBUCKETS) % SUBBUCKETS) as u64;
    (SUBBUCKETS as u64 + sub)
        .checked_shl(octave)
        .unwrap_or(u64::MAX)
}

/// Largest value mapping to bucket `index` (the percentile convention:
/// "p95 is at most this").
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= NUM_BUCKETS {
        return u64::MAX;
    }
    bucket_lower(index + 1).saturating_sub(1)
}

/// A concurrent log-linear histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; safe to call from any number
    /// of threads.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable snapshot with percentiles extracted.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i, c));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Immutable bucket counts of one histogram, plus summary statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping is the caller's concern;
    /// nanosecond timings would need ~585 years of recorded time).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistSnapshot {
    /// The value at quantile `q in [0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th smallest observation ("at most
    /// this"), exact for values inside the width-1 linear region. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges `other` into `self` — bucket-wise addition, so the result
    /// is independent of merge order and of how observations were
    /// partitioned (the determinism contract of parallel snapshots).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: Vec<(usize, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..SUBBUCKETS as u64 {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_upper(i), v);
        }
    }

    #[test]
    fn buckets_partition_the_value_space() {
        // Every probe value's bucket must contain it.
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} for {v}");
            assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
            assert!(v <= bucket_upper(i), "upper({i}) < {v}");
        }
        // Bucket boundaries are contiguous and increasing.
        for i in 0..1_000.min(NUM_BUCKETS - 1) {
            assert!(bucket_lower(i + 1) > bucket_lower(i), "at {i}");
            assert_eq!(bucket_upper(i), bucket_lower(i + 1) - 1, "at {i}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Above the linear region, bucket width / lower bound <= 1/16.
        for i in SUBBUCKETS..NUM_BUCKETS - SUBBUCKETS {
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            if hi == u64::MAX {
                break;
            }
            let width = hi - lo + 1;
            assert!(
                (width as f64) / (lo as f64) <= 1.0 / SUBBUCKETS as f64 + 1e-12,
                "bucket {i}: width {width} lower {lo}"
            );
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 5050);
        // p50 falls in the bucket holding value 50: [48, 51].
        let p50 = s.p50();
        assert!((48..=51).contains(&p50), "p50 {p50}");
        assert!(s.p99() >= 96);
        assert!(s.quantile(1.0) == 100);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistSnapshot::default());
        assert_eq!(s.p50(), 0);
    }

    #[test]
    fn merge_equals_union() {
        let all = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..1_000u64 {
            let v = v * v % 7919;
            all.record(v);
            if v % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
