//! The workspace metric taxonomy: every metric name, label key, and
//! label value the instrumented crates emit, plus
//! [`register_taxonomy`] to pre-create the full series set at zero so a
//! snapshot always carries every name even when a code path didn't run
//! (what the CI metric-name manifest diffs against).
//!
//! Naming rules (documented in DESIGN.md §10): counters end in
//! `_total`, nanosecond series end in `_ns`, byte counters in
//! `_bytes_total`, nano-ε counters in `_neps`; label keys are `stage`,
//! `mech`, `section`, `span`.

use crate::registry::{MetricsRegistry, Unit};
use crate::span::SPAN_NS;

/// The five pipeline stages, in execution order — the `stage` label
/// values used by engine, parkit, and dpmech series.
pub const STAGES: [&str; 5] = [
    "budget_plan",
    "margins",
    "correlation",
    "pd_repair",
    "sampling",
];

/// `stage` label value for model-serving work outside the fit pipeline.
pub const STAGE_SERVE: &str = "serve";

/// Completed pipeline runs (fit or full synthesis).
pub const PIPELINE_RUNS_TOTAL: &str = "pipeline_runs_total";
/// Synthetic rows produced by pipeline sampling.
pub const PIPELINE_ROWS_OUT_TOTAL: &str = "pipeline_rows_out_total";
/// Worker threads the engine was configured with (environment fact).
pub const ENGINE_WORKERS: &str = "engine_workers";
/// Shards the fit partitioned its input rows into (configuration fact;
/// `1` is the unsharded fit).
pub const ENGINE_SHARDS: &str = "engine_shards";
/// Privacy budget each fit shard's sub-ledger spent, in integer nano-ε,
/// by `shard` index. Shards hold disjoint rows, so the combined fit cost
/// is the per-label **max** of these, not their sum (parallel
/// composition).
pub const SHARD_EPS_SPENT_NEPS: &str = "shard_eps_spent_neps";

/// Logical tasks executed by a parkit fan-out, by `stage`.
pub const PARKIT_TASKS_TOTAL: &str = "parkit_tasks_total";
/// Per-task latency histogram, by `stage`.
pub const PARKIT_TASK_NS: &str = "parkit_task_ns";
/// Total nanoseconds workers spent executing tasks, by `stage`.
pub const PARKIT_WORKER_BUSY_NS: &str = "parkit_worker_busy_ns";
/// Total nanoseconds workers spent outside tasks (queue wait, spawn
/// and join overhead), by `stage`.
pub const PARKIT_WORKER_IDLE_NS: &str = "parkit_worker_idle_ns";

/// Budget ledger debits, by `stage`.
pub const BUDGET_SPENDS_TOTAL: &str = "budget_spends_total";
/// Privacy budget debited, in integer nano-ε, by `stage`.
pub const BUDGET_EPS_SPENT_NEPS: &str = "budget_eps_spent_neps";
/// Primitive noise draws, by `stage` and `mech`.
pub const NOISE_DRAWS_TOTAL: &str = "noise_draws_total";
/// The `mech` label values of [`NOISE_DRAWS_TOTAL`].
pub const MECHS: [&str; 3] = ["laplace", "geometric", "exponential"];

/// Successful model artifact loads.
pub const MODELSTORE_LOADS_TOTAL: &str = "modelstore_loads_total";
/// Bytes of model artifacts decoded.
pub const MODELSTORE_LOAD_BYTES_TOTAL: &str = "modelstore_load_bytes_total";
/// Artifacts rejected at load (checksum, magic, or structural damage).
pub const MODELSTORE_CORRUPTION_REJECTS_TOTAL: &str = "modelstore_corruption_rejects_total";
/// Per-section decode latency, by `section`.
pub const MODELSTORE_SECTION_PARSE_NS: &str = "modelstore_section_parse_ns";
/// The `section` label values of [`MODELSTORE_SECTION_PARSE_NS`] —
/// the `.dpcm` sections in wire order.
pub const SECTIONS: [&str; 6] = ["SCHM", "MRGN", "CORR", "COPL", "BDGT", "PROV"];

/// Rows served from a fitted model via `sample_range`.
pub const SERVE_ROWS_TOTAL: &str = "serve_rows_total";
/// Row windows served from a fitted model.
pub const SERVE_WINDOWS_TOTAL: &str = "serve_windows_total";

/// HTTP requests handled by the serving daemon, by `endpoint` and
/// `status` (the response code as a string).
pub const SERVE_REQUESTS_TOTAL: &str = "serve_requests_total";
/// End-to-end request latency histogram of the serving daemon, by
/// `endpoint` (parse → handle → response bytes written).
pub const SERVE_REQUEST_NS: &str = "serve_request_ns";
/// Decoded models currently resident in the registry's LRU cache.
pub const REGISTRY_MODELS_LOADED: &str = "registry_models_loaded";
/// Models evicted from the registry cache to respect its capacity.
pub const REGISTRY_CACHE_EVICTIONS_TOTAL: &str = "registry_cache_evictions_total";
/// Fit requests refused by per-tenant ε admission control, by `tenant`.
/// Sampling requests never appear here: serving rows from a fitted
/// model is ε-free post-processing and is never admission-controlled.
pub const BUDGET_REJECTIONS_TOTAL: &str = "budget_rejections_total";
/// The `endpoint` label values of [`SERVE_REQUESTS_TOTAL`] /
/// [`SERVE_REQUEST_NS`] — one per route of the serving daemon, plus
/// `other` for unroutable paths.
pub const SERVE_ENDPOINTS: [&str; 7] = [
    "healthz", "metrics", "models", "sample", "fit", "delete", "other",
];
/// The `status` label values of [`SERVE_REQUESTS_TOTAL`]: every
/// response code the daemon emits.
pub const SERVE_STATUSES: [&str; 10] = [
    "200", "400", "403", "404", "405", "408", "413", "429", "500", "503",
];
/// Work shed by overload admission control, by `route`: `connection`
/// (the accept loop refused to queue a connection past the
/// `--max-connections` pool bound) or a heavy route name (`sample`,
/// `fit` — a request refused at the per-route `--max-inflight` cap).
/// Every shed is answered `503` with `Retry-After` instead of queuing.
pub const SERVER_SHED_TOTAL: &str = "server_shed_total";
/// The `route` label values of [`SERVER_SHED_TOTAL`].
pub const SHED_ROUTES: [&str; 3] = ["connection", "sample", "fit"];
/// Requests cut off by a read deadline, by `phase`: `head` (request
/// line + headers stalled past the head deadline — the slowloris
/// defense) or `body` (a declared body stopped arriving). Both are
/// answered `408` and the connection is closed.
pub const SERVE_TIMEOUTS_TOTAL: &str = "serve_timeouts_total";
/// The `phase` label values of [`SERVE_TIMEOUTS_TOTAL`].
pub const TIMEOUT_PHASES: [&str; 2] = ["head", "body"];
/// Models removed via `DELETE /v1/models/{id}` (cache entry evicted,
/// artifact unlinked, id tombstoned until the removal is confirmed).
pub const REGISTRY_DELETES_TOTAL: &str = "registry_deletes_total";

/// Synthetic rows emitted, by sampling `profile` (pipeline and serving).
pub const SAMPLING_PROFILE_ROWS_TOTAL: &str = "sampling_profile_rows_total";
/// The `profile` label values of [`SAMPLING_PROFILE_ROWS_TOTAL`].
pub const SAMPLING_PROFILES: [&str; 2] = ["reference", "fast"];

/// Span paths the instrumented pipeline and serving layer produce.
/// `pipeline/shard_fit` and `pipeline/shard_merge` cut across the
/// margin and correlation stages: summary building (per-shard work plus
/// the cross-shard concordance fan-out) vs. the serial fold of the
/// summaries into one model, the sharded fit's two cost centres.
pub const SPAN_PATHS: [&str; 12] = [
    "pipeline",
    "pipeline/budget_plan",
    "pipeline/margins",
    "pipeline/correlation",
    "pipeline/pd_repair",
    "pipeline/sampling",
    "pipeline/shard_fit",
    "pipeline/shard_merge",
    "serve/load",
    "serve/decode",
    "serve/validate",
    "serve/window",
];

/// Pre-creates every series in the taxonomy at zero, so snapshots carry
/// the complete name set regardless of which code paths ran.
pub fn register_taxonomy(registry: &MetricsRegistry) {
    registry.ensure_counter(PIPELINE_RUNS_TOTAL, &[], Unit::Count);
    registry.ensure_counter(PIPELINE_ROWS_OUT_TOTAL, &[], Unit::Count);
    registry.ensure_gauge(ENGINE_WORKERS, &[], Unit::Info);
    registry.ensure_gauge(ENGINE_SHARDS, &[], Unit::Info);
    // Per-shard series are keyed by dynamic shard indices; pre-create
    // shard 0, which every fit (sharded or not) has.
    registry.ensure_counter(SHARD_EPS_SPENT_NEPS, &[("shard", "0")], Unit::NanoEps);

    for stage in STAGES.iter().chain([STAGE_SERVE].iter()) {
        let labels = [("stage", *stage)];
        registry.ensure_counter(PARKIT_TASKS_TOTAL, &labels, Unit::Count);
        registry.ensure_hist(PARKIT_TASK_NS, &labels, Unit::Nanos);
        registry.ensure_counter(PARKIT_WORKER_BUSY_NS, &labels, Unit::Nanos);
        registry.ensure_counter(PARKIT_WORKER_IDLE_NS, &labels, Unit::Nanos);
        registry.ensure_counter(BUDGET_SPENDS_TOTAL, &labels, Unit::Count);
        registry.ensure_counter(BUDGET_EPS_SPENT_NEPS, &labels, Unit::NanoEps);
        for mech in MECHS {
            registry.ensure_counter(
                NOISE_DRAWS_TOTAL,
                &[("stage", stage), ("mech", mech)],
                Unit::Count,
            );
        }
    }

    registry.ensure_counter(MODELSTORE_LOADS_TOTAL, &[], Unit::Count);
    registry.ensure_counter(MODELSTORE_LOAD_BYTES_TOTAL, &[], Unit::Bytes);
    registry.ensure_counter(MODELSTORE_CORRUPTION_REJECTS_TOTAL, &[], Unit::Count);
    for section in SECTIONS {
        registry.ensure_hist(
            MODELSTORE_SECTION_PARSE_NS,
            &[("section", section)],
            Unit::Nanos,
        );
    }

    registry.ensure_counter(SERVE_ROWS_TOTAL, &[], Unit::Count);
    registry.ensure_counter(SERVE_WINDOWS_TOTAL, &[], Unit::Count);

    for endpoint in SERVE_ENDPOINTS {
        registry.ensure_hist(SERVE_REQUEST_NS, &[("endpoint", endpoint)], Unit::Nanos);
        for status in SERVE_STATUSES {
            registry.ensure_counter(
                SERVE_REQUESTS_TOTAL,
                &[("endpoint", endpoint), ("status", status)],
                Unit::Count,
            );
        }
    }
    for route in SHED_ROUTES {
        registry.ensure_counter(SERVER_SHED_TOTAL, &[("route", route)], Unit::Count);
    }
    for phase in TIMEOUT_PHASES {
        registry.ensure_counter(SERVE_TIMEOUTS_TOTAL, &[("phase", phase)], Unit::Count);
    }
    registry.ensure_gauge(REGISTRY_MODELS_LOADED, &[], Unit::Count);
    registry.ensure_counter(REGISTRY_CACHE_EVICTIONS_TOTAL, &[], Unit::Count);
    registry.ensure_counter(REGISTRY_DELETES_TOTAL, &[], Unit::Count);
    // Tenant names are deployment config; pre-create the label the
    // daemon uses when no tenant file is configured.
    registry.ensure_counter(
        BUDGET_REJECTIONS_TOTAL,
        &[("tenant", "default")],
        Unit::Count,
    );
    for profile in SAMPLING_PROFILES {
        registry.ensure_counter(
            SAMPLING_PROFILE_ROWS_TOTAL,
            &[("profile", profile)],
            Unit::Count,
        );
    }

    for span in SPAN_PATHS {
        registry.ensure_hist(SPAN_NS, &[("span", span)], Unit::Nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_nonempty_and_idempotent() {
        let r = MetricsRegistry::new();
        register_taxonomy(&r);
        let first = r.snapshot();
        assert!(first.entries.len() > 40, "{}", first.entries.len());
        register_taxonomy(&r);
        assert_eq!(r.snapshot(), first);
    }

    #[test]
    fn taxonomy_carries_the_overload_and_lifecycle_series() {
        let r = MetricsRegistry::new();
        register_taxonomy(&r);
        let snap = r.snapshot();
        for route in SHED_ROUTES {
            let id = format!("{SERVER_SHED_TOTAL}{{route=\"{route}\"}}");
            assert!(snap.get(&id).is_some(), "missing {id}");
        }
        for phase in TIMEOUT_PHASES {
            let id = format!("{SERVE_TIMEOUTS_TOTAL}{{phase=\"{phase}\"}}");
            assert!(snap.get(&id).is_some(), "missing {id}");
        }
        assert!(snap.get(REGISTRY_DELETES_TOTAL).is_some());
        // The shed/timeout answer codes are part of the status set.
        for status in ["408", "503"] {
            assert!(SERVE_STATUSES.contains(&status), "missing status {status}");
            let id = format!("serve_requests_total{{endpoint=\"other\",status=\"{status}\"}}");
            assert!(snap.get(&id).is_some(), "missing {id}");
        }
        assert!(SERVE_ENDPOINTS.contains(&"delete"));
    }

    #[test]
    fn taxonomy_series_start_at_zero() {
        let r = MetricsRegistry::new();
        register_taxonomy(&r);
        for e in r.snapshot().entries {
            match e.value {
                crate::MetricValue::Counter(v) | crate::MetricValue::Gauge(v) => {
                    assert_eq!(v, 0, "{}", e.id)
                }
                crate::MetricValue::Hist(h) => assert_eq!(h.count, 0, "{}", e.id),
            }
        }
    }
}
