//! # queryeval — range-count query workloads and utility metrics
//!
//! The paper's utility metric (§5.1): generate 1000 random range-count
//! queries
//!
//! ```sql
//! SELECT COUNT(*) FROM D WHERE A_1 IN I_1 AND ... AND A_m IN I_m
//! ```
//!
//! answer them on the DP release, and report the average *relative error*
//! `|A_noisy - A_act| / max(A_act, s)` with a sanity bound `s`, plus the
//! *absolute error* for sparse regimes.
//!
//! * [`query`] — query types and random-workload generation (including the
//!   fixed-range-volume workloads of Fig 8);
//! * [`metrics`] — error metrics and their aggregation over runs.

#![warn(missing_docs)]

pub mod metrics;
pub mod persist;
pub mod query;

pub use metrics::{
    absolute_error, evaluate, evaluate_columns, relative_error, ErrorSummary, EvalReport, Synthetic,
};
pub use persist::{load_workload, save_workload};
pub use query::{RangeQuery, Workload};
