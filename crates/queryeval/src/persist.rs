//! Workload persistence: save/load query batches as CSV so a released
//! evaluation can be re-answered bit-for-bit outside this process (every
//! figure's workload in `results/` can be archived alongside its errors).
//!
//! Format: header `dims=<m>`, then one row per query with `2m` integers
//! `lo_1,hi_1,...,lo_m,hi_m`.

use crate::query::{RangeQuery, Workload};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from reading a workload file.
#[derive(Debug)]
pub enum WorkloadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Io(e) => write!(f, "io error: {e}"),
            WorkloadError::Malformed { line, reason } => {
                write!(f, "malformed workload at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<io::Error> for WorkloadError {
    fn from(e: io::Error) -> Self {
        WorkloadError::Io(e)
    }
}

/// Writes the workload to a writer.
pub fn write_workload<W: Write>(workload: &Workload, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let dims = workload.queries()[0].dims();
    writeln!(w, "dims={dims}")?;
    for q in workload.queries() {
        let cells: Vec<String> = q
            .ranges()
            .iter()
            .flat_map(|&(lo, hi)| [lo.to_string(), hi.to_string()])
            .collect();
        writeln!(w, "{}", cells.join(","))?;
    }
    w.flush()
}

/// Saves the workload to a file path.
pub fn save_workload(workload: &Workload, path: impl AsRef<Path>) -> io::Result<()> {
    write_workload(workload, std::fs::File::create(path)?)
}

/// Reads a workload from a reader.
pub fn read_workload<R: Read>(r: R) -> Result<Workload, WorkloadError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or(WorkloadError::Malformed {
        line: 1,
        reason: "empty file".into(),
    })??;
    let dims: usize = header
        .strip_prefix("dims=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| WorkloadError::Malformed {
            line: 1,
            reason: format!("expected `dims=<m>`, got `{header}`"),
        })?;
    if dims == 0 {
        return Err(WorkloadError::Malformed {
            line: 1,
            reason: "dims must be positive".into(),
        });
    }
    let mut queries = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let values: Result<Vec<u32>, _> = line.split(',').map(str::parse).collect();
        let values = values.map_err(|_| WorkloadError::Malformed {
            line: i + 2,
            reason: "non-integer field".into(),
        })?;
        if values.len() != 2 * dims {
            return Err(WorkloadError::Malformed {
                line: i + 2,
                reason: format!("expected {} fields, got {}", 2 * dims, values.len()),
            });
        }
        let ranges: Vec<(u32, u32)> = values.chunks(2).map(|c| (c[0], c[1])).collect();
        if ranges.iter().any(|&(lo, hi)| lo > hi) {
            return Err(WorkloadError::Malformed {
                line: i + 2,
                reason: "inverted range".into(),
            });
        }
        queries.push(RangeQuery::new(ranges));
    }
    if queries.is_empty() {
        return Err(WorkloadError::Malformed {
            line: 2,
            reason: "no queries".into(),
        });
    }
    Ok(Workload::new(queries))
}

/// Loads a workload from a file path.
pub fn load_workload(path: impl AsRef<Path>) -> Result<Workload, WorkloadError> {
    read_workload(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Workload::random(&[100, 50, 2], 25, &mut rng);
        let mut buf = Vec::new();
        write_workload(&w, &mut buf).unwrap();
        let back = read_workload(&buf[..]).unwrap();
        assert_eq!(back.len(), 25);
        for (a, b) in back.queries().iter().zip(w.queries()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn header_format() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = Workload::random(&[10, 10], 3, &mut rng);
        let mut buf = Vec::new();
        write_workload(&w, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("dims=2\n"));
    }

    #[test]
    fn rejects_bad_headers_and_rows() {
        assert!(matches!(
            read_workload("nope\n1,2\n".as_bytes()).unwrap_err(),
            WorkloadError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            read_workload("dims=2\n1,2,3\n".as_bytes()).unwrap_err(),
            WorkloadError::Malformed { line: 2, .. }
        ));
        assert!(matches!(
            read_workload("dims=1\n5,2\n".as_bytes()).unwrap_err(),
            WorkloadError::Malformed { line: 2, .. }
        ));
        assert!(matches!(
            read_workload("dims=1\n".as_bytes()).unwrap_err(),
            WorkloadError::Malformed { .. }
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let w = read_workload("dims=1\n1,5\n\n2,3\n".as_bytes()).unwrap();
        assert_eq!(w.len(), 2);
    }
}
