//! Range-count queries and random workload generation.

use rngkit::Rng;

/// A conjunctive range-count query: one inclusive interval `[lo, hi]` per
/// attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeQuery {
    ranges: Vec<(u32, u32)>,
}

impl RangeQuery {
    /// Builds a query from per-dimension inclusive ranges.
    ///
    /// # Panics
    /// Panics when empty or any `lo > hi`.
    pub fn new(ranges: Vec<(u32, u32)>) -> Self {
        assert!(!ranges.is_empty(), "query needs at least one dimension");
        for &(lo, hi) in &ranges {
            assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        }
        Self { ranges }
    }

    /// The per-dimension ranges.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.ranges.len()
    }

    /// The number of cells covered (`prod (hi - lo + 1)`), as `f64` to
    /// survive 8-D x 1000-bin domains.
    pub fn volume(&self) -> f64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| f64::from(hi - lo + 1))
            .product()
    }

    /// Counts the records of a columnar dataset inside the query — the
    /// ground truth `A_act(q)`.
    pub fn count(&self, columns: &[Vec<u32>]) -> f64 {
        assert_eq!(columns.len(), self.dims(), "query arity mismatch");
        let n = columns.first().map_or(0, Vec::len);
        let mut c = 0usize;
        'rows: for row in 0..n {
            for (col, &(lo, hi)) in columns.iter().zip(&self.ranges) {
                let v = col[row];
                if v < lo || v > hi {
                    continue 'rows;
                }
            }
            c += 1;
        }
        c as f64
    }

    /// A uniformly random query: each dimension gets an interval with
    /// independently uniform endpoints (the paper's random predicate
    /// covering all attributes).
    pub fn random<R: Rng + ?Sized>(domains: &[usize], rng: &mut R) -> Self {
        let ranges = domains
            .iter()
            .map(|&d| {
                let a = rng.gen_range(0..d as u32);
                let b = rng.gen_range(0..d as u32);
                (a.min(b), a.max(b))
            })
            .collect();
        Self::new(ranges)
    }

    /// A random query with (approximately) fixed *range volume*: each
    /// dimension gets an interval of length
    /// `round(domain * volume_fraction^(1/m))` at a random position, so
    /// the product of range sizes is the same across queries (Fig 8's
    /// workload).
    pub fn random_with_volume<R: Rng + ?Sized>(
        domains: &[usize],
        volume_fraction: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            volume_fraction > 0.0 && volume_fraction <= 1.0,
            "volume fraction must be in (0, 1]"
        );
        let m = domains.len() as f64;
        let per_dim = volume_fraction.powf(1.0 / m);
        let ranges = domains
            .iter()
            .map(|&d| {
                let len = ((d as f64 * per_dim).round() as u32).clamp(1, d as u32);
                let max_start = d as u32 - len;
                let start = if max_start == 0 {
                    0
                } else {
                    rng.gen_range(0..=max_start)
                };
                (start, start + len - 1)
            })
            .collect();
        Self::new(ranges)
    }
}

/// A batch of queries with shared bookkeeping.
#[derive(Debug, Clone)]
pub struct Workload {
    queries: Vec<RangeQuery>,
}

impl Workload {
    /// Wraps existing queries.
    pub fn new(queries: Vec<RangeQuery>) -> Self {
        assert!(!queries.is_empty(), "workload needs queries");
        Self { queries }
    }

    /// The paper's default workload: `count` uniformly random queries.
    pub fn random<R: Rng + ?Sized>(domains: &[usize], count: usize, rng: &mut R) -> Self {
        Self::new(
            (0..count)
                .map(|_| RangeQuery::random(domains, rng))
                .collect(),
        )
    }

    /// Fig 8's workload: `count` queries of fixed range volume.
    pub fn random_with_volume<R: Rng + ?Sized>(
        domains: &[usize],
        volume_fraction: f64,
        count: usize,
        rng: &mut R,
    ) -> Self {
        Self::new(
            (0..count)
                .map(|_| RangeQuery::random_with_volume(domains, volume_fraction, rng))
                .collect(),
        )
    }

    /// The queries.
    pub fn queries(&self) -> &[RangeQuery] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Ground-truth answers on a dataset.
    pub fn true_counts(&self, columns: &[Vec<u32>]) -> Vec<f64> {
        self.queries.iter().map(|q| q.count(columns)).collect()
    }

    /// Answers from an arbitrary estimator closure.
    pub fn estimate_with<F: FnMut(&RangeQuery) -> f64>(&self, f: F) -> Vec<f64> {
        self.queries.iter().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn count_scans_correctly() {
        let cols = vec![vec![1u32, 5, 9], vec![2u32, 4, 6]];
        let q = RangeQuery::new(vec![(0, 5), (3, 6)]);
        assert_eq!(q.count(&cols), 1.0);
        let all = RangeQuery::new(vec![(0, 9), (0, 9)]);
        assert_eq!(all.count(&cols), 3.0);
    }

    #[test]
    fn random_queries_stay_in_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let q = RangeQuery::random(&[10, 1000, 2], &mut rng);
            for (&(lo, hi), &d) in q.ranges().iter().zip(&[10usize, 1000, 2]) {
                assert!(lo <= hi && (hi as usize) < d);
            }
        }
    }

    #[test]
    fn fixed_volume_queries_have_equal_volume() {
        let mut rng = StdRng::seed_from_u64(2);
        let domains = [1000usize, 1000];
        let w = Workload::random_with_volume(&domains, 0.01, 50, &mut rng);
        let volumes: Vec<f64> = w.queries().iter().map(RangeQuery::volume).collect();
        let first = volumes[0];
        assert!(volumes.iter().all(|&v| (v - first).abs() < 1e-9));
        // 1% of 10^6 cells = 10^4.
        assert!((first - 10_000.0).abs() / 10_000.0 < 0.05, "volume {first}");
    }

    #[test]
    fn volume_of_unit_query() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = RangeQuery::random_with_volume(&[1000, 1000], 1e-6, &mut rng);
        assert_eq!(q.volume(), 1.0);
    }

    #[test]
    fn workload_true_counts_match_individual_counts() {
        let cols = vec![vec![0u32, 1, 2, 3, 4]];
        let mut rng = StdRng::seed_from_u64(4);
        let w = Workload::random(&[5], 20, &mut rng);
        let counts = w.true_counts(&cols);
        for (q, &c) in w.queries().iter().zip(&counts) {
            assert_eq!(q.count(&cols), c);
        }
    }

    #[test]
    #[should_panic(expected = "inverted range")]
    fn rejects_inverted_range() {
        let _ = RangeQuery::new(vec![(5, 2)]);
    }
}
