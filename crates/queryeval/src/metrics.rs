//! Error metrics: the paper's relative error with sanity bound, absolute
//! error, and per-run aggregation.

use crate::query::Workload;

/// Relative error of one query (§5.1):
/// `|A_noisy - A_act| / max(A_act, s)` where `s` is the sanity bound
/// protecting against division by tiny true answers.
///
/// # Panics
/// Panics when `sanity <= 0` (the bound exists to keep the denominator
/// positive).
pub fn relative_error(noisy: f64, actual: f64, sanity: f64) -> f64 {
    assert!(sanity > 0.0, "sanity bound must be positive");
    (noisy - actual).abs() / actual.max(sanity)
}

/// Absolute error of one query: `|A_noisy - A_act|`.
pub fn absolute_error(noisy: f64, actual: f64) -> f64 {
    (noisy - actual).abs()
}

/// Aggregated errors of one (or several averaged) workload runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Mean relative error over the workload.
    pub mean_relative: f64,
    /// Mean absolute error over the workload.
    pub mean_absolute: f64,
    /// Number of queries aggregated.
    pub queries: usize,
}

impl ErrorSummary {
    /// Computes the summary from paired answers.
    ///
    /// # Panics
    /// Panics when the slices differ in length or are empty, or
    /// `sanity <= 0`.
    pub fn from_answers(noisy: &[f64], actual: &[f64], sanity: f64) -> Self {
        assert_eq!(noisy.len(), actual.len(), "answer vectors must pair up");
        assert!(!noisy.is_empty(), "no answers to summarise");
        let n = noisy.len() as f64;
        let mut rel = 0.0;
        let mut abs = 0.0;
        for (&e, &a) in noisy.iter().zip(actual) {
            rel += relative_error(e, a, sanity);
            abs += absolute_error(e, a);
        }
        Self {
            mean_relative: rel / n,
            mean_absolute: abs / n,
            queries: noisy.len(),
        }
    }

    /// Averages summaries across runs (the paper averages 5 runs).
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn average(runs: &[ErrorSummary]) -> Self {
        assert!(!runs.is_empty(), "no runs to average");
        let n = runs.len() as f64;
        Self {
            mean_relative: runs.iter().map(|r| r.mean_relative).sum::<f64>() / n,
            mean_absolute: runs.iter().map(|r| r.mean_absolute).sum::<f64>() / n,
            queries: runs.iter().map(|r| r.queries).sum(),
        }
    }
}

/// Answers `workload` on a synthetic release and on the reference data it
/// stands in for, and summarises the synthetic answers' error against the
/// reference's true counts — the one-call form of the paper's §5.1
/// evaluation loop.
///
/// Thin wrapper over [`evaluate`]; prefer that for new code — it returns
/// the full [`EvalReport`] (per-query errors included), of which this
/// summary is one field.
///
/// # Panics
/// Panics when the workload is empty or `sanity <= 0` (via
/// [`ErrorSummary::from_answers`]).
pub fn evaluate_columns(
    workload: &Workload,
    synthetic: &[Vec<u32>],
    reference: &[Vec<u32>],
    sanity: f64,
) -> ErrorSummary {
    evaluate(
        workload,
        &Synthetic::new(synthetic, reference).sanity(sanity),
    )
    .summary
}

/// A synthetic release paired with the reference data it stands in for,
/// plus the sanity bound its relative errors are computed with — the
/// subject of an [`evaluate`] call.
#[derive(Debug, Clone, Copy)]
pub struct Synthetic<'a> {
    /// The synthetic columns (the DP release under evaluation).
    pub columns: &'a [Vec<u32>],
    /// The reference columns (ground truth the release stands in for).
    pub reference: &'a [Vec<u32>],
    /// Sanity bound `s` of the relative error (§5.1). Default 1.0: one
    /// record, so empty true answers score the full miss.
    pub sanity: f64,
}

impl<'a> Synthetic<'a> {
    /// Pairs a release with its reference, with the default sanity
    /// bound of 1.0.
    pub fn new(columns: &'a [Vec<u32>], reference: &'a [Vec<u32>]) -> Self {
        Self {
            columns,
            reference,
            sanity: 1.0,
        }
    }

    /// Overrides the sanity bound (the paper uses 0.1% of the dataset
    /// cardinality for its figures).
    ///
    /// # Panics
    /// Panics when `sanity <= 0`.
    pub fn sanity(mut self, sanity: f64) -> Self {
        assert!(sanity > 0.0, "sanity bound must be positive");
        self.sanity = sanity;
        self
    }
}

/// Everything one workload evaluation produced: the aggregate
/// [`ErrorSummary`] plus the per-query answer and error vectors the
/// aggregate collapses (queries in workload order).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Aggregate errors over the workload.
    pub summary: ErrorSummary,
    /// True count of each query on the reference data.
    pub actual: Vec<f64>,
    /// Count of each query on the synthetic release.
    pub synthetic: Vec<f64>,
    /// Per-query relative error (with the sanity bound applied).
    pub relative: Vec<f64>,
    /// Per-query absolute error.
    pub absolute: Vec<f64>,
    /// The sanity bound the relative errors used.
    pub sanity: f64,
}

impl EvalReport {
    /// The worst per-query relative error.
    pub fn max_relative(&self) -> f64 {
        self.relative.iter().cloned().fold(0.0, f64::max)
    }
}

/// Evaluates a synthetic release against `workload` — the one coherent
/// entry point of this crate. Answers every query on both the release
/// and its reference, and returns the per-query answers, per-query
/// errors, and their [`ErrorSummary`] aggregate in one [`EvalReport`].
///
/// # Panics
/// Panics when the workload arity does not match the column count (via
/// [`crate::query::RangeQuery::count`]).
pub fn evaluate(workload: &Workload, synthetic: &Synthetic<'_>) -> EvalReport {
    let actual = workload.true_counts(synthetic.reference);
    let released = workload.true_counts(synthetic.columns);
    let relative: Vec<f64> = released
        .iter()
        .zip(&actual)
        .map(|(&e, &a)| relative_error(e, a, synthetic.sanity))
        .collect();
    let absolute: Vec<f64> = released
        .iter()
        .zip(&actual)
        .map(|(&e, &a)| absolute_error(e, a))
        .collect();
    let summary = ErrorSummary::from_answers(&released, &actual, synthetic.sanity);
    EvalReport {
        summary,
        actual,
        synthetic: released,
        relative,
        absolute,
        sanity: synthetic.sanity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RangeQuery;

    #[test]
    fn relative_error_uses_sanity_bound() {
        // True answer 0 would divide by zero without the bound.
        assert_eq!(relative_error(5.0, 0.0, 1.0), 5.0);
        // Large true answers ignore the bound.
        assert_eq!(relative_error(90.0, 100.0, 1.0), 0.1);
        // The bound kicks in below s.
        assert_eq!(relative_error(4.0, 2.0, 10.0), 0.2);
    }

    #[test]
    fn absolute_error_is_symmetric() {
        assert_eq!(absolute_error(3.0, 5.0), 2.0);
        assert_eq!(absolute_error(5.0, 3.0), 2.0);
    }

    #[test]
    fn summary_aggregates() {
        let s = ErrorSummary::from_answers(&[10.0, 0.0], &[8.0, 4.0], 1.0);
        // rel: 2/8 + 4/4 = 0.25 + 1.0 => mean 0.625; abs: (2+4)/2 = 3.
        assert!((s.mean_relative - 0.625).abs() < 1e-12);
        assert!((s.mean_absolute - 3.0).abs() < 1e-12);
        assert_eq!(s.queries, 2);
    }

    #[test]
    fn averaging_runs() {
        let a = ErrorSummary {
            mean_relative: 0.2,
            mean_absolute: 10.0,
            queries: 100,
        };
        let b = ErrorSummary {
            mean_relative: 0.4,
            mean_absolute: 20.0,
            queries: 100,
        };
        let avg = ErrorSummary::average(&[a, b]);
        assert!((avg.mean_relative - 0.3).abs() < 1e-12);
        assert!((avg.mean_absolute - 15.0).abs() < 1e-12);
        assert_eq!(avg.queries, 200);
    }

    #[test]
    #[should_panic(expected = "sanity bound")]
    fn rejects_non_positive_sanity() {
        let _ = relative_error(1.0, 1.0, 0.0);
    }

    #[test]
    fn evaluate_reports_per_query_and_aggregate() {
        let workload = Workload::new(vec![
            RangeQuery::new(vec![(0, 1)]),
            RangeQuery::new(vec![(2, 3)]),
        ]);
        let reference = vec![vec![0u32, 1, 2, 3]];
        let synthetic_cols = vec![vec![0u32, 1, 1, 3]];
        let report = evaluate(&workload, &Synthetic::new(&synthetic_cols, &reference));
        assert_eq!(report.actual, vec![2.0, 2.0]);
        assert_eq!(report.synthetic, vec![3.0, 1.0]);
        assert_eq!(report.absolute, vec![1.0, 1.0]);
        assert_eq!(report.relative, vec![0.5, 0.5]);
        assert_eq!(report.max_relative(), 0.5);
        assert_eq!(report.sanity, 1.0);
        // The summary is exactly the aggregate of the per-query vectors,
        // and matches the legacy one-summary entry point.
        assert_eq!(report.summary.queries, 2);
        assert!((report.summary.mean_relative - 0.5).abs() < 1e-12);
        assert!((report.summary.mean_absolute - 1.0).abs() < 1e-12);
        assert_eq!(
            report.summary,
            evaluate_columns(&workload, &synthetic_cols, &reference, 1.0)
        );
    }

    #[test]
    #[should_panic(expected = "sanity bound")]
    fn synthetic_rejects_non_positive_sanity() {
        let cols = vec![vec![0u32]];
        let _ = Synthetic::new(&cols, &cols).sanity(-1.0);
    }

    #[test]
    fn evaluate_columns_compares_releases() {
        let workload = Workload::new(vec![
            RangeQuery::new(vec![(0, 1)]),
            RangeQuery::new(vec![(2, 3)]),
        ]);
        let reference = vec![vec![0u32, 1, 2, 3]];
        // Identical data: zero error.
        let s = evaluate_columns(&workload, &reference, &reference, 1.0);
        assert_eq!(s.mean_relative, 0.0);
        assert_eq!(s.mean_absolute, 0.0);
        assert_eq!(s.queries, 2);
        // A shifted release: each query loses/gains one hit.
        let synthetic = vec![vec![0u32, 0, 2, 2]];
        let s = evaluate_columns(&workload, &synthetic, &reference, 1.0);
        assert_eq!(s.mean_absolute, 0.0);
        let synthetic = vec![vec![0u32, 1, 1, 3]];
        let s = evaluate_columns(&workload, &synthetic, &reference, 1.0);
        assert!((s.mean_absolute - 1.0).abs() < 1e-12);
    }
}
