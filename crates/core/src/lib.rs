//! # dpcopula — differentially private data synthesization via copulas
//!
//! A from-scratch Rust implementation of **DPCopula** (Li, Xiong, Jiang;
//! EDBT 2014): generate differentially private synthetic multi-dimensional
//! data by (1) publishing DP *marginal* histograms per attribute, (2)
//! estimating a DP Gaussian-copula *correlation matrix* capturing the
//! cross-attribute dependence, and (3) sampling synthetic records from the
//! joint model — margins and dependence are privatised separately, which
//! is what lets the method scale to high-dimensional, large-domain data
//! where DP histogram methods drown in noise.
//!
//! Two estimators for the correlation matrix are provided, exactly as in
//! the paper:
//!
//! * **DPCopula-Kendall** (Algorithms 4–5): noisy pairwise Kendall's tau
//!   (sensitivity `4/(n+1)`, Lemma 4.1) mapped through
//!   `P = sin(pi/2 * tau)`;
//! * **DPCopula-MLE** (Algorithms 1–2): subsample-and-aggregate maximum
//!   likelihood on the pseudo-copula data.
//!
//! Entry point: [`synthesizer::DpCopula`]. Small-domain attributes (e.g.
//! binary gender) are handled by [`hybrid::HybridSynthesizer`]
//! (Algorithm 6).
//!
//! ```
//! use dpcopula::synthesizer::{DpCopula, DpCopulaConfig};
//! use dpmech::Epsilon;
//! use rngkit::SeedableRng;
//!
//! // A toy 2-attribute dataset on domains 50 x 50.
//! let col_a: Vec<u32> = (0..500).map(|i| i % 50).collect();
//! let col_b: Vec<u32> = col_a.iter().map(|&v| (v * 7 % 50)).collect();
//! let mut rng = rngkit::rngs::StdRng::seed_from_u64(1);
//!
//! let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
//! let synth = DpCopula::new(config)
//!     .synthesize(&[col_a, col_b], &[50, 50], &mut rng)
//!     .unwrap();
//! assert_eq!(synth.columns.len(), 2);
//! assert_eq!(synth.columns[0].len(), 500);
//! ```

#![warn(missing_docs)]

pub mod convergence;
pub mod distfit;
pub mod empirical;
pub mod empirical_copula;
pub mod engine;
pub mod error;
pub mod evolving;
pub mod gaussian;
pub mod hybrid;
pub mod kendall;
pub mod mle;
pub mod model;
pub mod request;
pub mod sampler;
pub mod selection;
pub mod shard;
pub mod spearman;
pub mod synthesizer;
pub mod tcopula;

pub use distfit::{fit_shard, merge_shards};
pub use engine::{EngineOptions, PipelineReport, StageTimings};
pub use error::DpCopulaError;
pub use model::FittedModel;
pub use request::SynthesisRequest;
pub use sampler::SamplingProfile;
pub use shard::{ShardSpec, ShardSummary};
pub use synthesizer::{CorrelationMethod, DpCopula, DpCopulaConfig, MarginMethod, Synthesis};
