//! The staged parallel synthesis engine.
//!
//! [`DpCopula::synthesize`] runs the pipeline of Figure 4 as one opaque
//! serial pass. This module decomposes it into five explicit stages —
//! budget plan → margins → correlation → PD repair → sampling — each
//! individually timed, with the three data-parallel stages fanned out
//! through [`parkit`]:
//!
//! * **margins** — one task per attribute (`C(m,1)` tasks);
//! * **correlation** — one task per attribute pair (`C(m,2)` tasks),
//!   over cached per-column rank structures;
//! * **sampling** — one task per row chunk of
//!   [`EngineOptions::sample_chunk`] records.
//!
//! ## The determinism contract
//!
//! Every stochastic task derives its generator with
//! [`parkit::stream_rng`]`(base_seed, STREAM_*, index)` where `index` is
//! the task's *logical* identity — attribute id, pair id, row-chunk id —
//! never a thread id. The output is therefore a pure function of
//! `(data, config, base_seed)`: bit-identical at any worker count, which
//! `crates/core/tests/parallel_equivalence.rs` pins down.
//!
//! The `STREAM_*` constants below partition the derivation space so no
//! two stages can collide on a generator even when their indices overlap.

use crate::empirical::MarginalDistribution;
use crate::error::{validate_columns, DpCopulaError};
use crate::mle::dp_mle_matrix_par;
use crate::sampler::CopulaSampler;
use crate::shard;
use crate::spearman::dp_spearman_matrix_par;
use crate::synthesizer::{CorrelationMethod, DpCopula, Synthesis};
use datagen::RowSource;
use dpmech::BudgetAccountant;
use mathkit::correlation::{clamp_to_correlation, repair_positive_definite};
use mathkit::Matrix;
use modelstore::{AttributeSpec, BudgetEntry, ShardInfo};
use obskit::names::{
    ENGINE_SHARDS, ENGINE_WORKERS, PIPELINE_ROWS_OUT_TOTAL, PIPELINE_RUNS_TOTAL,
    SAMPLING_PROFILE_ROWS_TOTAL, SHARD_EPS_SPENT_NEPS,
};
use obskit::{MetricsSink, Stopwatch, Unit, SPAN_NS};
use std::time::Duration;

/// RNG stream for margin publication (index = attribute id).
pub const STREAM_MARGINS: u64 = 1;
/// RNG stream for the Kendall row subsample (index = 0).
pub const STREAM_KENDALL_SAMPLE: u64 = 2;
/// RNG stream for per-pair Kendall noise (index = pair id).
pub const STREAM_KENDALL_NOISE: u64 = 3;
/// RNG stream for per-pair MLE aggregate noise (index = pair id).
pub const STREAM_MLE_NOISE: u64 = 4;
/// RNG stream for per-pair Spearman noise (index = pair id).
pub const STREAM_SPEARMAN_NOISE: u64 = 5;
/// RNG stream for copula sampling (index = row-chunk id).
pub const STREAM_SAMPLER: u64 = 6;

/// Runs `f` and publishes the noise draws it made (on this thread) as
/// `noise_draws_total{stage, mech}` counters. Uses the thread-local draw
/// tally in [`dpmech::draws`], so it must wrap the code that draws on the
/// same thread it runs on — inside a `par_map` task, not around it.
/// Disabled sinks skip the tally snapshots entirely.
pub(crate) fn harvest_draws<T>(sink: &MetricsSink, stage: &str, f: impl FnOnce() -> T) -> T {
    if !sink.enabled() {
        return f();
    }
    let before = dpmech::draws::snapshot();
    let out = f();
    dpmech::draws::snapshot()
        .since(&before)
        .record_into(sink, stage);
    out
}

/// Execution knobs for the staged engine. Orthogonal to
/// [`crate::synthesizer::DpCopulaConfig`]: the config decides *what* is
/// released, the options decide *how fast* — by the determinism contract
/// they can never change the released bytes.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Worker threads for the fan-out stages. `1` runs everything inline
    /// on the caller's thread; any value yields identical output.
    pub workers: usize,
    /// Rows per sampling task. Smaller chunks balance better across
    /// workers but spend more on per-chunk generator setup. Part of the
    /// released value's identity (chunk boundaries key the sampling
    /// streams), so changing it changes the sampled records — unlike
    /// `workers`, which never does.
    pub sample_chunk: usize,
    /// Disjoint row shards the fit partitions its input into, each
    /// reduced to a mergeable [`crate::shard::ShardSummary`] and merged
    /// into one model (DESIGN.md §12). `1` (the default) is the
    /// unsharded fit — the same merge path, reproducing the pre-shard
    /// pipeline byte for byte. Values above 1 change the released bytes
    /// (per-shard noise terms and, under record sampling, per-shard row
    /// subsamples), so like `sample_chunk` this is part of the released
    /// value's identity.
    pub shards: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            workers: parkit::default_workers(),
            sample_chunk: 8192,
            shards: 1,
        }
    }
}

impl EngineOptions {
    /// Options pinned to a specific worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Options pinned to a specific shard count (workers at default).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

/// Wall-clock time spent in each pipeline stage of one staged run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Input validation, budget split, and accounting.
    pub budget_plan: Duration,
    /// DP marginal histogram publication (parallel over attributes).
    pub margins: Duration,
    /// DP correlation-matrix estimation (parallel over pairs).
    pub correlation: Duration,
    /// Clamping + eigenvalue positive-definite repair.
    pub pd_repair: Duration,
    /// Copula sampling (parallel over row chunks).
    pub sampling: Duration,
}

impl StageTimings {
    /// Sum over all five stages.
    pub fn total(&self) -> Duration {
        self.budget_plan + self.margins + self.correlation + self.pd_repair + self.sampling
    }

    /// `(stage name, duration)` pairs in pipeline order, for reports.
    pub fn stages(&self) -> [(&'static str, Duration); 5] {
        [
            ("budget_plan", self.budget_plan),
            ("margins", self.margins),
            ("correlation", self.correlation),
            ("pd_repair", self.pd_repair),
            ("sampling", self.sampling),
        ]
    }

    /// Rebuilds stage timings from the `span_ns{span="pipeline/<stage>"}`
    /// series of a metrics snapshot. The engine records each stage
    /// exactly once per run through the same spans that produce the
    /// [`PipelineReport`], so for a single-run snapshot this is the same
    /// report viewed through the metrics layer — there is no second
    /// clock to disagree with.
    pub fn from_snapshot(snap: &obskit::Snapshot) -> Self {
        let stage_ns = |stage: &str| {
            let path = format!("pipeline/{stage}");
            let id = obskit::series_id(obskit::SPAN_NS, &[("span", &path)]);
            snap.get(&id)
                .and_then(|e| e.value.as_hist())
                .map(|h| Duration::from_nanos(h.sum))
                .unwrap_or_default()
        };
        Self {
            budget_plan: stage_ns("budget_plan"),
            margins: stage_ns("margins"),
            correlation: stage_ns("correlation"),
            pd_repair: stage_ns("pd_repair"),
            sampling: stage_ns("sampling"),
        }
    }
}

/// What one staged run did, beyond the released [`Synthesis`].
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Worker count the fan-out stages ran with.
    pub workers: usize,
    /// The base seed every stream generator was derived from.
    pub base_seed: u64,
}

/// The fitted model pieces stages 1–4 produce — everything of a run
/// except the sampled rows. `DpCopula::fit_staged` packages this into a
/// durable [`crate::model::FittedModel`]; [`DpCopula::synthesize_staged`]
/// feeds it straight into the sampling stage.
pub(crate) struct FitParts {
    /// Ready-to-sample marginal distributions (CDFs from noisy counts).
    pub margins: Vec<MarginalDistribution>,
    /// The published noisy marginal counts.
    pub noisy_margins: Vec<Vec<f64>>,
    /// The clamped + PD-repaired DP correlation matrix.
    pub correlation: Matrix,
    /// Budget spent on margins (`epsilon_1`).
    pub epsilon_margins: f64,
    /// Budget spent on correlations (`epsilon_2`; 0 for one attribute).
    pub epsilon_correlations: f64,
    /// Per-shard provenance (row ranges + stream indices); empty for the
    /// 1-shard fit so its artifact stays on format v1, byte-identical to
    /// the pre-shard pipeline.
    pub shards: Vec<ShardInfo>,
    /// Per-shard budget sub-ledgers as artifact entries; empty for the
    /// 1-shard fit.
    pub shard_entries: Vec<Vec<BudgetEntry>>,
}

/// Per-shard provenance records and budget sub-ledgers for the model
/// artifact, only when actually sharded: the 1-shard artifact must stay
/// on format v1, byte-identical to the pre-shard pipeline.
pub(crate) fn shard_provenance(
    summaries: &[shard::ShardSummary],
    shards: usize,
) -> (Vec<ShardInfo>, Vec<Vec<BudgetEntry>>) {
    if shards <= 1 {
        return (Vec::new(), Vec::new());
    }
    let infos = summaries
        .iter()
        .map(|s| ShardInfo {
            row_start: s.spec.start as u64,
            row_end: s.spec.end as u64,
            seed_index: s.spec.seed_index,
        })
        .collect();
    let entries = summaries
        .iter()
        .map(|s| {
            s.ledger
                .entries()
                .iter()
                .map(|(label, neps)| BudgetEntry {
                    label: label.clone(),
                    epsilon: *neps as f64 * 1e-9,
                })
                .collect()
        })
        .collect();
    (infos, entries)
}

impl DpCopula {
    /// Runs stages 1–4 of the pipeline (budget plan → margins →
    /// correlation → PD repair) — the *fit*, which is everything that
    /// touches the raw data and the privacy budget. Sampling from the
    /// result is free post-processing.
    pub(crate) fn fit_parts(
        &self,
        columns: &[Vec<u32>],
        domains: &[usize],
        base_seed: u64,
        opts: &EngineOptions,
        sink: &MetricsSink,
    ) -> Result<(FitParts, StageTimings), DpCopulaError> {
        let workers = opts.workers.max(1);
        let mut timings = StageTimings::default();

        // Stage 1: budget plan.
        let span = sink.span("budget_plan");
        validate_columns(columns, domains)?;
        let m = columns.len();
        let n = columns[0].len();
        if m > 1 && n < 2 {
            // Pairwise correlation (Kendall/Spearman/MLE) needs >= 2
            // observations.
            return Err(DpCopulaError::TooFewRecords {
                records: n,
                required: 2,
            });
        }
        if opts.shards == 0 {
            return Err(DpCopulaError::ZeroShards);
        }
        if opts.shards > n {
            return Err(DpCopulaError::TooManyShards {
                shards: opts.shards,
                records: n,
            });
        }
        let cfg = self.config();
        if opts.shards > 1 && m > 1 {
            // Only Kendall's tau has a mergeable summary (DESIGN.md §12).
            match cfg.method {
                CorrelationMethod::Kendall(_) => {}
                CorrelationMethod::Mle(_) => {
                    return Err(DpCopulaError::ShardedCorrelationUnsupported { method: "mle" })
                }
                CorrelationMethod::Spearman => {
                    return Err(DpCopulaError::ShardedCorrelationUnsupported { method: "spearman" })
                }
            }
        }
        let (eps1, eps2) = cfg.epsilon.split_ratio(cfg.k_ratio);
        let mut accountant = BudgetAccountant::new(cfg.epsilon);
        let eps_margin = eps1.divide(m);
        let specs = shard::shard_specs(n, opts.shards);
        sink.gauge_set(ENGINE_SHARDS, Unit::Info, opts.shards as u64);
        timings.budget_plan = span.finish();

        // Stage 2: DP margins — one task per (shard, attribute), eps1/m
        // each; shards hold disjoint rows, so parallel composition keeps
        // the combined per-attribute cost at eps1/m (the per-shard max).
        let span = sink.span("margins");
        let margin_name = cfg.margin.registry_name();
        let fit_watch = Stopwatch::start();
        let mut summaries = shard::build_margin_summaries(
            columns,
            domains,
            &specs,
            margin_name,
            eps_margin,
            base_seed,
            workers,
            sink,
        );
        let mut shard_fit_ns = fit_watch.elapsed_ns();
        let merge_watch = Stopwatch::start();
        let noisy_margins = shard::merge_margins(&summaries);
        let mut shard_merge_ns = merge_watch.elapsed_ns();
        for _ in 0..m {
            accountant.spend_tracked(eps_margin, "margins", sink)?;
        }
        let margins: Vec<MarginalDistribution> = noisy_margins
            .iter()
            .map(|noisy| MarginalDistribution::from_noisy_histogram(noisy))
            .collect();
        timings.margins = span.finish();

        // Stage 3: DP correlation matrix (raw, pre-repair) with eps2.
        let span = sink.span("correlation");
        let raw = if m == 1 {
            Matrix::identity(1)
        } else {
            match cfg.method {
                CorrelationMethod::Kendall(strategy) => {
                    // Summary building covers the per-shard τ layers AND
                    // the cross-shard concordance fan-out (estimation
                    // work that scales with shard pairs); only the
                    // serial fold into the released matrix is merging.
                    let watch = Stopwatch::start();
                    shard::fill_tau(
                        &mut summaries,
                        columns,
                        strategy,
                        eps2,
                        base_seed,
                        workers,
                        sink,
                    );
                    let cross = shard::cross_concordances(&summaries, workers, sink);
                    shard_fit_ns += watch.elapsed_ns();
                    let watch = Stopwatch::start();
                    let p = shard::combine_tau(&summaries, &cross, eps2, base_seed, sink);
                    shard_merge_ns += watch.elapsed_ns();
                    p
                }
                // Stage-1 validation guarantees a single shard here.
                CorrelationMethod::Mle(strategy) => {
                    dp_mle_matrix_par(columns, eps2, strategy, base_seed, workers, sink)?
                }
                CorrelationMethod::Spearman => {
                    dp_spearman_matrix_par(columns, eps2, base_seed, workers, sink)?
                }
            }
        };
        if m > 1 {
            accountant.spend_tracked(eps2, "correlation", sink)?;
        }
        timings.correlation = span.finish();

        // Stage 4: clamp + positive-definite repair (post-processing).
        let span = sink.span("pd_repair");
        let correlation = if m == 1 {
            raw
        } else {
            let mut p = raw;
            clamp_to_correlation(&mut p);
            repair_positive_definite(&p)
        };
        timings.pd_repair = span.finish();

        // Shard observability: the two cost centres of the merge path
        // (per-shard summary building vs. merging) and each shard's own
        // ε expenditure.
        if sink.enabled() {
            sink.observe_labeled(
                SPAN_NS,
                &[("span", "pipeline/shard_fit")],
                Unit::Nanos,
                shard_fit_ns,
            );
            sink.observe_labeled(
                SPAN_NS,
                &[("span", "pipeline/shard_merge")],
                Unit::Nanos,
                shard_merge_ns,
            );
            for (s, summary) in summaries.iter().enumerate() {
                sink.add_labeled(
                    SHARD_EPS_SPENT_NEPS,
                    &[("shard", &s.to_string())],
                    Unit::NanoEps,
                    summary.ledger.total_neps(),
                );
            }
        }

        let (shard_infos, shard_entries) = shard_provenance(&summaries, opts.shards);

        Ok((
            FitParts {
                margins,
                noisy_margins,
                correlation,
                epsilon_margins: eps1.value(),
                epsilon_correlations: if m > 1 { eps2.value() } else { 0.0 },
                shards: shard_infos,
                shard_entries,
            },
            timings,
        ))
    }

    /// The streaming counterpart of [`DpCopula::fit_parts`]: runs stages
    /// 1–4 against a [`RowSource`] without materializing its columns,
    /// returning the fit parts plus the source's schema and row count.
    ///
    /// Under the Kendall estimator (the only one with streamable
    /// sufficient statistics) the resident state is the exact histogram
    /// counts, the τ record subsample and one block at a time — peak
    /// memory is bounded by the source's block size, not its row count.
    /// MLE and Spearman need the raw records partitioned, so they fall
    /// back to materializing the source and delegating to the eager path
    /// (the documented limitation; they also refuse `shards > 1`).
    ///
    /// For equal input the released values are byte-identical to the
    /// eager path at the same `(config, base_seed, shards)`: the gather
    /// accumulates exactly the counts `Histogram1D::from_values` builds
    /// and the same subsample rows, and every noise stream keys off the
    /// same logical indices (pinned in `tests/distfit_identity.rs`).
    pub(crate) fn fit_parts_source(
        &self,
        source: &mut dyn RowSource,
        base_seed: u64,
        opts: &EngineOptions,
        sink: &MetricsSink,
    ) -> Result<(FitParts, StageTimings, Vec<AttributeSpec>, usize), DpCopulaError> {
        let cfg = self.config();
        let strategy = match cfg.method {
            CorrelationMethod::Kendall(strategy) => strategy,
            CorrelationMethod::Mle(_) | CorrelationMethod::Spearman => {
                let (schema, domains, columns) = crate::distfit::materialize_source(source)?;
                let (parts, timings) = self.fit_parts(&columns, &domains, base_seed, opts, sink)?;
                let n = columns[0].len();
                return Ok((parts, timings, schema, n));
            }
        };
        let workers = opts.workers.max(1);
        let mut timings = StageTimings::default();

        // Stage 1: budget plan — including the streaming gather, whose
        // passes over the source replace holding the columns resident.
        let span = sink.span("budget_plan");
        if opts.shards == 0 {
            return Err(DpCopulaError::ZeroShards);
        }
        let (eps1, eps2) = cfg.epsilon.split_ratio(cfg.k_ratio);
        let gather = crate::distfit::gather_source(source, opts.shards, strategy, eps2, base_seed)?;
        let crate::distfit::SourceGather {
            names,
            domains,
            n,
            specs,
            exact,
            sampled,
        } = gather;
        let m = domains.len();
        let mut accountant = BudgetAccountant::new(cfg.epsilon);
        let eps_margin = eps1.divide(m);
        sink.gauge_set(ENGINE_SHARDS, Unit::Info, opts.shards as u64);
        timings.budget_plan = span.finish();

        // Stage 2: DP margins from the exact streamed counts — the same
        // (shard, attribute) task list, stream keys and noise draws as
        // the eager path.
        let span = sink.span("margins");
        let margin_name = cfg.margin.registry_name();
        let fit_watch = Stopwatch::start();
        let mut summaries = shard::build_margin_summaries_from_counts(
            &exact,
            &specs,
            margin_name,
            eps_margin,
            base_seed,
            workers,
            sink,
        );
        let mut shard_fit_ns = fit_watch.elapsed_ns();
        let merge_watch = Stopwatch::start();
        let noisy_margins = shard::merge_margins(&summaries);
        let mut shard_merge_ns = merge_watch.elapsed_ns();
        for _ in 0..m {
            accountant.spend_tracked(eps_margin, "margins", sink)?;
        }
        let margins: Vec<MarginalDistribution> = noisy_margins
            .iter()
            .map(|noisy| MarginalDistribution::from_noisy_histogram(noisy))
            .collect();
        timings.margins = span.finish();

        // Stage 3: DP Kendall correlation over the streamed subsample.
        let span = sink.span("correlation");
        let raw = if m == 1 {
            Matrix::identity(1)
        } else {
            let watch = Stopwatch::start();
            shard::fill_tau_from_sampled(&mut summaries, sampled, workers, sink);
            let cross = shard::cross_concordances(&summaries, workers, sink);
            shard_fit_ns += watch.elapsed_ns();
            let watch = Stopwatch::start();
            let p = shard::combine_tau(&summaries, &cross, eps2, base_seed, sink);
            shard_merge_ns += watch.elapsed_ns();
            p
        };
        if m > 1 {
            accountant.spend_tracked(eps2, "correlation", sink)?;
        }
        timings.correlation = span.finish();

        // Stage 4: clamp + positive-definite repair (post-processing).
        let span = sink.span("pd_repair");
        let correlation = if m == 1 {
            raw
        } else {
            let mut p = raw;
            clamp_to_correlation(&mut p);
            repair_positive_definite(&p)
        };
        timings.pd_repair = span.finish();

        if sink.enabled() {
            sink.observe_labeled(
                SPAN_NS,
                &[("span", "pipeline/shard_fit")],
                Unit::Nanos,
                shard_fit_ns,
            );
            sink.observe_labeled(
                SPAN_NS,
                &[("span", "pipeline/shard_merge")],
                Unit::Nanos,
                shard_merge_ns,
            );
            for (s, summary) in summaries.iter().enumerate() {
                sink.add_labeled(
                    SHARD_EPS_SPENT_NEPS,
                    &[("shard", &s.to_string())],
                    Unit::NanoEps,
                    summary.ledger.total_neps(),
                );
            }
        }

        let (shard_infos, shard_entries) = shard_provenance(&summaries, opts.shards);
        let schema = names
            .iter()
            .zip(&domains)
            .map(|(name, &d)| AttributeSpec::new(name.clone(), d))
            .collect();

        Ok((
            FitParts {
                margins,
                noisy_margins,
                correlation,
                epsilon_margins: eps1.value(),
                epsilon_correlations: if m > 1 { eps2.value() } else { 0.0 },
                shards: shard_infos,
                shard_entries,
            },
            timings,
            schema,
            n,
        ))
    }

    /// Runs the full pipeline as five explicit stages, fanning the
    /// data-parallel ones out across `opts.workers` threads.
    ///
    /// Releases exactly the same kind of [`Synthesis`] as
    /// [`DpCopula::synthesize`] (which delegates here), plus a
    /// [`PipelineReport`] with per-stage timings. All randomness is
    /// derived from `base_seed` via index-keyed streams, so for a fixed
    /// `(data, config, base_seed, sample_chunk)` the output is
    /// bit-identical at any worker count.
    ///
    /// *Soft-deprecated:* prefer [`crate::request::SynthesisRequest`],
    /// which adds a metrics sink to the same run; this wrapper delegates
    /// to the identical internal path with metrics off and releases
    /// byte-identical output (`DESIGN.md` §10).
    pub fn synthesize_staged(
        &self,
        columns: &[Vec<u32>],
        domains: &[usize],
        base_seed: u64,
        opts: &EngineOptions,
    ) -> Result<(Synthesis, PipelineReport), DpCopulaError> {
        self.synthesize_staged_with(columns, domains, base_seed, opts, &MetricsSink::off())
    }

    /// [`DpCopula::synthesize_staged`] with a metrics sink: every stage
    /// runs under a `pipeline/<stage>` span, the fan-outs publish
    /// per-task latency, and the budget ledger and noise mechanisms
    /// publish their counters. With a disabled sink this is exactly
    /// `synthesize_staged` — same bytes, no recording.
    pub(crate) fn synthesize_staged_with(
        &self,
        columns: &[Vec<u32>],
        domains: &[usize],
        base_seed: u64,
        opts: &EngineOptions,
        sink: &MetricsSink,
    ) -> Result<(Synthesis, PipelineReport), DpCopulaError> {
        let pipeline = sink.span("pipeline");
        let (parts, timings) = self.fit_parts(columns, domains, base_seed, opts, sink)?;
        let out = self.sample_parts(parts, timings, columns[0].len(), base_seed, opts, sink)?;
        drop(pipeline);
        Ok(out)
    }

    /// The streaming counterpart of
    /// [`DpCopula::synthesize_staged_with`]: fits from a [`RowSource`]
    /// via [`DpCopula::fit_parts_source`] (bounded resident memory under
    /// the Kendall estimator) and samples the released model. With
    /// `output_records` unset the output row count is the source's row
    /// count, exactly as the eager path defaults to the input length.
    pub(crate) fn synthesize_source_with(
        &self,
        source: &mut dyn RowSource,
        base_seed: u64,
        opts: &EngineOptions,
        sink: &MetricsSink,
    ) -> Result<(Synthesis, PipelineReport), DpCopulaError> {
        let pipeline = sink.span("pipeline");
        let (parts, timings, _schema, n) = self.fit_parts_source(source, base_seed, opts, sink)?;
        let out = self.sample_parts(parts, timings, n, base_seed, opts, sink)?;
        drop(pipeline);
        Ok(out)
    }

    /// Stage 5: copula sampling — one task per row chunk
    /// (post-processing, no budget). The profile picks the hot path; both
    /// draw from the same fitted DP model. `n_default` is the output row
    /// count when the config leaves `output_records` unset (the input's
    /// row count, preserving the eager default).
    fn sample_parts(
        &self,
        parts: FitParts,
        mut timings: StageTimings,
        n_default: usize,
        base_seed: u64,
        opts: &EngineOptions,
        sink: &MetricsSink,
    ) -> Result<(Synthesis, PipelineReport), DpCopulaError> {
        let workers = opts.workers.max(1);
        let span = sink.span("sampling");
        let profile = self.config().sampling_profile;
        let sampler = CopulaSampler::new(&parts.correlation, parts.margins)?;
        let n_out = self.config().output_records.unwrap_or(n_default);
        let out_columns = sampler.sample_columns_window_profile_observed(
            profile,
            0,
            n_out,
            base_seed,
            STREAM_SAMPLER,
            workers,
            opts.sample_chunk,
            sink,
            "sampling",
        );
        timings.sampling = span.finish();

        sink.add(PIPELINE_RUNS_TOTAL, Unit::Count, 1);
        sink.add(PIPELINE_ROWS_OUT_TOTAL, Unit::Count, n_out as u64);
        sink.add_labeled(
            SAMPLING_PROFILE_ROWS_TOTAL,
            &[("profile", profile.name())],
            Unit::Count,
            n_out as u64,
        );
        sink.gauge_set(ENGINE_WORKERS, Unit::Info, workers as u64);

        Ok((
            Synthesis {
                columns: out_columns,
                correlation: parts.correlation,
                noisy_margins: parts.noisy_margins,
                epsilon_margins: parts.epsilon_margins,
                epsilon_correlations: parts.epsilon_correlations,
            },
            PipelineReport {
                timings,
                workers,
                base_seed,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendall::SamplingStrategy;
    use crate::mle::PartitionStrategy;
    use crate::synthesizer::{DpCopulaConfig, MarginMethod};
    use dpmech::Epsilon;
    use rngkit::rngs::StdRng;
    use rngkit::{Rng, SeedableRng};

    fn test_columns(m: usize, n: usize, domain: u32, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
        (0..m)
            .map(|j| {
                base.iter()
                    .map(|&v| (v + rng.gen_range(0..domain / 4) + j as u32) % domain)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn staged_output_is_worker_count_invariant() {
        let cols = test_columns(3, 2_000, 64, 1);
        let domains = vec![64usize; 3];
        let mut config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
        config.method = CorrelationMethod::Kendall(SamplingStrategy::Fixed(500));
        let dp = DpCopula::new(config);

        let (base, report) = dp
            .synthesize_staged(&cols, &domains, 42, &EngineOptions::with_workers(1))
            .unwrap();
        assert_eq!(report.workers, 1);
        for workers in [2, 7] {
            let (out, report) = dp
                .synthesize_staged(&cols, &domains, 42, &EngineOptions::with_workers(workers))
                .unwrap();
            assert_eq!(report.workers, workers);
            assert_eq!(out.columns, base.columns, "workers={workers}");
            assert_eq!(out.correlation, base.correlation, "workers={workers}");
            assert_eq!(out.noisy_margins, base.noisy_margins, "workers={workers}");
        }
    }

    #[test]
    fn staged_report_times_every_stage() {
        let cols = test_columns(2, 3_000, 32, 2);
        let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));
        let (_, report) = dp
            .synthesize_staged(&cols, &[32, 32], 7, &EngineOptions::default())
            .unwrap();
        let t = report.timings;
        // Margins, correlation and sampling do real work; the plan and
        // repair stages may round to zero but must not exceed the total.
        assert!(t.margins > Duration::ZERO);
        assert!(t.correlation > Duration::ZERO);
        assert!(t.sampling > Duration::ZERO);
        assert_eq!(
            t.total(),
            t.stages().iter().map(|(_, d)| *d).sum::<Duration>()
        );
    }

    #[test]
    fn staged_runs_every_correlation_method() {
        let cols = test_columns(3, 4_000, 40, 3);
        let domains = vec![40usize; 3];
        for method in [
            CorrelationMethod::Kendall(SamplingStrategy::Auto),
            CorrelationMethod::Mle(PartitionStrategy::Fixed(80)),
            CorrelationMethod::Spearman,
        ] {
            let mut config = DpCopulaConfig::kendall(Epsilon::new(2.0).unwrap());
            config.method = method;
            let (one, _) = DpCopula::new(config)
                .synthesize_staged(&cols, &domains, 5, &EngineOptions::with_workers(1))
                .unwrap();
            let (two, _) = DpCopula::new(config)
                .synthesize_staged(&cols, &domains, 5, &EngineOptions::with_workers(2))
                .unwrap();
            assert_eq!(one.columns, two.columns, "{method:?}");
        }
    }

    #[test]
    fn staged_single_attribute_short_circuits_correlation() {
        let cols = vec![(0..500u32).map(|i| i % 40).collect::<Vec<_>>()];
        let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));
        let (out, _) = dp
            .synthesize_staged(&cols, &[40], 9, &EngineOptions::default())
            .unwrap();
        assert_eq!(out.correlation, Matrix::identity(1));
        assert_eq!(out.epsilon_correlations, 0.0);
    }

    #[test]
    fn sharded_fit_is_worker_count_invariant() {
        let cols = test_columns(3, 2_400, 48, 21);
        let domains = vec![48usize; 3];
        let mut config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
        config.method = CorrelationMethod::Kendall(SamplingStrategy::Fixed(600));
        let dp = DpCopula::new(config);
        for shards in [2, 4] {
            let mut opts = EngineOptions::with_workers(1);
            opts.shards = shards;
            let (base, _) = dp.synthesize_staged(&cols, &domains, 42, &opts).unwrap();
            for workers in [2, 7] {
                let mut opts = EngineOptions::with_workers(workers);
                opts.shards = shards;
                let (out, _) = dp.synthesize_staged(&cols, &domains, 42, &opts).unwrap();
                assert_eq!(
                    out.columns, base.columns,
                    "shards={shards} workers={workers}"
                );
                assert_eq!(out.correlation, base.correlation);
                assert_eq!(out.noisy_margins, base.noisy_margins);
            }
        }
    }

    #[test]
    fn shard_validation_returns_named_errors() {
        let cols = test_columns(2, 100, 16, 22);
        let domains = vec![16usize; 2];
        let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));

        let opts = EngineOptions::with_shards(0);
        assert_eq!(
            dp.synthesize_staged(&cols, &domains, 1, &opts).unwrap_err(),
            DpCopulaError::ZeroShards
        );

        let opts = EngineOptions::with_shards(101);
        assert_eq!(
            dp.synthesize_staged(&cols, &domains, 1, &opts).unwrap_err(),
            DpCopulaError::TooManyShards {
                shards: 101,
                records: 100
            }
        );

        let opts = EngineOptions::with_shards(2);
        for (method, name) in [
            (CorrelationMethod::Mle(PartitionStrategy::Fixed(10)), "mle"),
            (CorrelationMethod::Spearman, "spearman"),
        ] {
            let mut config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
            config.method = method;
            assert_eq!(
                DpCopula::new(config)
                    .synthesize_staged(&cols, &domains, 1, &opts)
                    .unwrap_err(),
                DpCopulaError::ShardedCorrelationUnsupported { method: name },
                "{method:?}"
            );
        }
    }

    #[test]
    fn single_attribute_fit_accepts_multiple_shards() {
        // Sharding only gates the correlation estimator when there are
        // pairs to estimate; one attribute has none.
        let cols = vec![(0..500u32).map(|i| i % 40).collect::<Vec<_>>()];
        let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));
        let (out, _) = dp
            .synthesize_staged(&cols, &[40], 9, &EngineOptions::with_shards(3))
            .unwrap();
        assert_eq!(out.correlation, Matrix::identity(1));
    }

    #[test]
    fn registry_backed_margins_cover_every_method() {
        let cols = test_columns(2, 1_500, 32, 4);
        for margin in [
            MarginMethod::Efpa,
            MarginMethod::EfpaDct,
            MarginMethod::Identity,
            MarginMethod::Privelet,
            MarginMethod::Php,
            MarginMethod::Hierarchical,
            MarginMethod::NoiseFirst,
            MarginMethod::StructureFirst,
        ] {
            let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()).with_margin(margin);
            let (out, _) = DpCopula::new(config)
                .synthesize_staged(&cols, &[32, 32], 11, &EngineOptions::default())
                .unwrap();
            assert_eq!(out.noisy_margins.len(), 2, "margin {margin:?}");
        }
    }
}
