//! Kendall's tau rank correlation: an O(n log n) implementation (Knight's
//! algorithm), a quadratic reference, the differentially private release
//! of Algorithm 5 (sensitivity `4/(n+1)`, Lemma 4.1), and the
//! record-sampling speed-up of §4.2.

use dpmech::{laplace_noise, Epsilon};
use mathkit::correlation::{clamp_to_correlation, repair_positive_definite};
use mathkit::Matrix;
use rngkit::seq::SliceRandom;
use rngkit::Rng;

/// Sample Kendall's tau (the `tau_a` of Definition 3.5: tied pairs
/// contribute zero) in O(n log n) via Knight's algorithm.
///
/// # Panics
/// Panics when the slices differ in length or have fewer than 2 elements.
pub fn kendall_tau(x: &[u32], y: &[u32]) -> f64 {
    assert_eq!(x.len(), y.len(), "kendall_tau length mismatch");
    let n = x.len();
    assert!(n >= 2, "kendall_tau needs at least 2 observations");

    // Sort lexicographically by (x, y).
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].cmp(&x[b]).then(y[a].cmp(&y[b])));

    // Tied-x pairs and tied-(x,y) pairs from the sorted order.
    let mut t_x: u64 = 0;
    let mut t_xy: u64 = 0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && x[idx[j + 1]] == x[idx[i]] {
                j += 1;
            }
            let g = (j - i + 1) as u64;
            t_x += g * (g - 1) / 2;
            // Sub-groups tied in y as well.
            let mut a = i;
            while a <= j {
                let mut b = a;
                while b < j && y[idx[b + 1]] == y[idx[a]] {
                    b += 1;
                }
                let h = (b - a + 1) as u64;
                t_xy += h * (h - 1) / 2;
                a = b + 1;
            }
            i = j + 1;
        }
    }

    // Discordant pairs = strict inversions of the y sequence.
    let mut ys: Vec<u32> = idx.iter().map(|&i| y[i]).collect();
    let mut buf = vec![0u32; n];
    let n_d = count_inversions(&mut ys, &mut buf);

    // Tied-y pairs from the y values alone.
    let mut sorted_y = y.to_vec();
    sorted_y.sort_unstable();
    let mut t_y: u64 = 0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && sorted_y[j + 1] == sorted_y[i] {
                j += 1;
            }
            let g = (j - i + 1) as u64;
            t_y += g * (g - 1) / 2;
            i = j + 1;
        }
    }

    let total = (n as u64) * (n as u64 - 1) / 2;
    let ties = t_x + t_y - t_xy;
    let n_c = total - n_d - ties;
    (n_c as f64 - n_d as f64) / total as f64
}

/// Counts strict inversions (`a[i] > a[j]` for `i < j`) by merge sort.
fn count_inversions(a: &mut [u32], buf: &mut [u32]) -> u64 {
    let n = a.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = a.split_at_mut(mid);
    let mut inv = count_inversions(left, buf) + count_inversions(right, buf);
    // Merge, counting right-elements that jump over remaining lefts.
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buf[k] = left[i];
            i += 1;
        } else {
            inv += (left.len() - i) as u64;
            buf[k] = right[j];
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    a.copy_from_slice(&buf[..n]);
    inv
}

/// Quadratic reference implementation of Definition 3.5, used as the
/// property-test oracle.
pub fn kendall_tau_naive(x: &[u32], y: &[u32]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    assert!(n >= 2);
    let mut s: i64 = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = i64::from(x[i]) - i64::from(x[j]);
            let dy = i64::from(y[i]) - i64::from(y[j]);
            s += dx.signum() * dy.signum();
        }
    }
    s as f64 / ((n as u64) * (n as u64 - 1) / 2) as f64
}

/// The L1 sensitivity of a pairwise Kendall's tau coefficient,
/// `Delta = 4 / (n + 1)` (Lemma 4.1 of the paper).
pub fn kendall_sensitivity(n: usize) -> f64 {
    4.0 / (n as f64 + 1.0)
}

/// Releases one pairwise Kendall's tau under `epsilon`-DP: the sample
/// coefficient plus `Lap(4 / ((n+1) * epsilon))` (Algorithm 5, step 1).
pub fn dp_kendall_tau<R: Rng + ?Sized>(
    x: &[u32],
    y: &[u32],
    epsilon: Epsilon,
    rng: &mut R,
) -> f64 {
    let tau = kendall_tau(x, y);
    tau + laplace_noise(rng, kendall_sensitivity(x.len()) / epsilon.value())
}

/// The paper's record-sampling rule: computing tau on
/// `n_hat > 50 m (m-1) / eps2 - 1` sampled records keeps the (enlarged)
/// Laplace noise small relative to the coefficient scale while making the
/// runtime independent of `n` (§4.2, "Computation complexity").
pub fn recommended_sample_size(m: usize, eps2_total: f64) -> usize {
    ((50.0 * (m as f64) * (m as f64 - 1.0) / eps2_total) - 1.0).ceil().max(2.0) as usize + 1
}

/// How many records to use when computing each pairwise tau.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Use every record (O(n log n) per pair).
    Full,
    /// Use `min(n, recommended_sample_size(m, eps2))` records — the
    /// paper's default for all experiments.
    Auto,
    /// Use at most this many records.
    Fixed(usize),
}

/// Computes the full DP correlation-matrix estimator of Algorithm 5:
/// noisy pairwise Kendall's tau on (optionally sampled) records, the
/// `sin(pi/2 * tau)` map, and the eigenvalue positive-definite repair.
///
/// `eps2_total` is the budget for *all* coefficients; each pair spends
/// `eps2_total / C(m,2)` (sequential composition across pairs).
pub fn dp_correlation_matrix<R: Rng + ?Sized>(
    columns: &[Vec<u32>],
    eps2_total: Epsilon,
    strategy: SamplingStrategy,
    rng: &mut R,
) -> Matrix {
    let m = columns.len();
    assert!(m >= 1, "need at least one column");
    if m == 1 {
        return Matrix::identity(1);
    }
    let n = columns[0].len();
    let pairs = m * (m - 1) / 2;
    let eps_pair = eps2_total.divide(pairs);

    let sample_target = match strategy {
        SamplingStrategy::Full => n,
        SamplingStrategy::Auto => recommended_sample_size(m, eps2_total.value()).min(n),
        SamplingStrategy::Fixed(k) => k.clamp(2, n),
    };

    // One shared row sample for all pairs (records are sampled once, not
    // per pair, so the per-pair sequential composition still holds on the
    // sampled sub-dataset).
    let rows: Vec<usize> = if sample_target < n {
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(rng);
        all.truncate(sample_target);
        all
    } else {
        (0..n).collect()
    };

    let sampled: Vec<Vec<u32>> = columns
        .iter()
        .map(|col| rows.iter().map(|&r| col[r]).collect())
        .collect();

    let mut p = Matrix::identity(m);
    for i in 0..m {
        for j in (i + 1)..m {
            let tau = dp_kendall_tau(&sampled[i], &sampled[j], eps_pair, rng);
            let r = (std::f64::consts::FRAC_PI_2 * tau).sin();
            p[(i, j)] = r;
            p[(j, i)] = r;
        }
    }
    clamp_to_correlation(&mut p);
    repair_positive_definite(&p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::cholesky::is_positive_definite;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn perfect_concordance_and_discordance() {
        let x: Vec<u32> = (0..50).collect();
        let y = x.clone();
        assert!((kendall_tau(&x, &y) - 1.0).abs() < 1e-12);
        let yr: Vec<u32> = x.iter().rev().cloned().collect();
        assert!((kendall_tau(&x, &yr) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_naive_on_small_cases() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![1, 2, 3, 4, 5], vec![3, 1, 4, 2, 5]),
            (vec![1, 1, 2, 2], vec![1, 2, 1, 2]),
            (vec![5, 5, 5], vec![1, 2, 3]),
            (vec![1, 2], vec![2, 1]),
            (vec![0, 0, 0, 0], vec![0, 0, 0, 0]),
            (vec![9, 1, 9, 1, 5, 5], vec![2, 2, 7, 7, 7, 1]),
        ];
        for (x, y) in cases {
            let fast = kendall_tau(&x, &y);
            let slow = kendall_tau_naive(&x, &y);
            assert!(
                (fast - slow).abs() < 1e-12,
                "x={x:?} y={y:?}: fast {fast} slow {slow}"
            );
        }
    }

    #[test]
    fn matches_naive_on_random_data() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let n = rng.gen_range(2..200);
            let domain = rng.gen_range(2..20u32);
            let x: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let y: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let fast = kendall_tau(&x, &y);
            let slow = kendall_tau_naive(&x, &y);
            assert!((fast - slow).abs() < 1e-12, "n={n}: {fast} vs {slow}");
        }
    }

    #[test]
    fn sensitivity_formula() {
        assert!((kendall_sensitivity(99) - 0.04).abs() < 1e-12);
        assert!(kendall_sensitivity(10_000) < 0.0005);
    }

    #[test]
    fn dp_tau_concentrates_around_truth_for_large_n() {
        let n = 5_000;
        let x: Vec<u32> = (0..n).collect();
        let y = x.clone();
        let mut rng = StdRng::seed_from_u64(2);
        let eps = Epsilon::new(1.0).unwrap();
        let avg: f64 = (0..50)
            .map(|_| dp_kendall_tau(&x, &y, eps, &mut rng))
            .sum::<f64>()
            / 50.0;
        // Noise scale 4/(5001 * 1) = 0.0008.
        assert!((avg - 1.0).abs() < 0.001, "avg {avg}");
    }

    #[test]
    fn recommended_sample_size_follows_rule() {
        // m=8, eps2=1/9 (k=8 split of eps=1): 50*8*7*9 = 25200.
        let s = recommended_sample_size(8, 1.0 / 9.0);
        assert!((25_190..=25_210).contains(&s), "s={s}");
        assert!(recommended_sample_size(2, 10.0) >= 2);
    }

    #[test]
    fn dp_matrix_is_positive_definite_correlation() {
        let mut rng = StdRng::seed_from_u64(3);
        // Strongly correlated 3 columns.
        let base: Vec<u32> = (0..2000).map(|_| rng.gen_range(0..1000)).collect();
        let cols: Vec<Vec<u32>> = (0..3)
            .map(|j| {
                base.iter()
                    .map(|&v| (v + rng.gen_range(0u32..100) + j) % 1000)
                    .collect()
            })
            .collect();
        let p = dp_correlation_matrix(
            &cols,
            Epsilon::new(1.0).unwrap(),
            SamplingStrategy::Full,
            &mut rng,
        );
        assert!(is_positive_definite(&p));
        assert!(mathkit::correlation::is_correlation_shaped(&p, 1e-9));
        // Strong positive dependence should survive.
        assert!(p[(0, 1)] > 0.5, "p01 = {}", p[(0, 1)]);
    }

    #[test]
    fn single_column_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = dp_correlation_matrix(
            &[vec![1u32, 2, 3]],
            Epsilon::new(1.0).unwrap(),
            SamplingStrategy::Full,
            &mut rng,
        );
        assert_eq!(p, Matrix::identity(1));
    }

    #[test]
    fn sampling_strategy_reduces_rows_but_preserves_signal() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let x: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
        let y: Vec<u32> = x.iter().map(|&v| (v / 2) + 1).collect();
        let cols = vec![x, y];
        let p = dp_correlation_matrix(
            &cols,
            Epsilon::new(0.5).unwrap(),
            SamplingStrategy::Auto,
            &mut rng,
        );
        assert!(p[(0, 1)] > 0.8, "p01 = {}", p[(0, 1)]);
    }
}
