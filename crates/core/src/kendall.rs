//! Kendall's tau rank correlation: an O(n log n) implementation (Knight's
//! algorithm), a quadratic reference, the differentially private release
//! of Algorithm 5 (sensitivity `4/(n+1)`, Lemma 4.1), and the
//! record-sampling speed-up of §4.2.

use crate::engine::{STREAM_KENDALL_NOISE, STREAM_KENDALL_SAMPLE};
use crate::error::DpCopulaError;
use dpmech::{laplace_noise, Epsilon};
use mathkit::concord::Concordance;
use mathkit::correlation::{clamp_to_correlation, repair_positive_definite};
use mathkit::Matrix;
use rngkit::seq::SliceRandom;
use rngkit::Rng;

/// Sample Kendall's tau (the `tau_a` of Definition 3.5: tied pairs
/// contribute zero) in O(n log n) via Knight's algorithm.
///
/// # Panics
/// Panics when the slices differ in length or have fewer than 2 elements.
pub fn kendall_tau(x: &[u32], y: &[u32]) -> f64 {
    assert_eq!(x.len(), y.len(), "kendall_tau length mismatch");
    let n = x.len();
    assert!(n >= 2, "kendall_tau needs at least 2 observations");

    // Sort lexicographically by (x, y).
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].cmp(&x[b]).then(y[a].cmp(&y[b])));

    // Tied-x pairs and tied-(x,y) pairs from the sorted order.
    let mut t_x: u64 = 0;
    let mut t_xy: u64 = 0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && x[idx[j + 1]] == x[idx[i]] {
                j += 1;
            }
            let g = (j - i + 1) as u64;
            t_x += g * (g - 1) / 2;
            // Sub-groups tied in y as well.
            let mut a = i;
            while a <= j {
                let mut b = a;
                while b < j && y[idx[b + 1]] == y[idx[a]] {
                    b += 1;
                }
                let h = (b - a + 1) as u64;
                t_xy += h * (h - 1) / 2;
                a = b + 1;
            }
            i = j + 1;
        }
    }

    // Discordant pairs = strict inversions of the y sequence.
    let mut ys: Vec<u32> = idx.iter().map(|&i| y[i]).collect();
    let mut buf = vec![0u32; n];
    let n_d = count_inversions(&mut ys, &mut buf);

    // Tied-y pairs from the y values alone.
    let mut sorted_y = y.to_vec();
    sorted_y.sort_unstable();
    let mut t_y: u64 = 0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && sorted_y[j + 1] == sorted_y[i] {
                j += 1;
            }
            let g = (j - i + 1) as u64;
            t_y += g * (g - 1) / 2;
            i = j + 1;
        }
    }

    let total = (n as u64) * (n as u64 - 1) / 2;
    let ties = t_x + t_y - t_xy;
    let n_c = total - n_d - ties;
    (n_c as f64 - n_d as f64) / total as f64
}

/// Counts strict inversions (`a[i] > a[j]` for `i < j`) by merge sort.
fn count_inversions(a: &mut [u32], buf: &mut [u32]) -> u64 {
    let n = a.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = a.split_at_mut(mid);
    let mut inv = count_inversions(left, buf) + count_inversions(right, buf);
    // Merge, counting right-elements that jump over remaining lefts.
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buf[k] = left[i];
            i += 1;
        } else {
            inv += (left.len() - i) as u64;
            buf[k] = right[j];
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    a.copy_from_slice(&buf[..n]);
    inv
}

/// Quadratic reference implementation of Definition 3.5, used as the
/// property-test oracle.
pub fn kendall_tau_naive(x: &[u32], y: &[u32]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    assert!(n >= 2);
    let mut s: i64 = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = i64::from(x[i]) - i64::from(x[j]);
            let dy = i64::from(y[i]) - i64::from(y[j]);
            s += dx.signum() * dy.signum();
        }
    }
    s as f64 / ((n as u64) * (n as u64 - 1) / 2) as f64
}

/// The L1 sensitivity of a pairwise Kendall's tau coefficient,
/// `Delta = 4 / (n + 1)` (Lemma 4.1 of the paper).
pub fn kendall_sensitivity(n: usize) -> f64 {
    4.0 / (n as f64 + 1.0)
}

/// Releases one pairwise Kendall's tau under `epsilon`-DP: the sample
/// coefficient plus `Lap(4 / ((n+1) * epsilon))` (Algorithm 5, step 1).
pub fn dp_kendall_tau<R: Rng + ?Sized>(x: &[u32], y: &[u32], epsilon: Epsilon, rng: &mut R) -> f64 {
    let tau = kendall_tau(x, y);
    tau + laplace_noise(rng, kendall_sensitivity(x.len()) / epsilon.value())
}

/// The paper's record-sampling rule: computing tau on
/// `n_hat > 50 m (m-1) / eps2 - 1` sampled records keeps the (enlarged)
/// Laplace noise small relative to the coefficient scale while making the
/// runtime independent of `n` (§4.2, "Computation complexity").
///
/// With fewer than two attributes there are no pairs to estimate, so the
/// formula degenerates; the function returns the floor of 2 records (the
/// minimum any tau computation needs) instead of evaluating it.
pub fn recommended_sample_size(m: usize, eps2_total: f64) -> usize {
    if m <= 1 {
        return 2;
    }
    ((50.0 * (m as f64) * (m as f64 - 1.0) / eps2_total) - 1.0)
        .ceil()
        .max(2.0) as usize
        + 1
}

/// Cached per-column rank structure for batched tau computation.
///
/// Computing Kendall's tau for every pair `(i, j)` from scratch re-sorts
/// both columns per pair. This cache does the expensive per-column work
/// once — the stable sort order, the tied-group boundaries in that order,
/// dense tie-ranks, and the tied-pair count — so each of the `C(m,2)`
/// pairs runs sort-free in O(n log d) (d = distinct values).
/// [`kendall_tau_cached`] reproduces [`kendall_tau`] bit-for-bit.
#[derive(Debug, Clone)]
pub struct RankedColumn {
    values: Vec<u32>,
    /// Indices of `values` in ascending value order (stable).
    order: Vec<u32>,
    /// Start offsets of tied runs in `order`, terminated by `n`.
    group_starts: Vec<u32>,
    /// Dense tie-rank per original index: `dense[i] = g` iff `values[i]`
    /// falls in the `g`-th tied run. Compresses the value range to
    /// `0..num_groups` so pair computations can index arrays by rank.
    dense: Vec<u32>,
    /// Number of tied pairs `C(g,2)` summed over tied groups.
    tie_pairs: u64,
}

impl RankedColumn {
    /// Builds the cache, taking ownership of the column values.
    ///
    /// Uses a counting sort when the value range is small relative to the
    /// column length (the common case for categorical attributes),
    /// otherwise a stable comparison sort.
    pub fn new(values: Vec<u32>) -> Self {
        let n = values.len();
        let max = values.iter().copied().max().unwrap_or(0) as usize;
        let order: Vec<u32> = if max < 4 * n.max(16) {
            // Stable counting sort: prefix sums give each value its first
            // slot; scanning indices in order keeps ties in input order.
            let mut starts = vec![0u32; max + 2];
            for &v in &values {
                starts[v as usize + 1] += 1;
            }
            for k in 1..starts.len() {
                starts[k] += starts[k - 1];
            }
            let mut order = vec![0u32; n];
            for (i, &v) in values.iter().enumerate() {
                let slot = &mut starts[v as usize];
                order[*slot as usize] = i as u32;
                *slot += 1;
            }
            order
        } else {
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_by_key(|&i| values[i as usize]);
            order
        };

        let mut group_starts = Vec::new();
        let mut dense = vec![0u32; n];
        let mut tie_pairs = 0u64;
        let mut i = 0usize;
        while i < n {
            group_starts.push(i as u32);
            let v = values[order[i] as usize];
            let mut j = i + 1;
            while j < n && values[order[j] as usize] == v {
                j += 1;
            }
            let rank = (group_starts.len() - 1) as u32;
            for &idx in &order[i..j] {
                dense[idx as usize] = rank;
            }
            let g = (j - i) as u64;
            tie_pairs += g * (g - 1) / 2;
            i = j;
        }
        group_starts.push(n as u32);

        Self {
            values,
            order,
            group_starts,
            dense,
            tie_pairs,
        }
    }

    /// Number of distinct values (tied runs).
    pub fn num_groups(&self) -> usize {
        self.group_starts.len() - 1
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of tied pairs in this column.
    pub fn tie_pairs(&self) -> u64 {
        self.tie_pairs
    }

    /// The raw column values.
    pub fn values(&self) -> &[u32] {
        &self.values
    }
}

/// Kendall's tau from two cached columns — bit-identical to
/// [`kendall_tau`] on the same data, but reusing the per-column rank
/// structure so each pair needs no sorting at all.
///
/// Discordant pairs have `x_a < x_b` and `y_a > y_b`: walking x's tied
/// groups in ascending order while folding earlier groups' dense y ranks
/// into a Fenwick tree counts, for each element, how many smaller-x
/// elements carry a strictly greater y. That integer equals the strict
/// inversion count `kendall_tau` extracts from its merge sort (within-
/// group pairs are tied in x and contribute no inversions there either),
/// so the final division produces the same f64 bit pattern.
///
/// # Panics
/// Panics when the columns differ in length or have fewer than 2 elements.
pub fn kendall_tau_cached(x: &RankedColumn, y: &RankedColumn) -> f64 {
    concordance_cached(x, y).tau()
}

/// The mergeable integer core of [`kendall_tau_cached`]: the
/// [`Concordance`] summary (`s = n_c - n_d`, `pairs = C(n,2)`) of one
/// column pair. The sharded fit computes one summary per shard and folds
/// them with [`mathkit::concord::cross_concordance`] /
/// [`mathkit::concord::merge`] into the exact pooled summary;
/// `Concordance::tau` then reproduces the pooled τ bit-for-bit
/// (both integer operands sit below 2^53, where `f64` is exact).
///
/// # Panics
/// Panics when the columns differ in length or have fewer than 2 elements.
pub fn concordance_cached(x: &RankedColumn, y: &RankedColumn) -> Concordance {
    let n = x.len();
    assert_eq!(n, y.len(), "kendall_tau length mismatch");
    assert!(n >= 2, "kendall_tau needs at least 2 observations");

    let gy = y.num_groups();
    // 1-indexed Fenwick tree over dense y ranks of all smaller-x elements.
    let mut fenwick = vec![0u32; gy + 1];
    let prefix = |f: &[u32], mut k: usize| -> u64 {
        let mut s = 0u64;
        while k > 0 {
            s += u64::from(f[k]);
            k &= k - 1;
        }
        s
    };

    let mut n_d = 0u64;
    let mut t_xy = 0u64;
    let mut seen = 0u64;
    // Scratch tallies per dense y rank within the current x group, with a
    // touched-list reset so each group costs O(group size): summing the
    // running tally before each increment accumulates C(c,2) per tied
    // (x, y) cell, i.e. exactly `kendall_tau`'s t_xy.
    let mut counts = vec![0u32; gy];
    let mut touched: Vec<u32> = Vec::new();
    for w in x.group_starts.windows(2) {
        let (a, b) = (w[0] as usize, w[1] as usize);
        for &idx in &x.order[a..b] {
            let r = y.dense[idx as usize] as usize;
            n_d += seen - prefix(&fenwick, r + 1);
            t_xy += u64::from(counts[r]);
            if counts[r] == 0 {
                touched.push(r as u32);
            }
            counts[r] += 1;
        }
        // The whole group enters the tree only after it is scored, so
        // tied-x pairs never count as discordant.
        for &idx in &x.order[a..b] {
            let mut k = y.dense[idx as usize] as usize + 1;
            while k <= gy {
                fenwick[k] += 1;
                k += k & k.wrapping_neg();
            }
        }
        seen += (b - a) as u64;
        for &r in &touched {
            counts[r as usize] = 0;
        }
        touched.clear();
    }

    let total = (n as u64) * (n as u64 - 1) / 2;
    let ties = x.tie_pairs + y.tie_pairs - t_xy;
    let n_c = total - n_d - ties;
    Concordance {
        s: n_c as i64 - n_d as i64,
        pairs: total,
    }
}

/// How many records to use when computing each pairwise tau.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Use every record (O(n log n) per pair).
    Full,
    /// Use `min(n, recommended_sample_size(m, eps2))` records — the
    /// paper's default for all experiments.
    Auto,
    /// Use at most this many records.
    Fixed(usize),
}

/// Computes the full DP correlation-matrix estimator of Algorithm 5:
/// noisy pairwise Kendall's tau on (optionally sampled) records, the
/// `sin(pi/2 * tau)` map, and the eigenvalue positive-definite repair.
///
/// `eps2_total` is the budget for *all* coefficients; each pair spends
/// `eps2_total / C(m,2)` (sequential composition across pairs).
pub fn dp_correlation_matrix<R: Rng + ?Sized>(
    columns: &[Vec<u32>],
    eps2_total: Epsilon,
    strategy: SamplingStrategy,
    rng: &mut R,
) -> Matrix {
    let m = columns.len();
    assert!(m >= 1, "need at least one column");
    if m == 1 {
        return Matrix::identity(1);
    }
    let n = columns[0].len();
    let pairs = m * (m - 1) / 2;
    let eps_pair = eps2_total.divide(pairs);

    let sample_target = match strategy {
        SamplingStrategy::Full => n,
        SamplingStrategy::Auto => recommended_sample_size(m, eps2_total.value()).min(n),
        SamplingStrategy::Fixed(k) => k.clamp(2, n),
    };

    // One shared row sample for all pairs (records are sampled once, not
    // per pair, so the per-pair sequential composition still holds on the
    // sampled sub-dataset).
    let rows: Vec<usize> = if sample_target < n {
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(rng);
        all.truncate(sample_target);
        all
    } else {
        (0..n).collect()
    };

    let sampled: Vec<Vec<u32>> = columns
        .iter()
        .map(|col| rows.iter().map(|&r| col[r]).collect())
        .collect();

    let mut p = Matrix::identity(m);
    for i in 0..m {
        for j in (i + 1)..m {
            let tau = dp_kendall_tau(&sampled[i], &sampled[j], eps_pair, rng);
            let r = (std::f64::consts::FRAC_PI_2 * tau).sin();
            p[(i, j)] = r;
            p[(j, i)] = r;
        }
    }
    clamp_to_correlation(&mut p);
    repair_positive_definite(&p)
}

/// The staged-engine version of Algorithm 5's estimator: noisy pairwise
/// Kendall's tau computed from cached per-column rank structures
/// ([`RankedColumn`]) and fanned out across `workers` threads, returning
/// the **raw** `sin(pi/2 * tau)` matrix. Clamping and the
/// positive-definite repair are a separate pipeline stage (see
/// [`crate::engine`]), so they are *not* applied here.
///
/// Determinism: the row subsample is drawn from
/// `stream_rng(base_seed, STREAM_KENDALL_SAMPLE, 0)` and pair `k`'s
/// Laplace noise from `stream_rng(base_seed, STREAM_KENDALL_NOISE, k)` —
/// both pure functions of logical indices — so the result is
/// bit-identical at any worker count.
///
/// Observability: fan-outs are recorded under
/// `parkit_*{stage="correlation"}` and per-pair noise draws under
/// `noise_draws_total{stage="correlation"}`; pass
/// [`obskit::MetricsSink::off`] to skip all recording.
pub fn dp_tau_matrix_par(
    columns: &[Vec<u32>],
    eps2_total: Epsilon,
    strategy: SamplingStrategy,
    base_seed: u64,
    workers: usize,
    sink: &obskit::MetricsSink,
) -> Result<Matrix, DpCopulaError> {
    let m = columns.len();
    if m == 0 {
        return Err(DpCopulaError::EmptyInput);
    }
    if m == 1 {
        return Ok(Matrix::identity(1));
    }
    let n = columns[0].len();
    if n < 2 {
        return Err(DpCopulaError::TooFewRecords {
            records: n,
            required: 2,
        });
    }
    let pairs = m * (m - 1) / 2;
    let eps_pair = eps2_total.divide(pairs);

    let sample_target = match strategy {
        SamplingStrategy::Full => n,
        SamplingStrategy::Auto => recommended_sample_size(m, eps2_total.value()).min(n),
        SamplingStrategy::Fixed(k) => k.clamp(2, n),
    };
    let rows: Vec<usize> = if sample_target < n {
        let mut rng = parkit::stream_rng(base_seed, STREAM_KENDALL_SAMPLE, 0);
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(&mut rng);
        all.truncate(sample_target);
        all
    } else {
        (0..n).collect()
    };

    // Per-column rank caches — pure, keyed by attribute index.
    let ranked: Vec<RankedColumn> =
        parkit::par_map_observed(workers, columns, sink, "correlation", |_, col| {
            RankedColumn::new(rows.iter().map(|&r| col[r]).collect())
        });
    let n_s = ranked[0].len();

    let pair_ids: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
        .collect();
    let coeffs = parkit::par_map_observed(workers, &pair_ids, sink, "correlation", |k, &(i, j)| {
        crate::engine::harvest_draws(sink, "correlation", || {
            let tau = kendall_tau_cached(&ranked[i], &ranked[j]);
            let mut rng = parkit::stream_rng(base_seed, STREAM_KENDALL_NOISE, k as u64);
            let noisy = tau + laplace_noise(&mut rng, kendall_sensitivity(n_s) / eps_pair.value());
            (std::f64::consts::FRAC_PI_2 * noisy).sin()
        })
    });

    let mut p = Matrix::identity(m);
    for (&(i, j), &r) in pair_ids.iter().zip(&coeffs) {
        p[(i, j)] = r;
        p[(j, i)] = r;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::cholesky::is_positive_definite;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn perfect_concordance_and_discordance() {
        let x: Vec<u32> = (0..50).collect();
        let y = x.clone();
        assert!((kendall_tau(&x, &y) - 1.0).abs() < 1e-12);
        let yr: Vec<u32> = x.iter().rev().cloned().collect();
        assert!((kendall_tau(&x, &yr) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_naive_on_small_cases() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![1, 2, 3, 4, 5], vec![3, 1, 4, 2, 5]),
            (vec![1, 1, 2, 2], vec![1, 2, 1, 2]),
            (vec![5, 5, 5], vec![1, 2, 3]),
            (vec![1, 2], vec![2, 1]),
            (vec![0, 0, 0, 0], vec![0, 0, 0, 0]),
            (vec![9, 1, 9, 1, 5, 5], vec![2, 2, 7, 7, 7, 1]),
        ];
        for (x, y) in cases {
            let fast = kendall_tau(&x, &y);
            let slow = kendall_tau_naive(&x, &y);
            assert!(
                (fast - slow).abs() < 1e-12,
                "x={x:?} y={y:?}: fast {fast} slow {slow}"
            );
        }
    }

    #[test]
    fn matches_naive_on_random_data() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let n = rng.gen_range(2..200);
            let domain = rng.gen_range(2..20u32);
            let x: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let y: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let fast = kendall_tau(&x, &y);
            let slow = kendall_tau_naive(&x, &y);
            assert!((fast - slow).abs() < 1e-12, "n={n}: {fast} vs {slow}");
        }
    }

    #[test]
    fn sensitivity_formula() {
        assert!((kendall_sensitivity(99) - 0.04).abs() < 1e-12);
        assert!(kendall_sensitivity(10_000) < 0.0005);
    }

    #[test]
    fn dp_tau_concentrates_around_truth_for_large_n() {
        let n = 5_000;
        let x: Vec<u32> = (0..n).collect();
        let y = x.clone();
        let mut rng = StdRng::seed_from_u64(2);
        let eps = Epsilon::new(1.0).unwrap();
        let avg: f64 = (0..50)
            .map(|_| dp_kendall_tau(&x, &y, eps, &mut rng))
            .sum::<f64>()
            / 50.0;
        // Noise scale 4/(5001 * 1) = 0.0008.
        assert!((avg - 1.0).abs() < 0.001, "avg {avg}");
    }

    #[test]
    fn recommended_sample_size_follows_rule() {
        // m=8, eps2=1/9 (k=8 split of eps=1): 50*8*7*9 = 25200.
        let s = recommended_sample_size(8, 1.0 / 9.0);
        assert!((25_190..=25_210).contains(&s), "s={s}");
        assert!(recommended_sample_size(2, 10.0) >= 2);
    }

    #[test]
    fn dp_matrix_is_positive_definite_correlation() {
        let mut rng = StdRng::seed_from_u64(3);
        // Strongly correlated 3 columns.
        let base: Vec<u32> = (0..2000).map(|_| rng.gen_range(0..1000)).collect();
        let cols: Vec<Vec<u32>> = (0..3)
            .map(|j| {
                base.iter()
                    .map(|&v| (v + rng.gen_range(0u32..100) + j) % 1000)
                    .collect()
            })
            .collect();
        let p = dp_correlation_matrix(
            &cols,
            Epsilon::new(1.0).unwrap(),
            SamplingStrategy::Full,
            &mut rng,
        );
        assert!(is_positive_definite(&p));
        assert!(mathkit::correlation::is_correlation_shaped(&p, 1e-9));
        // Strong positive dependence should survive.
        assert!(p[(0, 1)] > 0.5, "p01 = {}", p[(0, 1)]);
    }

    #[test]
    fn single_column_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = dp_correlation_matrix(
            &[vec![1u32, 2, 3]],
            Epsilon::new(1.0).unwrap(),
            SamplingStrategy::Full,
            &mut rng,
        );
        assert_eq!(p, Matrix::identity(1));
    }

    #[test]
    fn cached_tau_matches_plain_implementation_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let n = rng.gen_range(2..300);
            // Mix small domains (counting sort, heavy ties) and large ones
            // (comparison sort, few ties).
            let domain = if rng.gen_range(0..2) == 0 {
                rng.gen_range(2..8u32)
            } else {
                rng.gen_range(1_000..1_000_000u32)
            };
            let x: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let y: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let plain = kendall_tau(&x, &y);
            let rx = RankedColumn::new(x);
            let ry = RankedColumn::new(y);
            let cached = kendall_tau_cached(&rx, &ry);
            assert_eq!(plain.to_bits(), cached.to_bits(), "n={n} domain={domain}");
        }
    }

    #[test]
    fn ranked_column_counts_ties() {
        let r = RankedColumn::new(vec![3, 1, 3, 3, 1]);
        // Groups {1,1} and {3,3,3}: C(2,2) + C(3,2) = 1 + 3.
        assert_eq!(r.tie_pairs(), 4);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
    }

    #[test]
    fn recommended_sample_size_guards_degenerate_arity() {
        assert_eq!(recommended_sample_size(0, 1.0), 2);
        assert_eq!(recommended_sample_size(1, 1.0), 2);
    }

    #[test]
    fn par_tau_matrix_is_worker_count_invariant() {
        let mut rng = StdRng::seed_from_u64(12);
        let cols: Vec<Vec<u32>> = (0..4)
            .map(|_| (0..800).map(|_| rng.gen_range(0..50u32)).collect())
            .collect();
        let eps = Epsilon::new(1.0).unwrap();
        let base = dp_tau_matrix_par(
            &cols,
            eps,
            SamplingStrategy::Fixed(300),
            99,
            1,
            &obskit::MetricsSink::off(),
        )
        .unwrap();
        for workers in [2, 7] {
            let p = dp_tau_matrix_par(
                &cols,
                eps,
                SamplingStrategy::Fixed(300),
                99,
                workers,
                &obskit::MetricsSink::off(),
            )
            .unwrap();
            assert_eq!(p, base, "workers={workers}");
        }
        // Different seed, different matrix.
        let other = dp_tau_matrix_par(
            &cols,
            eps,
            SamplingStrategy::Fixed(300),
            100,
            1,
            &obskit::MetricsSink::off(),
        )
        .unwrap();
        assert_ne!(other, base);
    }

    #[test]
    fn par_tau_matrix_rejects_degenerate_inputs() {
        let eps = Epsilon::new(1.0).unwrap();
        assert_eq!(
            dp_tau_matrix_par(
                &[],
                eps,
                SamplingStrategy::Full,
                1,
                1,
                &obskit::MetricsSink::off()
            )
            .unwrap_err(),
            DpCopulaError::EmptyInput
        );
        let one_record = vec![vec![1u32], vec![2u32]];
        assert!(matches!(
            dp_tau_matrix_par(
                &one_record,
                eps,
                SamplingStrategy::Full,
                1,
                1,
                &obskit::MetricsSink::off()
            )
            .unwrap_err(),
            DpCopulaError::TooFewRecords { .. }
        ));
        let single = dp_tau_matrix_par(
            &[vec![1u32, 2, 3]],
            eps,
            SamplingStrategy::Full,
            1,
            4,
            &obskit::MetricsSink::off(),
        )
        .unwrap();
        assert_eq!(single, Matrix::identity(1));
    }

    #[test]
    fn sampling_strategy_reduces_rows_but_preserves_signal() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let x: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
        let y: Vec<u32> = x.iter().map(|&v| (v / 2) + 1).collect();
        let cols = vec![x, y];
        let p = dp_correlation_matrix(
            &cols,
            Epsilon::new(0.5).unwrap(),
            SamplingStrategy::Auto,
            &mut rng,
        );
        assert!(p[(0, 1)] > 0.8, "p01 = {}", p[(0, 1)]);
    }
}
