//! The Gaussian copula density (Definition 3.4, Equation 1) and its
//! log-likelihood — the objective of DPCopula-MLE.

use mathkit::cholesky::{log_det_spd, solve_spd, CholeskyError};
use mathkit::special::norm_quantile;
use mathkit::Matrix;

/// A Gaussian copula with a fixed (positive-definite) correlation matrix.
#[derive(Debug, Clone)]
pub struct GaussianCopula {
    p: Matrix,
    p_inv: Matrix,
    log_det: f64,
}

impl GaussianCopula {
    /// Builds the copula; fails if `p` is not symmetric positive definite.
    pub fn new(p: Matrix) -> Result<Self, CholeskyError> {
        let log_det = log_det_spd(&p)?;
        let m = p.rows();
        // Invert column by column through the Cholesky solver.
        let mut p_inv = Matrix::zeros(m, m);
        let mut e = vec![0.0; m];
        for j in 0..m {
            e[j] = 1.0;
            let col = solve_spd(&p, &e)?;
            for i in 0..m {
                p_inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(Self { p, p_inv, log_det })
    }

    /// Dimension `m`.
    pub fn dim(&self) -> usize {
        self.p.rows()
    }

    /// The correlation matrix.
    pub fn correlation(&self) -> &Matrix {
        &self.p
    }

    /// Log-density of the copula at `u` in `(0,1)^m` (Equation 1):
    /// `log c(u) = -1/2 log|P| - 1/2 z^T (P^{-1} - I) z` with
    /// `z = Phi^{-1}(u)`.
    pub fn log_density(&self, u: &[f64]) -> f64 {
        assert_eq!(u.len(), self.dim(), "dimension mismatch");
        let z: Vec<f64> = u.iter().map(|&ui| norm_quantile(ui)).collect();
        self.log_density_scores(&z)
    }

    /// Log-density given pre-computed normal scores `z = Phi^{-1}(u)`.
    pub fn log_density_scores(&self, z: &[f64]) -> f64 {
        assert_eq!(z.len(), self.dim(), "dimension mismatch");
        let mut quad = 0.0;
        for i in 0..z.len() {
            for j in 0..z.len() {
                let pij = self.p_inv[(i, j)] - if i == j { 1.0 } else { 0.0 };
                quad += z[i] * pij * z[j];
            }
        }
        -0.5 * self.log_det - 0.5 * quad
    }

    /// Density (exponentiated log-density).
    pub fn density(&self, u: &[f64]) -> f64 {
        self.log_density(u).exp()
    }
}

/// Pairwise Gaussian-copula log-likelihood for normal scores `(a, b)` at
/// correlation `rho` — the 2-D specialisation used by the per-partition
/// MLE of Algorithm 2.
pub fn pairwise_log_likelihood(a: &[f64], b: &[f64], rho: f64) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let r2 = rho * rho;
    let s_ab: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let s2: f64 = a.iter().zip(b).map(|(x, y)| x * x + y * y).sum();
    -0.5 * n * (1.0 - r2).ln() - (r2 * s2 - 2.0 * rho * s_ab) / (2.0 * (1.0 - r2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::correlation::equicorrelation;

    #[test]
    fn independence_copula_density_is_one() {
        let c = GaussianCopula::new(Matrix::identity(3)).unwrap();
        for u in [[0.5, 0.5, 0.5], [0.1, 0.7, 0.9], [0.25, 0.5, 0.75]] {
            assert!((c.density(&u) - 1.0).abs() < 1e-10, "u={u:?}");
        }
    }

    #[test]
    fn positive_dependence_concentrates_on_diagonal() {
        let c = GaussianCopula::new(equicorrelation(2, 0.8)).unwrap();
        // Density along the diagonal exceeds density at anti-diagonal.
        assert!(c.density(&[0.8, 0.8]) > c.density(&[0.8, 0.2]));
        assert!(c.density(&[0.1, 0.1]) > c.density(&[0.1, 0.9]));
    }

    #[test]
    fn rejects_indefinite_correlation() {
        assert!(GaussianCopula::new(equicorrelation(3, -0.9)).is_err());
    }

    #[test]
    fn bivariate_matches_closed_form() {
        // For the 2-D case the density is
        // 1/sqrt(1-r^2) * exp(-(r^2(a^2+b^2) - 2rab)/(2(1-r^2))).
        let r = 0.6_f64;
        let c = GaussianCopula::new(equicorrelation(2, r)).unwrap();
        let u = [0.3, 0.7];
        let a = norm_quantile(u[0]);
        let b = norm_quantile(u[1]);
        let expect = (1.0 - r * r).powf(-0.5)
            * (-(r * r * (a * a + b * b) - 2.0 * r * a * b) / (2.0 * (1.0 - r * r))).exp();
        assert!((c.density(&u) - expect).abs() < 1e-10);
    }

    #[test]
    fn pairwise_likelihood_peaks_near_true_correlation() {
        // Synthetic scores with known correlation 0.5.
        use mathkit::dist::MultivariateNormal;
        use rngkit::rngs::StdRng;
        use rngkit::SeedableRng;
        let mvn = MultivariateNormal::new(&equicorrelation(2, 0.5)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cols = mvn.sample_columns(&mut rng, 5_000);
        let mut best = (-2.0, f64::NEG_INFINITY);
        let mut r = -0.95;
        while r < 0.96 {
            let ll = pairwise_log_likelihood(&cols[0], &cols[1], r);
            if ll > best.1 {
                best = (r, ll);
            }
            r += 0.05;
        }
        assert!((best.0 - 0.5).abs() < 0.1, "argmax {}", best.0);
    }
}
