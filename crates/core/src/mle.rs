//! DPCopula-MLE (Algorithms 1–2): differentially private maximum
//! likelihood estimation of the Gaussian-copula correlation matrix by
//! subsample-and-aggregate (Dwork & Smith 2009).
//!
//! The data is split into `l` disjoint blocks; each block computes every
//! pairwise MLE on its own pseudo-copula data; the per-pair averages are
//! released with Laplace noise `Lap(C(m,2) * Lambda / (l * eps2))`,
//! `Lambda = 2` being the diameter of a correlation coefficient. One
//! record lives in exactly one block, so it moves each average by at most
//! `Lambda / l` — which is exactly what the noise is calibrated to.

use crate::empirical::pseudo_copula_column;
use crate::engine::STREAM_MLE_NOISE;
use crate::error::DpCopulaError;
use dpmech::{laplace_noise, Epsilon};
use mathkit::correlation::{clamp_to_correlation, repair_positive_definite};
use mathkit::special::norm_quantile;
use mathkit::stats::pearson;
use mathkit::Matrix;
use rngkit::Rng;

/// Diameter of the correlation-coefficient parameter space `[-1, 1]`.
pub const COEFFICIENT_DIAMETER: f64 = 2.0;

/// The paper's partition-count requirement:
/// `l > C(m,2) / (0.025 * eps2)` so the aggregate noise stays below
/// 0.025 of the coefficient scale.
pub fn required_partitions(m: usize, eps2_total: f64) -> usize {
    let pairs = (m * (m - 1) / 2) as f64;
    (pairs / (0.025 * eps2_total)).ceil() as usize + 1
}

/// Maximum-likelihood estimate of the bivariate Gaussian-copula
/// correlation from normal scores, by Newton iteration on the score
/// equation (the derivative of the pairwise log-likelihood), which reduces
/// to the cubic `-n r^3 + S_ab r^2 + (n - S2) r + S_ab = 0`.
pub fn pairwise_mle(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must match");
    let n = a.len() as f64;
    assert!(n >= 2.0, "need at least two observations");
    let s_ab: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let s2: f64 = a.iter().zip(b).map(|(x, y)| x * x + y * y).sum();

    let f = |r: f64| -n * r * r * r + s_ab * r * r + (n - s2) * r + s_ab;
    let fp = |r: f64| -3.0 * n * r * r + 2.0 * s_ab * r + (n - s2);

    // Start from the Pearson correlation of the scores (a consistent
    // estimator) and polish with Newton, falling back to bisection
    // whenever Newton leaves (-1, 1).
    let mut r = pearson(a, b).clamp(-0.99, 0.99);
    for _ in 0..50 {
        let d = fp(r);
        if d.abs() < 1e-12 {
            break;
        }
        let step = f(r) / d;
        let next = r - step;
        if !(-0.999_999..=0.999_999).contains(&next) {
            // Bisection fallback against the sign of f at the boundary.
            let lo = -0.999_999;
            let hi = 0.999_999;
            r = bisect_root(&f, lo, hi).unwrap_or(r);
            break;
        }
        if (next - r).abs() < 1e-14 {
            r = next;
            break;
        }
        r = next;
    }
    r.clamp(-1.0, 1.0)
}

fn bisect_root(f: &dyn Fn(f64) -> f64, mut lo: f64, mut hi: f64) -> Option<f64> {
    let (flo, fhi) = (f(lo), f(hi));
    if flo == 0.0 {
        return Some(lo);
    }
    if fhi == 0.0 {
        return Some(hi);
    }
    if flo.signum() == fhi.signum() {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 || (hi - lo) < 1e-14 {
            return Some(mid);
        }
        if fm.signum() == flo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// How many blocks to use for subsample-and-aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// The paper's rule: `required_partitions(m, eps2)`; errors when the
    /// dataset is too small to give every block at least
    /// [`MIN_BLOCK_SIZE`] records.
    Auto,
    /// An explicit block count (privacy holds for any `l >= 1`; small `l`
    /// just means proportionally larger noise).
    Fixed(usize),
}

/// Minimum records per block for the rank transform to be meaningful.
pub const MIN_BLOCK_SIZE: usize = 4;

/// Computes the DP correlation-matrix estimator of Algorithm 2.
///
/// `eps2_total` is the budget for all `C(m,2)` coefficients together.
pub fn dp_correlation_matrix_mle<R: Rng + ?Sized>(
    columns: &[Vec<u32>],
    eps2_total: Epsilon,
    strategy: PartitionStrategy,
    rng: &mut R,
) -> Result<Matrix, DpCopulaError> {
    let m = columns.len();
    if m == 0 {
        return Err(DpCopulaError::EmptyInput);
    }
    if m == 1 {
        return Ok(Matrix::identity(1));
    }
    let n = columns[0].len();
    let pairs = m * (m - 1) / 2;

    let l = match strategy {
        PartitionStrategy::Auto => {
            let req = required_partitions(m, eps2_total.value());
            if req * MIN_BLOCK_SIZE > n {
                return Err(DpCopulaError::InsufficientDataForMle {
                    required_partitions: req,
                    records: n,
                });
            }
            req
        }
        PartitionStrategy::Fixed(l) => l.max(1),
    };
    let block = n / l;
    if block < MIN_BLOCK_SIZE {
        return Err(DpCopulaError::InsufficientDataForMle {
            required_partitions: l,
            records: n,
        });
    }

    // Per-pair sums of block estimates.
    let mut sums = vec![0.0; pairs];
    let mut scores: Vec<Vec<f64>> = vec![Vec::with_capacity(block); m];
    for t in 0..l {
        let lo = t * block;
        let hi = lo + block; // the remainder tail (< block) is dropped
        for (j, col) in columns.iter().enumerate() {
            // Pseudo-copula transform *within the block* so each block's
            // estimate depends only on its own records.
            let u = pseudo_copula_column(&col[lo..hi]);
            scores[j] = u.iter().map(|&ui| norm_quantile(ui)).collect();
        }
        let mut k = 0;
        for i in 0..m {
            for j in (i + 1)..m {
                sums[k] += pairwise_mle(&scores[i], &scores[j]);
                k += 1;
            }
        }
    }

    // Average + Laplace noise per coefficient.
    let noise_scale = (pairs as f64) * COEFFICIENT_DIAMETER / ((l as f64) * eps2_total.value());
    let mut p = Matrix::identity(m);
    let mut k = 0;
    for i in 0..m {
        for j in (i + 1)..m {
            let avg = sums[k] / l as f64;
            let noisy = avg + laplace_noise(rng, noise_scale);
            p[(i, j)] = noisy;
            p[(j, i)] = noisy;
            k += 1;
        }
    }
    clamp_to_correlation(&mut p);
    Ok(repair_positive_definite(&p))
}

/// The staged-engine version of Algorithm 2: block MLEs fanned out
/// across `workers` threads (one task per block — pure, no randomness),
/// summed in block order so the floating-point reduction is fixed, then
/// released with per-pair Laplace noise from index-keyed streams.
/// Returns the **raw** noisy matrix; clamping and the positive-definite
/// repair are a separate pipeline stage (see [`crate::engine`]).
///
/// Bit-identical at any worker count: block results are keyed by block
/// id, pair `k`'s noise comes from
/// `stream_rng(base_seed, STREAM_MLE_NOISE, k)`.
///
/// Observability: the block fan-out is recorded under
/// `parkit_*{stage="correlation"}` and the release-time noise draws
/// under `noise_draws_total{stage="correlation"}`; pass
/// [`obskit::MetricsSink::off`] to skip all recording.
pub fn dp_mle_matrix_par(
    columns: &[Vec<u32>],
    eps2_total: Epsilon,
    strategy: PartitionStrategy,
    base_seed: u64,
    workers: usize,
    sink: &obskit::MetricsSink,
) -> Result<Matrix, DpCopulaError> {
    let m = columns.len();
    if m == 0 {
        return Err(DpCopulaError::EmptyInput);
    }
    if m == 1 {
        return Ok(Matrix::identity(1));
    }
    let n = columns[0].len();
    let pairs = m * (m - 1) / 2;

    let l = match strategy {
        PartitionStrategy::Auto => {
            let req = required_partitions(m, eps2_total.value());
            if req * MIN_BLOCK_SIZE > n {
                return Err(DpCopulaError::InsufficientDataForMle {
                    required_partitions: req,
                    records: n,
                });
            }
            req
        }
        PartitionStrategy::Fixed(l) => l.max(1),
    };
    let block = n / l;
    if block < MIN_BLOCK_SIZE {
        return Err(DpCopulaError::InsufficientDataForMle {
            required_partitions: l,
            records: n,
        });
    }

    // One pure task per block: its per-pair MLE vector.
    let block_ids: Vec<usize> = (0..l).collect();
    let per_block: Vec<Vec<f64>> =
        parkit::par_map_observed(workers, &block_ids, sink, "correlation", |_, &t| {
            let lo = t * block;
            let hi = lo + block; // the remainder tail (< block) is dropped
            let scores: Vec<Vec<f64>> = columns
                .iter()
                .map(|col| {
                    pseudo_copula_column(&col[lo..hi])
                        .iter()
                        .map(|&u| norm_quantile(u))
                        .collect()
                })
                .collect();
            let mut v = Vec::with_capacity(pairs);
            for i in 0..m {
                for j in (i + 1)..m {
                    v.push(pairwise_mle(&scores[i], &scores[j]));
                }
            }
            v
        });

    // Fixed-order reduction: summing blocks 0..l keeps the f64 result
    // independent of which worker computed which block.
    let mut sums = vec![0.0; pairs];
    for v in &per_block {
        for (s, &x) in sums.iter_mut().zip(v) {
            *s += x;
        }
    }

    let noise_scale = (pairs as f64) * COEFFICIENT_DIAMETER / ((l as f64) * eps2_total.value());
    let p = crate::engine::harvest_draws(sink, "correlation", || {
        let mut p = Matrix::identity(m);
        let mut k = 0;
        for i in 0..m {
            for j in (i + 1)..m {
                let mut rng = parkit::stream_rng(base_seed, STREAM_MLE_NOISE, k as u64);
                let noisy = sums[k] / l as f64 + laplace_noise(&mut rng, noise_scale);
                p[(i, j)] = noisy;
                p[(j, i)] = noisy;
                k += 1;
            }
        }
        p
    });
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::cholesky::is_positive_definite;
    use mathkit::correlation::equicorrelation;
    use mathkit::dist::MultivariateNormal;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    fn correlated_columns(rho: f64, m: usize, n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mvn = MultivariateNormal::new(&equicorrelation(m, rho)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mvn.sample_columns(&mut rng, n)
            .into_iter()
            .map(|col| {
                col.into_iter()
                    .map(|z| ((z + 5.0).max(0.0) * 100.0).min(999.0) as u32)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pairwise_mle_recovers_known_correlation() {
        let mvn = MultivariateNormal::new(&equicorrelation(2, 0.6)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cols = mvn.sample_columns(&mut rng, 10_000);
        let r = pairwise_mle(&cols[0], &cols[1]);
        assert!((r - 0.6).abs() < 0.03, "mle {r}");
    }

    #[test]
    fn pairwise_mle_handles_extremes() {
        let a: Vec<f64> = (0..100).map(|i| f64::from(i) / 10.0 - 5.0).collect();
        // Perfectly correlated scores.
        let r = pairwise_mle(&a, &a);
        assert!(r > 0.99, "r {r}");
        let neg: Vec<f64> = a.iter().map(|v| -v).collect();
        let r2 = pairwise_mle(&a, &neg);
        assert!(r2 < -0.99, "r2 {r2}");
    }

    #[test]
    fn required_partitions_rule() {
        // m=8, eps2 = 1/9: C(8,2)=28; 28/(0.025/9) = 10080.
        let req = required_partitions(8, 1.0 / 9.0);
        assert!((10_080..=10_082).contains(&req), "req {req}");
    }

    #[test]
    fn auto_errors_on_small_data() {
        let cols = correlated_columns(0.5, 4, 500, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let err = dp_correlation_matrix_mle(
            &cols,
            Epsilon::new(0.1).unwrap(),
            PartitionStrategy::Auto,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, DpCopulaError::InsufficientDataForMle { .. }));
    }

    #[test]
    fn fixed_partitions_recover_correlation() {
        let cols = correlated_columns(0.7, 3, 30_000, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let p = dp_correlation_matrix_mle(
            &cols,
            Epsilon::new(5.0).unwrap(),
            PartitionStrategy::Fixed(100),
            &mut rng,
        )
        .unwrap();
        assert!(is_positive_definite(&p));
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!((p[(i, j)] - 0.7).abs() < 0.15, "p[{i}{j}] = {}", p[(i, j)]);
            }
        }
    }

    #[test]
    fn par_mle_matrix_is_worker_count_invariant() {
        let cols = correlated_columns(0.6, 3, 6_000, 7);
        let eps = Epsilon::new(2.0).unwrap();
        let base = dp_mle_matrix_par(
            &cols,
            eps,
            PartitionStrategy::Fixed(50),
            31,
            1,
            &obskit::MetricsSink::off(),
        )
        .unwrap();
        for workers in [2, 7] {
            let p = dp_mle_matrix_par(
                &cols,
                eps,
                PartitionStrategy::Fixed(50),
                31,
                workers,
                &obskit::MetricsSink::off(),
            )
            .unwrap();
            assert_eq!(p, base, "workers={workers}");
        }
        // The raw release still carries the signal.
        assert!(base[(0, 1)] > 0.3, "p01 {}", base[(0, 1)]);
    }

    #[test]
    fn par_mle_matrix_rejects_degenerate_inputs() {
        let eps = Epsilon::new(1.0).unwrap();
        assert_eq!(
            dp_mle_matrix_par(
                &[],
                eps,
                PartitionStrategy::Auto,
                1,
                1,
                &obskit::MetricsSink::off()
            )
            .unwrap_err(),
            DpCopulaError::EmptyInput
        );
        let tiny = vec![vec![1u32, 2, 3], vec![3u32, 2, 1]];
        assert!(matches!(
            dp_mle_matrix_par(
                &tiny,
                eps,
                PartitionStrategy::Fixed(1),
                1,
                1,
                &obskit::MetricsSink::off()
            )
            .unwrap_err(),
            DpCopulaError::InsufficientDataForMle { .. }
        ));
    }

    #[test]
    fn single_column_is_identity() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = dp_correlation_matrix_mle(
            &[vec![1u32, 2, 3, 4]],
            Epsilon::new(1.0).unwrap(),
            PartitionStrategy::Auto,
            &mut rng,
        )
        .unwrap();
        assert_eq!(p, Matrix::identity(1));
    }

    #[test]
    fn more_partitions_mean_less_noise() {
        // With everything else fixed, the noise scale is C(m,2)*2/(l*eps).
        let m = 3;
        let pairs = 3.0;
        let eps = 0.5;
        let scale_small_l = pairs * 2.0 / (10.0 * eps);
        let scale_big_l = pairs * 2.0 / (1000.0 * eps);
        assert!(scale_big_l < scale_small_l / 50.0);
        let _ = m;
    }
}
