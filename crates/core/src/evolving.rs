//! Synthesization for dynamically evolving datasets — the paper's second
//! future-work item ("developing data synthesization mechanisms for
//! dynamically evolving datasets").
//!
//! The model: data arrives in **epochs** (disjoint batches of records —
//! e.g. one day of new registrations each). Each epoch is a disjoint
//! sub-dataset, so by parallel composition (Theorem 3.2) running DPCopula
//! on each epoch with budget `epsilon` costs only `epsilon` overall with
//! respect to any single record, which belongs to exactly one epoch.
//!
//! [`EvolvingSynthesizer`] additionally smooths the correlation estimate
//! across epochs with an exponential moving average — released matrices
//! are post-processing, so the smoothing is free — which suppresses the
//! per-epoch Kendall noise for slowly drifting dependence.

use crate::error::DpCopulaError;
use crate::synthesizer::{DpCopula, DpCopulaConfig, Synthesis};
use mathkit::correlation::repair_positive_definite;
use mathkit::Matrix;
use rngkit::Rng;

/// Per-epoch DPCopula with cross-epoch correlation smoothing.
#[derive(Debug, Clone)]
pub struct EvolvingSynthesizer {
    config: DpCopulaConfig,
    /// EMA factor in `(0, 1]`: weight of the *new* epoch's matrix.
    /// 1.0 disables smoothing.
    alpha: f64,
    smoothed: Option<Matrix>,
    epochs: usize,
}

impl EvolvingSynthesizer {
    /// Creates the synthesizer. `alpha` is the EMA weight of each new
    /// epoch's correlation matrix.
    ///
    /// # Panics
    /// Panics unless `alpha` is in `(0, 1]`.
    pub fn new(config: DpCopulaConfig, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            config,
            alpha,
            smoothed: None,
            epochs: 0,
        }
    }

    /// Number of epochs processed so far.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// The current smoothed correlation matrix, if any epoch has been
    /// processed.
    pub fn correlation(&self) -> Option<&Matrix> {
        self.smoothed.as_ref()
    }

    /// Processes one epoch: runs DPCopula on the epoch's (disjoint)
    /// records with the full per-epoch budget, folds the released
    /// correlation matrix into the EMA, and re-samples the epoch's
    /// synthetic records from the smoothed matrix.
    ///
    /// Privacy: each record appears in exactly one epoch, and the EMA is
    /// post-processing on released matrices, so the whole stream satisfies
    /// `epsilon`-DP with the per-epoch `epsilon` (Theorem 3.2).
    pub fn process_epoch<R: Rng + ?Sized>(
        &mut self,
        columns: &[Vec<u32>],
        domains: &[usize],
        rng: &mut R,
    ) -> Result<Synthesis, DpCopulaError> {
        let mut release = DpCopula::new(self.config).synthesize(columns, domains, rng)?;

        // Fold the epoch's matrix into the moving average.
        let updated = match self.smoothed.take() {
            None => release.correlation.clone(),
            Some(prev) => {
                let m = prev.rows();
                let mut blended = Matrix::zeros(m, m);
                for i in 0..m {
                    for j in 0..m {
                        blended[(i, j)] = self.alpha * release.correlation[(i, j)]
                            + (1.0 - self.alpha) * prev[(i, j)];
                    }
                }
                // Convex combinations of PD correlation matrices are PD,
                // but repair defensively against rounding.
                repair_positive_definite(&blended)
            }
        };
        self.smoothed = Some(updated.clone());
        self.epochs += 1;

        // Resample this epoch's synthetic rows from the smoothed matrix
        // (post-processing: margins stay the epoch's own DP margins).
        let margins: Vec<crate::empirical::MarginalDistribution> = release
            .noisy_margins
            .iter()
            .map(|m| crate::empirical::MarginalDistribution::from_noisy_histogram(m))
            .collect();
        let sampler = crate::sampler::CopulaSampler::new(&updated, margins)
            .expect("repaired matrix is positive definite");
        let n_out = release.columns[0].len();
        release.columns = sampler.sample_columns(n_out, rng);
        release.correlation = updated;
        Ok(release)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpmech::Epsilon;
    use mathkit::correlation::equicorrelation;
    use mathkit::dist::MultivariateNormal;
    use mathkit::special::norm_cdf;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    fn epoch(rho: f64, n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mvn = MultivariateNormal::new(&equicorrelation(2, rho)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mvn.sample_columns(&mut rng, n)
            .into_iter()
            .map(|col| {
                col.into_iter()
                    .map(|z| ((norm_cdf(z) * 100.0) as u32).min(99))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn processes_a_stream_of_epochs() {
        let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
        let mut ev = EvolvingSynthesizer::new(config, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for s in 0..4 {
            let cols = epoch(0.6, 2_000, s);
            let out = ev.process_epoch(&cols, &[100, 100], &mut rng).unwrap();
            assert_eq!(out.columns[0].len(), 2_000);
        }
        assert_eq!(ev.epochs(), 4);
        let p = ev.correlation().unwrap();
        assert!(p[(0, 1)] > 0.3, "smoothed correlation {}", p[(0, 1)]);
    }

    #[test]
    fn smoothing_reduces_correlation_variance() {
        // With a stationary stream, the smoothed estimate across epochs
        // should wander less than the raw per-epoch estimates.
        let config = DpCopulaConfig::kendall(Epsilon::new(0.4).unwrap());
        let truth = 0.5_f64;
        let mut raw_devs = Vec::new();
        let mut smooth_devs = Vec::new();
        let mut ev = EvolvingSynthesizer::new(config, 0.3);
        let mut rng = StdRng::seed_from_u64(3);
        for s in 0..8 {
            let cols = epoch(truth, 1_500, 100 + s);
            // Raw per-epoch estimate.
            let raw = DpCopula::new(config)
                .synthesize(&cols, &[100, 100], &mut rng)
                .unwrap();
            raw_devs.push((raw.correlation[(0, 1)] - truth).abs());
            // Smoothed stream.
            let out = ev.process_epoch(&cols, &[100, 100], &mut rng).unwrap();
            smooth_devs.push((out.correlation[(0, 1)] - truth).abs());
        }
        // Skip the burn-in epoch and compare mean deviations.
        let raw_mean: f64 = raw_devs[2..].iter().sum::<f64>() / (raw_devs.len() - 2) as f64;
        let smooth_mean: f64 =
            smooth_devs[2..].iter().sum::<f64>() / (smooth_devs.len() - 2) as f64;
        assert!(
            smooth_mean <= raw_mean * 1.1,
            "smoothed {smooth_mean} should not exceed raw {raw_mean}"
        );
    }

    #[test]
    fn tracks_drifting_dependence() {
        // Dependence drifts from 0.2 to 0.8; the EMA should follow.
        let config = DpCopulaConfig::kendall(Epsilon::new(2.0).unwrap());
        let mut ev = EvolvingSynthesizer::new(config, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut last = 0.0;
        for (s, rho) in [0.2, 0.4, 0.6, 0.8].iter().enumerate() {
            let cols = epoch(*rho, 3_000, 200 + s as u64);
            let out = ev.process_epoch(&cols, &[100, 100], &mut rng).unwrap();
            last = out.correlation[(0, 1)];
        }
        assert!(last > 0.55, "final smoothed correlation {last}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
        let _ = EvolvingSynthesizer::new(config, 0.0);
    }
}
