//! Convergence diagnostics for Theorem 4.3: as the cardinality `n` grows,
//! the DP synthetic data's margins and dependence converge to the
//! original's.
//!
//! These functions quantify the distance between an original and a
//! synthetic dataset so the integration tests (and users) can verify the
//! convergence property empirically.

use crate::kendall::kendall_tau;
use mathkit::stats::ks_statistic;
use mathkit::Matrix;

/// Kolmogorov–Smirnov distance between the two datasets' margins
/// (one value per dimension).
///
/// # Panics
/// Panics when the datasets disagree on dimensionality or are empty.
pub fn marginal_ks_distances(original: &[Vec<u32>], synthetic: &[Vec<u32>]) -> Vec<f64> {
    assert_eq!(
        original.len(),
        synthetic.len(),
        "dimensionality mismatch between datasets"
    );
    original
        .iter()
        .zip(synthetic)
        .map(|(o, s)| {
            let of: Vec<f64> = o.iter().map(|&v| f64::from(v)).collect();
            let sf: Vec<f64> = s.iter().map(|&v| f64::from(v)).collect();
            ks_statistic(&of, &sf)
        })
        .collect()
}

/// The pairwise Kendall's-tau matrices of both datasets and their maximum
/// absolute entry-wise difference — a direct measure of how well the
/// dependence structure survived (the `C_t -> C_0` part of Theorem 4.3).
pub fn dependence_distance(original: &[Vec<u32>], synthetic: &[Vec<u32>]) -> f64 {
    assert_eq!(original.len(), synthetic.len(), "dimensionality mismatch");
    let m = original.len();
    let mut worst: f64 = 0.0;
    for i in 0..m {
        for j in (i + 1)..m {
            let t_o = kendall_tau(&original[i], &original[j]);
            let t_s = kendall_tau(&synthetic[i], &synthetic[j]);
            worst = worst.max((t_o - t_s).abs());
        }
    }
    worst
}

/// Empirical Kendall's-tau matrix of a dataset (diagonal 1).
pub fn kendall_matrix(columns: &[Vec<u32>]) -> Matrix {
    let m = columns.len();
    let mut t = Matrix::identity(m);
    for i in 0..m {
        for j in (i + 1)..m {
            let tau = kendall_tau(&columns[i], &columns[j]);
            t[(i, j)] = tau;
            t[(j, i)] = tau;
        }
    }
    t
}

/// A compact convergence report comparing original and synthetic data.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// Per-dimension KS distances of the margins.
    pub marginal_ks: Vec<f64>,
    /// Maximum |tau_original - tau_synthetic| over attribute pairs.
    pub max_tau_gap: f64,
}

impl ConvergenceReport {
    /// Computes the report.
    pub fn compare(original: &[Vec<u32>], synthetic: &[Vec<u32>]) -> Self {
        Self {
            marginal_ks: marginal_ks_distances(original, synthetic),
            max_tau_gap: dependence_distance(original, synthetic),
        }
    }

    /// The worst marginal KS distance.
    pub fn max_marginal_ks(&self) -> f64 {
        self.marginal_ks.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_datasets_have_zero_distances() {
        let cols = vec![vec![1u32, 2, 3, 4, 5], vec![5u32, 4, 3, 2, 1]];
        let r = ConvergenceReport::compare(&cols, &cols);
        assert_eq!(r.max_marginal_ks(), 0.0);
        assert_eq!(r.max_tau_gap, 0.0);
    }

    #[test]
    fn shifted_margin_is_detected() {
        let a = vec![vec![0u32; 100]];
        let b = vec![vec![50u32; 100]];
        let ks = marginal_ks_distances(&a, &b);
        assert_eq!(ks, vec![1.0]);
    }

    #[test]
    fn reversed_dependence_is_detected() {
        let x: Vec<u32> = (0..100).collect();
        let orig = vec![x.clone(), x.clone()];
        let synth = vec![x.clone(), x.iter().rev().cloned().collect()];
        // tau flips from +1 to -1.
        assert!((dependence_distance(&orig, &synth) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_matrix_shape() {
        let cols = vec![
            (0..50u32).collect::<Vec<_>>(),
            (0..50u32).map(|i| 49 - i).collect::<Vec<_>>(),
            (0..50u32).map(|i| i / 2).collect::<Vec<_>>(),
        ];
        let t = kendall_matrix(&cols);
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(0, 0)], 1.0);
        assert!((t[(0, 1)] + 1.0).abs() < 1e-12);
        assert!(t[(0, 2)] > 0.9);
        assert_eq!(t[(1, 2)], t[(2, 1)]);
    }
}
