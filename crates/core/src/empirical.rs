//! Empirical marginal distributions: the probability-integral transform
//! (Equations 2–3 of the paper) and the *inverse* DP marginal CDF used by
//! the sampling step (Algorithm 3, step 2).

use mathkit::stats::ranks;

/// Pseudo-copula transform of one data column (Equations 2–3):
/// `u_i = rank(x_i) / (n + 1)`, mid-ranks for ties, so every `u_i` lies
/// strictly inside `(0, 1)`.
pub fn pseudo_copula_column(values: &[u32]) -> Vec<f64> {
    let as_f64: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
    let n = values.len() as f64;
    ranks(&as_f64).iter().map(|r| r / (n + 1.0)).collect()
}

/// A (possibly noisy) discrete marginal distribution over `0..domain`,
/// built from histogram counts. Negative noisy counts are clamped to zero
/// and the result renormalised — the only post-processing DPCopula needs
/// (free, as it does not touch the data again).
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalDistribution {
    /// Non-decreasing CDF; `cdf[k] = P(X <= k)`, last entry 1.
    cdf: Vec<f64>,
}

impl MarginalDistribution {
    /// Builds the distribution from (noisy) histogram counts.
    ///
    /// If every count is non-positive the distribution falls back to
    /// uniform — the least-informative valid margin.
    ///
    /// # Panics
    /// Panics on an empty histogram.
    pub fn from_noisy_histogram(counts: &[f64]) -> Self {
        assert!(!counts.is_empty(), "empty histogram");
        let clamped: Vec<f64> = counts.iter().map(|&c| c.max(0.0)).collect();
        let total: f64 = clamped.iter().sum();
        let mut cdf = Vec::with_capacity(clamped.len());
        if total <= 0.0 {
            // Uniform fallback.
            let p = 1.0 / clamped.len() as f64;
            let mut acc = 0.0;
            for _ in &clamped {
                acc += p;
                cdf.push(acc);
            }
        } else {
            let mut acc = 0.0;
            for &c in &clamped {
                acc += c / total;
                cdf.push(acc);
            }
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// `P(X <= k)`; 1 beyond the domain.
    pub fn cdf(&self, k: u32) -> f64 {
        let k = k as usize;
        if k >= self.cdf.len() {
            1.0
        } else {
            self.cdf[k]
        }
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u32) -> f64 {
        let k = k as usize;
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Inverse CDF: the smallest `k` with `cdf(k) >= u` — the
    /// `F~^{-1}(T~)` of Algorithm 3 step 2.
    pub fn quantile(&self, u: f64) -> u32 {
        let u = u.clamp(0.0, 1.0);
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as u32
    }
}

/// Precomputed inverse-CDF lookup table for the fast sampling profile:
/// maps a standard-normal draw `z` straight to the margin's category,
/// fusing Algorithm 3 steps 2 (`t = Φ(z)`) and 3 (`x = F̃⁻¹(t)`) into
/// one table walk with **no** per-row Φ evaluation.
///
/// Construction: `zcut[k] = Φ⁻¹(cdf[k])` is the z-space threshold below
/// which the sampled category is `<= k`; since Φ is strictly increasing,
/// `smallest k with cdf[k] >= Φ(z)` equals `smallest k with
/// zcut[k] >= z`. A uniform guide grid over `z ∈ [±GUIDE_Z_MAX]` gives
/// the starting index for the (monotone) forward scan, so lookups are
/// O(1) for any realistic z.
///
/// Exactness: for every z with `Φ(z)` computable (|z| ≲ 38, far beyond
/// any double-precision normal draw), the result matches
/// `margin.quantile(norm_cdf(z))` except on the measure-zero set where
/// `Φ(z)` ties a CDF step within one floating-point ulp.
#[derive(Debug, Clone)]
pub struct QuantileTable {
    /// `zcut[k] = Φ⁻¹(cdf[k])`; non-decreasing, last entry forced `+∞`.
    zcut: Vec<f64>,
    /// `guide[g]` = smallest `k` with `zcut[k] >= edge(g)`.
    guide: Vec<u32>,
    z_lo: f64,
    inv_step: f64,
}

/// Guide-grid half-width. Draws beyond |z| = 4.5 (probability ≈ 7e-6
/// per draw) clamp into the first/last slot and still resolve correctly
/// via the forward scan — keeping the grid narrow spends its resolution
/// where the standard-normal mass actually lands, so the scan almost
/// always terminates on its first comparison.
const GUIDE_Z_MAX: f64 = 4.5;

impl QuantileTable {
    /// Builds the z-space lookup table for `margin`.
    pub fn new(margin: &MarginalDistribution) -> Self {
        // Guard against cumulative-sum round-up: an intermediate cdf
        // entry one ulp above 1.0 would send Φ⁻¹ to NaN.
        let cdf: Vec<f64> = margin.cdf.iter().map(|c| c.min(1.0)).collect();
        let mut zcut = vec![0.0; cdf.len()];
        mathkit::batch::norm_quantile_slice(&cdf, &mut zcut);
        // cdf ends at exactly 1.0 so the last cut is already +∞; force it
        // anyway so the scan in `quantile_z` always terminates.
        *zcut.last_mut().expect("non-empty margin") = f64::INFINITY;

        let slots = (margin.cdf.len() * 2).clamp(64, 8192);
        let z_lo = -GUIDE_Z_MAX;
        let step = 2.0 * GUIDE_Z_MAX / slots as f64;
        let mut guide = Vec::with_capacity(slots);
        let mut k = 0usize;
        for g in 0..slots {
            // Slot g covers z >= edge(g); slot 0's edge is effectively
            // -∞ (every z below z_lo clamps into it), so its guide entry
            // must stay 0.
            let edge = if g == 0 {
                f64::NEG_INFINITY
            } else {
                z_lo + g as f64 * step
            };
            while zcut[k] < edge {
                k += 1;
            }
            guide.push(k as u32);
        }
        Self {
            zcut,
            guide,
            z_lo,
            inv_step: 1.0 / step,
        }
    }

    /// The category for a standard-normal draw `z`: the smallest `k`
    /// with `Φ(z) <= cdf[k]`. NaN maps to category 0 (matching
    /// `quantile(norm_cdf(NaN).clamp(0,1))`'s behaviour of clamping).
    #[inline]
    pub fn quantile_z(&self, z: f64) -> u32 {
        if z.is_nan() {
            return 0;
        }
        let slot = ((z - self.z_lo) * self.inv_step) as isize;
        let slot = slot.clamp(0, self.guide.len() as isize - 1) as usize;
        let mut k = self.guide[slot] as usize;
        // zcut's last entry is +∞, so this scan always terminates.
        while self.zcut[k] < z {
            k += 1;
        }
        k as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_copula_is_rank_over_n_plus_1() {
        let u = pseudo_copula_column(&[30, 10, 20]);
        assert_eq!(u, vec![3.0 / 4.0, 1.0 / 4.0, 2.0 / 4.0]);
    }

    #[test]
    fn pseudo_copula_ties_get_midranks() {
        let u = pseudo_copula_column(&[5, 5, 9]);
        assert_eq!(u, vec![1.5 / 4.0, 1.5 / 4.0, 3.0 / 4.0]);
    }

    #[test]
    fn pseudo_copula_stays_in_open_unit_interval() {
        let values: Vec<u32> = (0..1000).collect();
        let u = pseudo_copula_column(&values);
        assert!(u.iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn marginal_from_clean_histogram() {
        let m = MarginalDistribution::from_noisy_histogram(&[1.0, 3.0, 0.0, 4.0]);
        assert!((m.cdf(0) - 0.125).abs() < 1e-12);
        assert!((m.cdf(1) - 0.5).abs() < 1e-12);
        assert!((m.cdf(2) - 0.5).abs() < 1e-12);
        assert_eq!(m.cdf(3), 1.0);
        assert_eq!(m.cdf(99), 1.0);
        assert!((m.pmf(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_counts_are_clamped() {
        let m = MarginalDistribution::from_noisy_histogram(&[-5.0, 2.0, 2.0]);
        assert_eq!(m.pmf(0), 0.0);
        assert!((m.pmf(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_negative_falls_back_to_uniform() {
        let m = MarginalDistribution::from_noisy_histogram(&[-1.0, -2.0, -3.0, -4.0]);
        for k in 0..4 {
            assert!((m.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_is_generalised_inverse() {
        let m = MarginalDistribution::from_noisy_histogram(&[1.0, 0.0, 1.0, 2.0]);
        assert_eq!(m.quantile(0.0), 0);
        assert_eq!(m.quantile(0.25), 0);
        assert_eq!(m.quantile(0.26), 2);
        assert_eq!(m.quantile(0.5), 2);
        assert_eq!(m.quantile(0.51), 3);
        assert_eq!(m.quantile(1.0), 3);
        // Galois connection: cdf(quantile(u)) >= u.
        for i in 0..=100 {
            let u = f64::from(i) / 100.0;
            assert!(m.cdf(m.quantile(u)) >= u - 1e-12);
        }
    }

    #[test]
    fn quantile_skips_zero_mass_bins() {
        let m = MarginalDistribution::from_noisy_histogram(&[0.0, 0.0, 5.0]);
        assert_eq!(m.quantile(0.001), 2);
        assert_eq!(m.quantile(0.999), 2);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn empty_histogram_panics() {
        let _ = MarginalDistribution::from_noisy_histogram(&[]);
    }

    #[test]
    fn quantile_table_matches_exact_inversion_on_z_sweep() {
        let margins = [
            MarginalDistribution::from_noisy_histogram(&[1.0, 3.0, 0.0, 4.0]),
            MarginalDistribution::from_noisy_histogram(&[0.0, 0.0, 5.0]),
            MarginalDistribution::from_noisy_histogram(&[-1.0, -2.0, -3.0]),
            MarginalDistribution::from_noisy_histogram(&[2.0]),
            MarginalDistribution::from_noisy_histogram(
                &(0..1000).map(f64::from).collect::<Vec<_>>(),
            ),
        ];
        for m in &margins {
            let table = QuantileTable::new(m);
            let mut z = -10.0;
            while z <= 10.0 {
                let fast = table.quantile_z(z);
                let exact = m.quantile(mathkit::special::norm_cdf(z));
                assert_eq!(fast, exact, "domain {} z {z}", m.domain());
                z += 0.00173;
            }
            // Extremes resolve to the first/last massive category.
            assert_eq!(table.quantile_z(f64::NEG_INFINITY), m.quantile(0.0));
            assert_eq!(table.quantile_z(f64::INFINITY), m.quantile(1.0));
            assert_eq!(table.quantile_z(f64::NAN), 0);
        }
    }

    #[test]
    fn quantile_table_is_monotone_in_z() {
        let m = MarginalDistribution::from_noisy_histogram(&[1.0, 0.5, 0.0, 2.0, 0.25]);
        let table = QuantileTable::new(&m);
        let mut prev = table.quantile_z(-9.0);
        let mut z = -9.0;
        while z <= 9.0 {
            let k = table.quantile_z(z);
            assert!(k >= prev, "z {z}: {k} < {prev}");
            prev = k;
            z += 0.01;
        }
    }
}
