//! The Student-t copula — the paper's first future-work item ("we plan to
//! ... employ other copula families").
//!
//! A t copula adds *tail dependence* that the Gaussian copula cannot
//! express: extreme values co-occur with positive probability even for
//! moderate correlations. It is parameterised by a correlation matrix `P`
//! and degrees of freedom `nu`; as `nu -> inf` it converges to the
//! Gaussian copula.
//!
//! DP estimation reuses the machinery of Algorithm 5 unchanged for `P`:
//! the identity `rho = sin(pi/2 * tau)` holds for **every** elliptical
//! copula, so the noisy-Kendall estimator and its privacy proof carry
//! over verbatim. The degrees of freedom are selected from a candidate
//! grid by subsample-and-aggregate pseudo-likelihood (each disjoint block
//! votes for its maximising `nu`; the histogram of votes is released
//! through the Laplace mechanism — parallel composition across blocks,
//! sensitivity 1 per bin).
//!
//! Sampling follows the classic construction: `x = z / sqrt(w / nu)` with
//! `z ~ N(0, P)` and `w ~ chi^2(nu)`, then `u_j = T_nu(x_j)` and the
//! inverse DP margins as in Algorithm 3.

use crate::empirical::{pseudo_copula_column, MarginalDistribution};
use crate::error::DpCopulaError;
use dpmech::{laplace_noise, Epsilon};
use mathkit::cholesky::{log_det_spd, solve_spd, CholeskyError};
use mathkit::dist::{Continuous, Gamma, MultivariateNormal, StudentT};
use mathkit::special::ln_gamma;
use mathkit::Matrix;
use rngkit::Rng;

/// A Student-t copula with correlation matrix `P` and `nu` degrees of
/// freedom.
#[derive(Debug, Clone)]
pub struct TCopula {
    p: Matrix,
    p_inv: Matrix,
    log_det: f64,
    nu: f64,
}

impl TCopula {
    /// Builds the copula; fails when `P` is not positive definite.
    ///
    /// # Panics
    /// Panics when `nu` is not finite and positive.
    pub fn new(p: Matrix, nu: f64) -> Result<Self, CholeskyError> {
        assert!(
            nu.is_finite() && nu > 0.0,
            "degrees of freedom must be positive"
        );
        let log_det = log_det_spd(&p)?;
        let m = p.rows();
        let mut p_inv = Matrix::zeros(m, m);
        let mut e = vec![0.0; m];
        for j in 0..m {
            e[j] = 1.0;
            let col = solve_spd(&p, &e)?;
            for i in 0..m {
                p_inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(Self {
            p,
            p_inv,
            log_det,
            nu,
        })
    }

    /// Dimension `m`.
    pub fn dim(&self) -> usize {
        self.p.rows()
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.nu
    }

    /// The correlation matrix.
    pub fn correlation(&self) -> &Matrix {
        &self.p
    }

    /// Log-density of the t copula at `u` in `(0,1)^m`:
    ///
    /// `log c(u) = log f_{P,nu}(x) - sum_j log f_nu(x_j)` with
    /// `x_j = T_nu^{-1}(u_j)`, `f_{P,nu}` the multivariate-t density and
    /// `f_nu` the univariate one.
    pub fn log_density(&self, u: &[f64]) -> f64 {
        assert_eq!(u.len(), self.dim(), "dimension mismatch");
        let t = StudentT::new(self.nu).expect("validated df");
        let x: Vec<f64> = u.iter().map(|&ui| t.quantile(ui)).collect();
        self.log_density_scores(&x)
    }

    /// Log-density given the t scores `x = T_nu^{-1}(u)`.
    pub fn log_density_scores(&self, x: &[f64]) -> f64 {
        let m = self.dim() as f64;
        let nu = self.nu;
        // Multivariate t log-density (up to the margin terms).
        let mut quad = 0.0;
        for i in 0..x.len() {
            for j in 0..x.len() {
                quad += x[i] * self.p_inv[(i, j)] * x[j];
            }
        }
        let lg = |v: f64| ln_gamma(v);
        let joint = lg((nu + m) / 2.0)
            - lg(nu / 2.0)
            - 0.5 * self.log_det
            - m / 2.0 * (nu * std::f64::consts::PI).ln()
            - (nu + m) / 2.0 * (1.0 + quad / nu).ln();
        let marginals: f64 = x
            .iter()
            .map(|&xi| {
                lg((nu + 1.0) / 2.0)
                    - lg(nu / 2.0)
                    - 0.5 * (nu * std::f64::consts::PI).ln()
                    - (nu + 1.0) / 2.0 * (1.0 + xi * xi / nu).ln()
            })
            .sum();
        joint - marginals
    }

    /// Density (exponentiated log-density).
    pub fn density(&self, u: &[f64]) -> f64 {
        self.log_density(u).exp()
    }
}

/// Samples synthetic records from a t copula plus DP margins — the
/// t-copula analogue of Algorithm 3.
#[derive(Debug, Clone)]
pub struct TCopulaSampler {
    mvn: MultivariateNormal,
    chi2: Gamma,
    nu: f64,
    t: StudentT,
    margins: Vec<MarginalDistribution>,
}

impl TCopulaSampler {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics on a margin-count mismatch or non-positive `nu`.
    pub fn new(
        p: &Matrix,
        nu: f64,
        margins: Vec<MarginalDistribution>,
    ) -> Result<Self, CholeskyError> {
        assert_eq!(p.rows(), margins.len(), "one margin per dimension");
        assert!(
            nu.is_finite() && nu > 0.0,
            "degrees of freedom must be positive"
        );
        Ok(Self {
            mvn: MultivariateNormal::new(p)?,
            chi2: Gamma::new(nu / 2.0, 2.0).expect("valid chi^2 parameters"),
            nu,
            t: StudentT::new(nu).expect("validated df"),
            margins,
        })
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.margins.len()
    }

    /// Draws one synthetic record into `out`.
    ///
    /// # Panics
    /// Panics when `out.len() != self.dims()`.
    pub fn sample_record<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [u32]) {
        assert_eq!(out.len(), self.dims(), "output buffer size mismatch");
        let mut z = vec![0.0; self.dims()];
        self.mvn.sample_into(rng, &mut z);
        let w = self.chi2.sample(rng).max(1e-12);
        let scale = (self.nu / w).sqrt();
        for (j, margin) in self.margins.iter().enumerate() {
            let u = self.t.cdf(z[j] * scale);
            out[j] = margin.quantile(u);
        }
    }

    /// Draws `n` records, column-major.
    pub fn sample_columns<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Vec<u32>> {
        let d = self.dims();
        let mut cols = vec![vec![0u32; n]; d];
        let mut buf = vec![0u32; d];
        for row in 0..n {
            self.sample_record(rng, &mut buf);
            for (j, col) in cols.iter_mut().enumerate() {
                col[row] = buf[j];
            }
        }
        cols
    }
}

/// Differentially private selection of the degrees of freedom from a
/// candidate grid by subsample-and-aggregate voting.
///
/// Each of `l` disjoint blocks computes its pseudo-copula scores and votes
/// for the candidate `nu` maximising the block's t-copula pseudo
/// log-likelihood (with the block's own sample correlation — computed on
/// block data only). The vote histogram is released with `Lap(1/eps)`
/// per bin (one record changes one block's single vote: histogram
/// sensitivity is 2, we calibrate to 2), and the arg-max candidate wins.
pub fn dp_select_degrees_of_freedom<R: Rng + ?Sized>(
    columns: &[Vec<u32>],
    candidates: &[f64],
    partitions: usize,
    epsilon: Epsilon,
    rng: &mut R,
) -> Result<f64, DpCopulaError> {
    assert!(!candidates.is_empty(), "need candidate degrees of freedom");
    assert!(
        candidates.iter().all(|&v| v.is_finite() && v > 0.0),
        "candidates must be positive"
    );
    let m = columns.len();
    if m < 2 {
        // Degrees of freedom are irrelevant without dependence.
        return Ok(*candidates.last().expect("non-empty"));
    }
    let n = columns[0].len();
    let l = partitions.max(1);
    let block = n / l;
    if block < 8 {
        return Err(DpCopulaError::InsufficientDataForMle {
            required_partitions: l,
            records: n,
        });
    }

    let mut votes = vec![0.0; candidates.len()];
    let mut u_cols: Vec<Vec<f64>> = vec![Vec::new(); m];
    for t in 0..l {
        let lo = t * block;
        let hi = lo + block;
        for (j, col) in columns.iter().enumerate() {
            u_cols[j] = pseudo_copula_column(&col[lo..hi]);
        }
        // Block correlation from normal scores (cheap, block-local).
        let scores: Vec<Vec<f64>> = u_cols
            .iter()
            .map(|u| {
                u.iter()
                    .map(|&v| mathkit::special::norm_quantile(v))
                    .collect()
            })
            .collect();
        let mut p = Matrix::identity(m);
        for i in 0..m {
            for j in (i + 1)..m {
                let r = mathkit::stats::pearson(&scores[i], &scores[j]).clamp(-0.95, 0.95);
                p[(i, j)] = r;
                p[(j, i)] = r;
            }
        }
        let p = mathkit::correlation::repair_positive_definite(&p);

        let mut best = (0usize, f64::NEG_INFINITY);
        for (ci, &nu) in candidates.iter().enumerate() {
            let copula = TCopula::new(p.clone(), nu)?;
            let tdist = StudentT::new(nu).expect("positive df");
            let mut ll = 0.0;
            for row in 0..block {
                let x: Vec<f64> = u_cols.iter().map(|u| tdist.quantile(u[row])).collect();
                ll += copula.log_density_scores(&x);
            }
            if ll > best.1 {
                best = (ci, ll);
            }
        }
        votes[best.0] += 1.0;
    }

    // One record flips at most one block's vote: +-1 in two bins.
    let noisy: Vec<f64> = votes
        .iter()
        .map(|&v| v + laplace_noise(rng, 2.0 / epsilon.value()))
        .collect();
    let winner = noisy
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite votes"))
        .map(|(i, _)| i)
        .expect("non-empty candidates");
    Ok(candidates[winner])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendall::kendall_tau;
    use mathkit::correlation::equicorrelation;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    fn uniform_margin(domain: usize) -> MarginalDistribution {
        MarginalDistribution::from_noisy_histogram(&vec![1.0; domain])
    }

    #[test]
    fn independence_copula_density_is_one_at_large_nu() {
        // As nu grows the t copula approaches the Gaussian; with P = I
        // the density tends to 1.
        let c = TCopula::new(Matrix::identity(2), 1e6).unwrap();
        for u in [[0.5, 0.5], [0.2, 0.7], [0.9, 0.1]] {
            assert!(
                (c.density(&u) - 1.0).abs() < 0.01,
                "u={u:?} d={}",
                c.density(&u)
            );
        }
    }

    #[test]
    fn t_copula_has_heavier_joint_tails_than_gaussian() {
        use crate::gaussian::GaussianCopula;
        let p = equicorrelation(2, 0.5);
        let t = TCopula::new(p.clone(), 3.0).unwrap();
        let g = GaussianCopula::new(p).unwrap();
        // Joint extreme corner: the t copula puts more density there.
        let corner = [0.001, 0.001];
        assert!(
            t.density(&corner) > g.density(&corner),
            "t {} vs gaussian {}",
            t.density(&corner),
            g.density(&corner)
        );
    }

    #[test]
    fn sampling_respects_domains_and_dependence() {
        let p = equicorrelation(2, 0.7);
        let s =
            TCopulaSampler::new(&p, 5.0, vec![uniform_margin(300), uniform_margin(300)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cols = s.sample_columns(8_000, &mut rng);
        assert!(cols.iter().flatten().all(|&v| v < 300));
        // Elliptical copulas share tau = 2/pi asin(rho).
        let tau = kendall_tau(&cols[0], &cols[1]);
        let expect = 2.0 / std::f64::consts::PI * 0.7_f64.asin();
        assert!((tau - expect).abs() < 0.04, "tau {tau} vs {expect}");
    }

    #[test]
    fn sampler_rejects_indefinite_matrix() {
        let p = equicorrelation(3, -0.9);
        let margins = vec![uniform_margin(4); 3];
        assert!(TCopulaSampler::new(&p, 4.0, margins).is_err());
    }

    #[test]
    fn df_selection_prefers_small_nu_for_t_data() {
        // Data from a t copula with nu = 3 should vote for small nu.
        let p = equicorrelation(2, 0.6);
        let margins = vec![uniform_margin(500), uniform_margin(500)];
        let gen = TCopulaSampler::new(&p, 3.0, margins).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let cols = gen.sample_columns(12_000, &mut rng);
        let nu = dp_select_degrees_of_freedom(
            &cols,
            &[3.0, 10.0, 1e5],
            60,
            Epsilon::new(5.0).unwrap(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(nu, 3.0, "selected nu {nu}");
    }

    #[test]
    fn df_selection_prefers_large_nu_for_gaussian_data() {
        use crate::sampler::CopulaSampler;
        let p = equicorrelation(2, 0.6);
        let margins = vec![uniform_margin(500), uniform_margin(500)];
        let gen = CopulaSampler::new(&p, margins).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let cols = gen.sample_columns(12_000, &mut rng);
        let nu = dp_select_degrees_of_freedom(
            &cols,
            &[3.0, 1e5],
            60,
            Epsilon::new(5.0).unwrap(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(nu, 1e5, "selected nu {nu}");
    }

    #[test]
    fn df_selection_errors_on_tiny_blocks() {
        let cols = vec![vec![1u32, 2, 3], vec![3u32, 2, 1]];
        let mut rng = StdRng::seed_from_u64(4);
        let err = dp_select_degrees_of_freedom(
            &cols,
            &[3.0, 10.0],
            10,
            Epsilon::new(1.0).unwrap(),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, DpCopulaError::InsufficientDataForMle { .. }));
    }
}
