//! [`SynthesisRequest`] — the single front door to the DPCopula
//! pipeline.
//!
//! The workspace grew four entry points (`DpCopula::synthesize`,
//! `synthesize_staged`, `fit_staged`, `selection::synthesize_adaptive`),
//! each with its own parameter list, and adding the metrics sink to all
//! of them would have doubled that surface again. A `SynthesisRequest`
//! gathers everything one run needs — data and schema, the ε budget and
//! its `k` split, the correlation estimator, the margin method, worker
//! count, base seed, and the metrics sink — behind one builder, and
//! finishes with:
//!
//! * [`SynthesisRequest::run`] — the full five-stage pipeline, returning
//!   the usual `(Synthesis, PipelineReport)`;
//! * [`SynthesisRequest::fit`] — stages 1–4 only, returning a durable
//!   `(FittedModel, PipelineReport)` for fit-once/sample-many serving;
//! * [`SynthesisRequest::run_adaptive`] — DP copula-family selection
//!   (§3.2's AIC remark) followed by the pipeline with the winner.
//!
//! The legacy entry points delegate here (or share the same internal
//! path), so for equal inputs the request API releases **byte-identical**
//! output — switching call styles never changes a published synthesis.
//! See `DESIGN.md` §10 for the migration path and deprecation policy.
//!
//! ## Streaming input
//!
//! A request's input is either borrowed resident columns (the original
//! surface, via [`SynthesisRequest::new`] / `from_config`) or a streaming
//! [`RowSource`] (via [`SynthesisRequest::from_source`] or the
//! [`SynthesisRequest::input`] setter) — the out-of-core path, whose
//! resident fit state under the Kendall estimator is bounded by the
//! source's block size rather than its row count (`DESIGN.md` §14). Both
//! release byte-identical values for equal data; the eager constructors
//! are *soft-deprecated* in favour of the source surface, staying exactly
//! as they are (same bytes, pinned) but receiving no new capabilities.

use crate::engine::{EngineOptions, PipelineReport};
use crate::error::DpCopulaError;
use crate::model::FittedModel;
use crate::sampler::SamplingProfile;
use crate::selection::{synthesize_adaptive, AdaptiveConfig, AdaptiveSynthesis};
use crate::synthesizer::{CorrelationMethod, DpCopula, DpCopulaConfig, MarginMethod, Synthesis};
use datagen::RowSource;
use dpmech::Epsilon;
use obskit::MetricsSink;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use std::cell::RefCell;

/// The data a request runs against: resident columns (eager, borrowed)
/// or a streaming [`RowSource`] (owned for the request's lifetime; in a
/// `RefCell` because reading advances the source while the finishers
/// take `&self`).
enum RequestInput<'d> {
    Columns {
        columns: &'d [Vec<u32>],
        domains: &'d [usize],
    },
    Source(RefCell<Box<dyn RowSource + 'd>>),
}

impl std::fmt::Debug for RequestInput<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestInput::Columns { columns, domains } => f
                .debug_struct("Columns")
                .field("columns", &columns.len())
                .field("domains", domains)
                .finish(),
            RequestInput::Source(source) => match source.try_borrow() {
                Ok(s) => f
                    .debug_struct("Source")
                    .field("attributes", &s.attributes().len())
                    .field("rewindable", &s.rewindable())
                    .finish(),
                Err(_) => f.write_str("Source(<in use>)"),
            },
        }
    }
}

/// A fully-described synthesis run: data, schema, privacy budget,
/// estimator choices, execution knobs, seed, and metrics sink.
///
/// The input is either borrowed resident columns (the pipeline never
/// mutates them) or an owned streaming [`RowSource`]; everything else is
/// owned. The builder methods are by-value-chainable and each has a
/// sensible default, so the minimal request is just data + schema + ε.
#[derive(Debug)]
pub struct SynthesisRequest<'d> {
    input: RequestInput<'d>,
    config: DpCopulaConfig,
    opts: EngineOptions,
    base_seed: u64,
    sink: MetricsSink,
}

impl<'d> SynthesisRequest<'d> {
    /// A request with the paper's default configuration
    /// ([`DpCopulaConfig::kendall`]: EFPA margins, Kendall estimator,
    /// `k = 8`), default engine options, base seed 0, and metrics off.
    ///
    /// *Soft-deprecated:* prefer [`SynthesisRequest::from_source`] (e.g.
    /// over a [`datagen::DatasetSource`] for resident data), which adds
    /// schema names and out-of-core fitting to the same run. This eager
    /// surface stays byte-identical to what it always released.
    pub fn new(columns: &'d [Vec<u32>], domains: &'d [usize], epsilon: Epsilon) -> Self {
        Self::from_config(columns, domains, DpCopulaConfig::kendall(epsilon))
    }

    /// A request around an existing [`DpCopulaConfig`].
    ///
    /// *Soft-deprecated:* prefer [`SynthesisRequest::from_source_config`]
    /// — see [`SynthesisRequest::new`].
    pub fn from_config(
        columns: &'d [Vec<u32>],
        domains: &'d [usize],
        config: DpCopulaConfig,
    ) -> Self {
        Self {
            input: RequestInput::Columns { columns, domains },
            config,
            opts: EngineOptions::default(),
            base_seed: 0,
            sink: MetricsSink::off(),
        }
    }

    /// A request reading from a streaming [`RowSource`] with the paper's
    /// default configuration — the out-of-core front door. The source's
    /// schema (names + domains) replaces the separate `domains` slice,
    /// and fitted artifacts carry its attribute names.
    pub fn from_source(source: impl RowSource + 'd, epsilon: Epsilon) -> Self {
        Self::from_source_config(source, DpCopulaConfig::kendall(epsilon))
    }

    /// A request reading from a streaming [`RowSource`] around an
    /// existing [`DpCopulaConfig`].
    pub fn from_source_config(source: impl RowSource + 'd, config: DpCopulaConfig) -> Self {
        Self {
            input: RequestInput::Source(RefCell::new(Box::new(source))),
            config,
            opts: EngineOptions::default(),
            base_seed: 0,
            sink: MetricsSink::off(),
        }
    }

    /// Replaces this request's input with a streaming [`RowSource`],
    /// keeping every other knob — the migration hop from the eager
    /// constructors (`DESIGN.md` §10).
    pub fn input(mut self, source: impl RowSource + 'd) -> Self {
        self.input = RequestInput::Source(RefCell::new(Box::new(source)));
        self
    }

    /// Overrides the budget ratio `k = eps1 / eps2` between margins and
    /// correlations.
    pub fn k_ratio(mut self, k: f64) -> Self {
        self.config = self.config.with_k_ratio(k);
        self
    }

    /// Overrides the correlation estimator.
    pub fn estimator(mut self, method: CorrelationMethod) -> Self {
        self.config.method = method;
        self
    }

    /// Overrides the margin publication method.
    pub fn margin(mut self, margin: MarginMethod) -> Self {
        self.config.margin = margin;
        self
    }

    /// Overrides the output cardinality (default: input cardinality).
    pub fn output_records(mut self, n: usize) -> Self {
        self.config.output_records = Some(n);
        self
    }

    /// Overrides the sampling profile (default:
    /// [`SamplingProfile::Reference`]). Part of the config rather than
    /// the engine options because the `Fast` profile changes the
    /// released bytes (to an equally valid draw from the same model).
    pub fn profile(mut self, profile: SamplingProfile) -> Self {
        self.config = self.config.with_profile(profile);
        self
    }

    /// Overrides the worker count for the fan-out stages. By the
    /// determinism contract this can never change the released bytes.
    pub fn workers(mut self, workers: usize) -> Self {
        self.opts.workers = workers.max(1);
        self
    }

    /// Overrides the sampling chunk size. Part of the released value's
    /// identity (chunk boundaries key the sampling streams).
    pub fn sample_chunk(mut self, chunk: usize) -> Self {
        self.opts.sample_chunk = chunk;
        self
    }

    /// Replaces both engine knobs at once.
    pub fn engine(mut self, opts: EngineOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the base seed every stream generator derives from. For a
    /// fixed `(data, config, seed, sample_chunk)` the release is
    /// bit-identical at any worker count.
    pub fn seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Routes the run's metrics (stage spans, per-task latency, budget
    /// ledger, noise-draw counters) to `sink`. Defaults to a disabled
    /// sink, which costs one branch per would-be record.
    pub fn metrics(mut self, sink: MetricsSink) -> Self {
        self.sink = sink;
        self
    }

    /// The effective pipeline configuration.
    pub fn config(&self) -> &DpCopulaConfig {
        &self.config
    }

    /// The effective engine options.
    pub fn engine_options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Rewinds a source so repeated finishers re-read it from the top.
    /// One-pass sources are left as they are: their single pass backs at
    /// most one run, and a second run sees an empty stream and fails with
    /// a named error rather than silently fitting on nothing.
    fn reset_source(source: &mut dyn RowSource) -> Result<(), DpCopulaError> {
        if source.rewindable() {
            source.rewind()?;
        }
        Ok(())
    }

    /// Runs the full five-stage pipeline. Equivalent to
    /// [`DpCopula::synthesize_staged`] with this request's parameters —
    /// same bytes, plus whatever the metrics sink records. A streaming
    /// input fits out of core first (same released bytes for equal data).
    pub fn run(&self) -> Result<(Synthesis, PipelineReport), DpCopulaError> {
        match &self.input {
            RequestInput::Columns { columns, domains } => DpCopula::new(self.config)
                .synthesize_staged_with(columns, domains, self.base_seed, &self.opts, &self.sink),
            RequestInput::Source(source) => {
                let mut source = source.borrow_mut();
                Self::reset_source(source.as_mut())?;
                DpCopula::new(self.config).synthesize_source_with(
                    source.as_mut(),
                    self.base_seed,
                    &self.opts,
                    &self.sink,
                )
            }
        }
    }

    /// Runs stages 1–4 and packages the releases as a durable
    /// [`FittedModel`] (equivalent to [`DpCopula::fit_staged`]). The
    /// model keeps this request's sink for its serving-path metrics. A
    /// streaming input fits out of core and names the artifact's schema
    /// from the source's attributes.
    pub fn fit(&self) -> Result<(FittedModel, PipelineReport), DpCopulaError> {
        match &self.input {
            RequestInput::Columns { columns, domains } => DpCopula::new(self.config)
                .fit_staged_with(columns, domains, self.base_seed, &self.opts, &self.sink),
            RequestInput::Source(source) => {
                let mut source = source.borrow_mut();
                Self::reset_source(source.as_mut())?;
                DpCopula::new(self.config).fit_source_with(
                    source.as_mut(),
                    self.base_seed,
                    &self.opts,
                    &self.sink,
                )
            }
        }
    }

    /// Runs DP copula-family selection and then the pipeline with the
    /// winning family, using [`AdaptiveConfig::new`]'s candidate set
    /// around this request's configuration. The selection path is
    /// inherently sequential, so it derives its generator from this
    /// request's seed; equal seeds reproduce equal releases.
    pub fn run_adaptive(&self) -> Result<AdaptiveSynthesis, DpCopulaError> {
        self.run_adaptive_with(&AdaptiveConfig::new(self.config))
    }

    /// [`SynthesisRequest::run_adaptive`] with explicit candidates,
    /// selection fraction, and partition count. `config.base` is
    /// ignored in favour of this request's configuration.
    pub fn run_adaptive_with(
        &self,
        config: &AdaptiveConfig,
    ) -> Result<AdaptiveSynthesis, DpCopulaError> {
        let config = AdaptiveConfig {
            base: self.config,
            candidates: config.candidates.clone(),
            selection_fraction: config.selection_fraction,
            partitions: config.partitions,
        };
        let mut rng = StdRng::seed_from_u64(self.base_seed);
        match &self.input {
            RequestInput::Columns { columns, domains } => {
                synthesize_adaptive(&config, columns, domains, &mut rng)
            }
            RequestInput::Source(source) => {
                // Family selection partitions the raw records, so a
                // streaming input is materialized first (the documented
                // limitation — adaptive selection is not out-of-core).
                let mut source = source.borrow_mut();
                Self::reset_source(source.as_mut())?;
                let (_schema, domains, columns) =
                    crate::distfit::materialize_source(source.as_mut())?;
                synthesize_adaptive(&config, &columns, &domains, &mut rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obskit::names::{PIPELINE_ROWS_OUT_TOTAL, PIPELINE_RUNS_TOTAL};
    use obskit::{MetricValue, MetricsRegistry};
    use std::sync::Arc;

    fn test_columns(m: usize, n: usize, domain: u32, seed: u64) -> Vec<Vec<u32>> {
        use rngkit::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
        (0..m)
            .map(|j| {
                base.iter()
                    .map(|&v| (v + rng.gen_range(0..domain / 4) + j as u32) % domain)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn run_is_byte_identical_to_synthesize_staged() {
        let cols = test_columns(3, 2_000, 32, 1);
        let domains = vec![32usize; 3];
        let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
        let opts = EngineOptions::with_workers(2);
        let (legacy, legacy_report) = DpCopula::new(config)
            .synthesize_staged(&cols, &domains, 42, &opts)
            .unwrap();
        let (req, req_report) = SynthesisRequest::from_config(&cols, &domains, config)
            .workers(2)
            .seed(42)
            .run()
            .unwrap();
        assert_eq!(req.columns, legacy.columns);
        assert_eq!(req.correlation, legacy.correlation);
        assert_eq!(req.noisy_margins, legacy.noisy_margins);
        assert_eq!(req_report.base_seed, legacy_report.base_seed);
        assert_eq!(req_report.workers, legacy_report.workers);
    }

    #[test]
    fn fit_is_byte_identical_to_fit_staged() {
        let cols = test_columns(3, 2_000, 32, 2);
        let domains = vec![32usize; 3];
        let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
        let (legacy, _) = DpCopula::new(config)
            .fit_staged(&cols, &domains, 7, &EngineOptions::with_workers(2))
            .unwrap();
        let (req, _) = SynthesisRequest::from_config(&cols, &domains, config)
            .workers(2)
            .seed(7)
            .fit()
            .unwrap();
        assert_eq!(req.artifact(), legacy.artifact());
        assert_eq!(req.sample_range(0, 500, 3), legacy.sample_range(0, 500, 1));
    }

    #[test]
    fn run_adaptive_is_reproducible_per_seed() {
        let cols = test_columns(2, 4_000, 64, 3);
        let domains = vec![64usize; 2];
        let request = SynthesisRequest::new(&cols, &domains, Epsilon::new(5.0).unwrap()).seed(9);
        let a = request.run_adaptive().unwrap();
        let b = request.run_adaptive().unwrap();
        assert_eq!(a.synthesis.columns, b.synthesis.columns);
        assert_eq!(a.family, b.family);
        // And it matches the legacy free function fed the same generator.
        let mut rng = StdRng::seed_from_u64(9);
        let config = AdaptiveConfig::new(*request.config());
        let legacy = synthesize_adaptive(&config, &cols, &domains, &mut rng).unwrap();
        assert_eq!(a.synthesis.columns, legacy.synthesis.columns);
        assert_eq!(a.family, legacy.family);
    }

    #[test]
    fn builder_knobs_reach_the_config() {
        let cols = test_columns(2, 100, 16, 4);
        let domains = vec![16usize; 2];
        let request = SynthesisRequest::new(&cols, &domains, Epsilon::new(1.0).unwrap())
            .k_ratio(4.0)
            .margin(MarginMethod::Identity)
            .output_records(50)
            .workers(3)
            .sample_chunk(1024)
            .seed(11);
        assert_eq!(request.config().k_ratio, 4.0);
        assert_eq!(request.config().margin, MarginMethod::Identity);
        assert_eq!(request.config().output_records, Some(50));
        assert_eq!(request.engine_options().workers, 3);
        assert_eq!(request.engine_options().sample_chunk, 1024);
        let (out, report) = request.run().unwrap();
        assert_eq!(out.columns[0].len(), 50);
        assert_eq!(report.workers, 3);
    }

    #[test]
    fn metrics_sink_observes_the_run() {
        let cols = test_columns(2, 1_000, 32, 5);
        let domains = vec![32usize; 2];
        let registry = Arc::new(MetricsRegistry::new());
        let (_, _) = SynthesisRequest::new(&cols, &domains, Epsilon::new(1.0).unwrap())
            .metrics(MetricsSink::to_registry(registry.clone()))
            .seed(13)
            .run()
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.get(PIPELINE_RUNS_TOTAL).unwrap().value,
            MetricValue::Counter(1)
        );
        assert_eq!(
            snap.get(PIPELINE_ROWS_OUT_TOTAL).unwrap().value,
            MetricValue::Counter(1_000)
        );
        // Every pipeline stage span was recorded.
        for stage in obskit::names::STAGES {
            let id = obskit::series_id(obskit::SPAN_NS, &[("span", &format!("pipeline/{stage}"))]);
            let hist = snap.get(&id).unwrap().value.as_hist().unwrap().clone();
            assert_eq!(hist.count, 1, "{stage}");
        }
    }
}
