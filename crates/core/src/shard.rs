//! The mergeable-summary layer of the sharded fit pipeline.
//!
//! Every fit stage consumes **mergeable summaries** instead of raw
//! columns: the input rows are partitioned into contiguous disjoint
//! shards, each shard independently reduces its rows to a
//! [`ShardSummary`], and the summaries merge into exactly one model
//! (DESIGN.md §12). The single-shard fit is the 1-shard case of this
//! path — not a separate implementation — and reproduces the pre-shard
//! pipeline byte for byte (pinned in `tests/shard_pin.rs`).
//!
//! What merges, and how exactly:
//!
//! * **Margins** — each shard publishes its own noisy histogram per
//!   attribute through the [`MarginRegistry`]; merged counts are the
//!   per-bin sums. Shards hold disjoint rows, so by parallel composition
//!   (Theorem 3.2) the combined cost per attribute is the per-shard
//!   **maximum** `ε₁/m`, not the sum — sharding is privacy-free for the
//!   margins, paying instead with one extra noise term per shard in the
//!   merged histogram.
//! * **Kendall's τ** — each shard carries its within-shard integer
//!   [`Concordance`] per attribute pair plus its (sub)sampled records;
//!   the merge adds the cross-shard concordance corrections
//!   ([`mathkit::concord::cross_concordance`]) and obtains **exactly**
//!   the pooled `S / C(n, 2)`. The Laplace noise is drawn once at merge
//!   time against the pooled sensitivity `4/(n+1)`, so the released
//!   matrix is the same mechanism as the unsharded release. When record
//!   sampling is on (`Auto`/`Fixed`), each shard subsamples its
//!   proportional share of the global target — approximate relative to
//!   the unsharded subsample (a different row set), exact in every other
//!   respect.
//! * **Budget** — each shard keeps a [`ShardLedger`];
//!   [`ShardLedger::merge_parallel`] folds them with the per-label-max
//!   rule into the combined ledger the artifact reports.

use crate::engine::{harvest_draws, STREAM_KENDALL_NOISE, STREAM_KENDALL_SAMPLE, STREAM_MARGINS};
use crate::error::DpCopulaError;
use crate::kendall::{
    concordance_cached, kendall_sensitivity, recommended_sample_size, RankedColumn,
    SamplingStrategy,
};
use dphist::histogram::Histogram1D;
use dphist::MarginRegistry;
use dpmech::{laplace_noise, Epsilon, ShardLedger};
use mathkit::concord::{cross_concordance, merge, Concordance};
use mathkit::Matrix;
use obskit::MetricsSink;
use rngkit::seq::SliceRandom;

/// One shard of the fit input: a contiguous row range plus the logical
/// stream index its stochastic work derives under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// First row (inclusive).
    pub start: usize,
    /// One past the last row.
    pub end: usize,
    /// Logical RNG stream index of the shard: the Kendall row subsample
    /// draws from `stream_rng(base_seed, STREAM_KENDALL_SAMPLE,
    /// seed_index)` and attribute `j`'s margin noise from stream index
    /// `seed_index * m + j` — shard 0 of a 1-shard fit therefore lands
    /// on exactly the pre-shard stream keys.
    pub seed_index: u64,
}

impl ShardSpec {
    /// Number of rows in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard covers no rows (never true for specs produced
    /// by [`shard_specs`]).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Partitions `n` rows into `shards` contiguous, disjoint, non-empty
/// shards of near-equal size (the first `n % shards` shards get one
/// extra row), with `seed_index = shard index`.
///
/// # Panics
/// Panics when `shards` is zero or exceeds `n` — the engine validates
/// both with named errors before partitioning.
pub fn shard_specs(n: usize, shards: usize) -> Vec<ShardSpec> {
    assert!(shards >= 1, "shard_specs needs at least one shard");
    assert!(shards <= n, "shard_specs needs at least one row per shard");
    let base = n / shards;
    let extra = n % shards;
    let mut specs = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        specs.push(ShardSpec {
            start,
            end: start + len,
            seed_index: s as u64,
        });
        start += len;
    }
    specs
}

/// Splits a global row-sample target across shards proportionally to
/// their sizes, exactly: shard `s` covering rows `[start, end)` of `n`
/// gets `⌊target·end/n⌋ − ⌊target·start/n⌋` rows, which telescopes to
/// `target` in total, never exceeds the shard's size, and equals
/// `target` itself for a single shard.
pub fn partition_sample_target(target: usize, specs: &[ShardSpec]) -> Vec<usize> {
    let n = specs.last().map(|s| s.end).unwrap_or(0).max(1) as u128;
    let t = target as u128;
    specs
        .iter()
        .map(|s| ((t * s.end as u128) / n - (t * s.start as u128) / n) as usize)
        .collect()
}

/// Everything one shard contributes to the merged fit: its noisy margin
/// histograms, its (sub)sampled records and within-shard concordance
/// summaries for the τ merge, and its privacy-budget sub-ledger.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// The rows and stream index this summary covers.
    pub spec: ShardSpec,
    /// Noisy histogram counts, one per attribute (published through the
    /// `MarginRegistry` at the full per-attribute `ε₁/m` — parallel
    /// composition across shards keeps that the combined cost).
    pub noisy_margins: Vec<Vec<f64>>,
    /// The shard's τ record sample, one column per attribute (all shard
    /// rows under `SamplingStrategy::Full`). Empty until [`fill_tau`].
    pub sampled: Vec<Vec<u32>>,
    /// Within-shard concordance summary per attribute pair (pair ids in
    /// `(i, j)` lexicographic order). Empty until [`fill_tau`].
    pub within: Vec<Concordance>,
    /// The shard's own budget expenditures.
    pub ledger: ShardLedger,
}

/// Builds one summary per shard with the margin layer filled in: one
/// noisy histogram per `(shard, attribute)` task, fanned out across
/// `workers` under the `margins` stage, each keyed by stream index
/// `shard * m + attribute`.
#[allow(clippy::too_many_arguments)]
pub fn build_margin_summaries(
    columns: &[Vec<u32>],
    domains: &[usize],
    specs: &[ShardSpec],
    margin_name: &str,
    eps_margin: Epsilon,
    base_seed: u64,
    workers: usize,
    sink: &MetricsSink,
) -> Vec<ShardSummary> {
    let m = columns.len();
    let tasks: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..m).map(move |j| (s, j)))
        .collect();
    let published: Vec<Vec<f64>> =
        parkit::par_map_observed(workers, &tasks, sink, "margins", |_, &(s, j)| {
            harvest_draws(sink, "margins", || {
                let spec = specs[s];
                let exact = Histogram1D::from_values(&columns[j][spec.start..spec.end], domains[j]);
                let mut rng = parkit::stream_rng(
                    base_seed,
                    STREAM_MARGINS,
                    spec.seed_index * m as u64 + j as u64,
                );
                MarginRegistry::builtin()
                    .publish(margin_name, exact.counts(), eps_margin, &mut rng)
                    .expect("builtin registry covers every MarginMethod")
            })
        });

    let mut published = published.into_iter();
    specs
        .iter()
        .map(|&spec| {
            let mut ledger = ShardLedger::new();
            for _ in 0..m {
                ledger.spend("margins", eps_margin);
            }
            ShardSummary {
                spec,
                noisy_margins: published.by_ref().take(m).collect(),
                sampled: Vec::new(),
                within: Vec::new(),
                ledger,
            }
        })
        .collect()
}

/// [`build_margin_summaries`] from precomputed exact histogram counts
/// (`exact[shard][attribute][bin]`) instead of resident columns — the
/// entry point of the streaming fit, whose single pass over a
/// [`datagen::RowSource`] accumulates exactly the counts
/// `Histogram1D::from_values` would build. The task list, stream keys
/// and noise draws are identical to the eager path, so for equal counts
/// the published margins are byte-identical.
pub fn build_margin_summaries_from_counts(
    exact: &[Vec<Vec<f64>>],
    specs: &[ShardSpec],
    margin_name: &str,
    eps_margin: Epsilon,
    base_seed: u64,
    workers: usize,
    sink: &MetricsSink,
) -> Vec<ShardSummary> {
    let m = exact[0].len();
    let tasks: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..m).map(move |j| (s, j)))
        .collect();
    let published: Vec<Vec<f64>> =
        parkit::par_map_observed(workers, &tasks, sink, "margins", |_, &(s, j)| {
            harvest_draws(sink, "margins", || {
                let mut rng = parkit::stream_rng(
                    base_seed,
                    STREAM_MARGINS,
                    specs[s].seed_index * m as u64 + j as u64,
                );
                MarginRegistry::builtin()
                    .publish(margin_name, &exact[s][j], eps_margin, &mut rng)
                    .expect("builtin registry covers every MarginMethod")
            })
        });

    let mut published = published.into_iter();
    specs
        .iter()
        .map(|&spec| {
            let mut ledger = ShardLedger::new();
            for _ in 0..m {
                ledger.spend("margins", eps_margin);
            }
            ShardSummary {
                spec,
                noisy_margins: published.by_ref().take(m).collect(),
                sampled: Vec::new(),
                within: Vec::new(),
                ledger,
            }
        })
        .collect()
}

/// Merges the per-shard noisy margins into the released histograms: the
/// per-bin sum over shards (each shard's histogram counts disjoint rows,
/// so the sums estimate the pooled counts). With one shard this is that
/// shard's histograms unchanged.
pub fn merge_margins(summaries: &[ShardSummary]) -> Vec<Vec<f64>> {
    let mut merged = summaries[0].noisy_margins.clone();
    for summary in &summaries[1..] {
        for (acc, add) in merged.iter_mut().zip(&summary.noisy_margins) {
            for (a, &b) in acc.iter_mut().zip(add) {
                *a += b;
            }
        }
    }
    merged
}

/// The global Kendall record-sample target for `n` rows of `m`
/// attributes under `strategy` — the pre-shard rule, shared verbatim by
/// the in-process fit and the distributed `fit-shard` path (which must
/// replicate the plan from the *global* row count, not its part's).
pub fn kendall_sample_target(
    m: usize,
    n: usize,
    strategy: SamplingStrategy,
    eps2_total: Epsilon,
) -> usize {
    match strategy {
        SamplingStrategy::Full => n,
        SamplingStrategy::Auto => recommended_sample_size(m, eps2_total.value()).min(n),
        SamplingStrategy::Fixed(k) => k.clamp(2, n),
    }
}

/// The shard's subsample plan: which local rows (0-based within the
/// shard) participate in the τ estimate, in sample order. Shuffles with
/// `stream_rng(base_seed, STREAM_KENDALL_SAMPLE, seed_index)` only when
/// the target truncates the shard — the pre-shard guard that keeps
/// `Full` sampling allocation-order-stable.
pub fn shard_locals(spec: ShardSpec, target: usize, base_seed: u64) -> Vec<usize> {
    let shard_n = spec.len();
    if target < shard_n {
        let mut rng = parkit::stream_rng(base_seed, STREAM_KENDALL_SAMPLE, spec.seed_index);
        let mut all: Vec<usize> = (0..shard_n).collect();
        all.shuffle(&mut rng);
        all.truncate(target);
        all
    } else {
        (0..shard_n).collect()
    }
}

/// The rank-and-score half of [`fill_tau`]: given each shard's sampled
/// columns (already in subsample order), builds the per-(shard,
/// attribute) rank caches and the within-shard [`Concordance`] per
/// attribute pair, and stores both into the summaries. Shards below two
/// sampled records contribute [`Concordance::EMPTY`] and participate
/// only in cross terms.
pub fn fill_tau_from_sampled(
    summaries: &mut [ShardSummary],
    sampled: Vec<Vec<Vec<u32>>>,
    workers: usize,
    sink: &MetricsSink,
) {
    let m = sampled[0].len();
    let sj: Vec<(usize, usize)> = (0..summaries.len())
        .flat_map(|s| (0..m).map(move |j| (s, j)))
        .collect();
    let ranked: Vec<RankedColumn> =
        parkit::par_map_observed(workers, &sj, sink, "correlation", |_, &(s, j)| {
            RankedColumn::new(sampled[s][j].clone())
        });
    let pair_ids: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
        .collect();
    let sk: Vec<(usize, usize)> = (0..summaries.len())
        .flat_map(|s| (0..pair_ids.len()).map(move |k| (s, k)))
        .collect();
    let within: Vec<Concordance> =
        parkit::par_map_observed(workers, &sk, sink, "correlation", |_, &(s, k)| {
            if sampled[s][0].len() < 2 {
                Concordance::EMPTY
            } else {
                let (i, j) = pair_ids[k];
                concordance_cached(&ranked[s * m + i], &ranked[s * m + j])
            }
        });

    let pairs = pair_ids.len();
    for (s, (summary, cols)) in summaries.iter_mut().zip(sampled).enumerate() {
        summary.sampled = cols;
        summary.within = within[s * pairs..(s + 1) * pairs].to_vec();
    }
}

/// Fills the τ layer of each summary: draws the shard's proportional
/// share of the global record-sample target (via [`shard_locals`]), then
/// computes the within-shard [`Concordance`] per attribute pair over
/// cached rank structures ([`fill_tau_from_sampled`]).
pub fn fill_tau(
    summaries: &mut [ShardSummary],
    columns: &[Vec<u32>],
    strategy: SamplingStrategy,
    eps2_total: Epsilon,
    base_seed: u64,
    workers: usize,
    sink: &MetricsSink,
) {
    let m = columns.len();
    let n = columns[0].len();
    let target = kendall_sample_target(m, n, strategy, eps2_total);
    let specs: Vec<ShardSpec> = summaries.iter().map(|s| s.spec).collect();
    let targets = partition_sample_target(target, &specs);

    let sampled: Vec<Vec<Vec<u32>>> =
        parkit::par_map_observed(workers, &specs, sink, "correlation", |s, spec| {
            let locals = shard_locals(*spec, targets[s], base_seed);
            columns
                .iter()
                .map(|col| locals.iter().map(|&r| col[spec.start + r]).collect())
                .collect()
        });

    fill_tau_from_sampled(summaries, sampled, workers, sink);
}

/// The cross-shard concordance corrections of a sharded τ estimate: one
/// integer per `(shard s, shard t > s, attribute pair)` combination
/// (none for a single shard).
#[derive(Debug, Clone)]
pub struct CrossTerms {
    tasks: Vec<(usize, usize, usize)>,
    values: Vec<i64>,
}

/// Computes every cross-shard concordance correction, fanned out across
/// `workers` under the `correlation` stage. This is the parallelizable
/// estimation half of the τ merge — its work grows with the shard count
/// (each shard pair scores its pooled records), unlike the serial
/// [`combine_tau`] bookkeeping that follows.
///
/// # Panics
/// Panics when [`fill_tau`] has not populated the summaries.
pub fn cross_concordances(
    summaries: &[ShardSummary],
    workers: usize,
    sink: &MetricsSink,
) -> CrossTerms {
    let m = summaries[0].sampled.len();
    assert!(m >= 2, "cross_concordances needs filled τ summaries");
    let pairs = m * (m - 1) / 2;
    let pair_ids: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
        .collect();
    let tasks: Vec<(usize, usize, usize)> = (0..summaries.len())
        .flat_map(|s| ((s + 1)..summaries.len()).map(move |t| (s, t)))
        .flat_map(|(s, t)| (0..pairs).map(move |k| (s, t, k)))
        .collect();
    let values: Vec<i64> =
        parkit::par_map_observed(workers, &tasks, sink, "correlation", |_, &(s, t, k)| {
            let (i, j) = pair_ids[k];
            cross_concordance(
                &summaries[s].sampled[i],
                &summaries[s].sampled[j],
                &summaries[t].sampled[i],
                &summaries[t].sampled[j],
            )
        });
    CrossTerms { tasks, values }
}

/// Folds the within-shard summaries and the [`CrossTerms`] into the
/// **raw** released correlation matrix: per attribute pair, the merge is
/// exactly the pooled `S / C(n, 2)`, then one Laplace draw (stream
/// `STREAM_KENDALL_NOISE`, index = pair id, pooled sensitivity
/// `4/(n+1)`) and the `sin(π/2·τ)` map — the same mechanism as the
/// unsharded release. Clamping and the positive-definite repair remain
/// the pipeline's next stage. Serial: pure integer/float bookkeeping,
/// `O(pairs · shards²)`.
pub fn combine_tau(
    summaries: &[ShardSummary],
    cross: &CrossTerms,
    eps2_total: Epsilon,
    base_seed: u64,
    sink: &MetricsSink,
) -> Matrix {
    let m = summaries[0].sampled.len();
    let pair_ids: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
        .collect();
    let eps_pair = eps2_total.divide(pair_ids.len());
    let n_pooled: usize = summaries.iter().map(|s| s.sampled[0].len()).sum();
    let mut p = Matrix::identity(m);
    harvest_draws(sink, "correlation", || {
        let mut within = vec![Concordance::EMPTY; summaries.len()];
        for (k, &(i, j)) in pair_ids.iter().enumerate() {
            for (w, summary) in within.iter_mut().zip(summaries) {
                *w = summary.within[k];
            }
            let mut cross_s = 0i64;
            let mut cross_pairs = 0u64;
            for (&(s, t, kk), &c) in cross.tasks.iter().zip(&cross.values) {
                if kk == k {
                    cross_s += c;
                    cross_pairs +=
                        (summaries[s].sampled[0].len() * summaries[t].sampled[0].len()) as u64;
                }
            }
            let pooled = merge(&within, cross_s, cross_pairs);
            let tau = pooled.tau();
            let mut rng = parkit::stream_rng(base_seed, STREAM_KENDALL_NOISE, k as u64);
            let noisy =
                tau + laplace_noise(&mut rng, kendall_sensitivity(n_pooled) / eps_pair.value());
            let r = (std::f64::consts::FRAC_PI_2 * noisy).sin();
            p[(i, j)] = r;
            p[(j, i)] = r;
        }
    });
    p
}

/// Merges the τ layers into the **raw** released correlation matrix:
/// [`cross_concordances`] then [`combine_tau`] (the engine calls the two
/// halves separately to time summary building apart from merging).
///
/// # Panics
/// Panics when [`fill_tau`] has not populated the summaries or fewer
/// than two records were sampled in total.
pub fn merged_tau_matrix(
    summaries: &[ShardSummary],
    eps2_total: Epsilon,
    base_seed: u64,
    workers: usize,
    sink: &MetricsSink,
) -> Matrix {
    let cross = cross_concordances(summaries, workers, sink);
    combine_tau(summaries, &cross, eps2_total, base_seed, sink)
}

/// Folds the per-shard sub-ledgers into the combined ledger with the
/// parallel-composition per-label-max rule (shards hold disjoint rows).
pub fn merge_ledgers(summaries: &[ShardSummary]) -> ShardLedger {
    let ledgers: Vec<ShardLedger> = summaries.iter().map(|s| s.ledger.clone()).collect();
    ShardLedger::merge_parallel(&ledgers)
}

/// The sharded DP Kendall-τ estimator end to end: builds bare summaries
/// over `specs`, fills their τ layers, and merges — the sharded
/// counterpart of [`crate::kendall::dp_tau_matrix_par`], returning the
/// same **raw** (pre-repair) matrix. With one shard the result is
/// bit-identical to the unsharded estimator; with any shard count under
/// `SamplingStrategy::Full` it still is, because the merge is exact and
/// the noise stream only depends on the pair id.
pub fn dp_tau_matrix_sharded(
    columns: &[Vec<u32>],
    specs: &[ShardSpec],
    eps2_total: Epsilon,
    strategy: SamplingStrategy,
    base_seed: u64,
    workers: usize,
    sink: &MetricsSink,
) -> Result<Matrix, DpCopulaError> {
    let m = columns.len();
    if m == 0 {
        return Err(DpCopulaError::EmptyInput);
    }
    if m == 1 {
        return Ok(Matrix::identity(1));
    }
    let n = columns[0].len();
    if n < 2 {
        return Err(DpCopulaError::TooFewRecords {
            records: n,
            required: 2,
        });
    }
    let mut summaries: Vec<ShardSummary> = specs
        .iter()
        .map(|&spec| ShardSummary {
            spec,
            noisy_margins: Vec::new(),
            sampled: Vec::new(),
            within: Vec::new(),
            ledger: ShardLedger::new(),
        })
        .collect();
    fill_tau(
        &mut summaries,
        columns,
        strategy,
        eps2_total,
        base_seed,
        workers,
        sink,
    );
    Ok(merged_tau_matrix(
        &summaries, eps2_total, base_seed, workers, sink,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendall::dp_tau_matrix_par;
    use dpmech::nano_eps;
    use rngkit::rngs::StdRng;
    use rngkit::{Rng, SeedableRng};

    fn off() -> MetricsSink {
        MetricsSink::off()
    }

    fn test_columns(m: usize, n: usize, domain: u32, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
        (0..m)
            .map(|j| {
                base.iter()
                    .map(|&v| (v + rng.gen_range(0..domain / 4) + j as u32) % domain)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn shard_specs_partition_exactly() {
        for (n, shards) in [(10, 1), (10, 3), (7, 7), (1000, 4), (11, 2)] {
            let specs = shard_specs(n, shards);
            assert_eq!(specs.len(), shards);
            assert_eq!(specs[0].start, 0);
            assert_eq!(specs.last().unwrap().end, n);
            for (s, w) in specs.windows(2).enumerate() {
                assert_eq!(w[0].end, w[1].start, "n={n} shards={shards} s={s}");
            }
            for (s, spec) in specs.iter().enumerate() {
                assert!(!spec.is_empty());
                assert_eq!(spec.seed_index, s as u64);
                // Balanced: sizes differ by at most one.
                assert!(spec.len() == n / shards || spec.len() == n / shards + 1);
            }
        }
    }

    #[test]
    fn sample_target_partition_is_exact_and_proportional() {
        for (n, shards, target) in [(100, 1, 37), (100, 4, 37), (11, 3, 11), (5000, 7, 2700)] {
            let specs = shard_specs(n, shards);
            let targets = partition_sample_target(target, &specs);
            assert_eq!(
                targets.iter().sum::<usize>(),
                target,
                "n={n} shards={shards}"
            );
            for (spec, &t) in specs.iter().zip(&targets) {
                assert!(t <= spec.len(), "target share exceeds shard size");
            }
            if shards == 1 {
                assert_eq!(targets, vec![target]);
            }
        }
    }

    #[test]
    fn one_shard_tau_matrix_matches_unsharded_bitwise() {
        let cols = test_columns(4, 3_000, 50, 5);
        let eps = Epsilon::new(0.5).unwrap();
        for strategy in [
            SamplingStrategy::Full,
            SamplingStrategy::Auto,
            SamplingStrategy::Fixed(700),
        ] {
            let specs = shard_specs(cols[0].len(), 1);
            let sharded =
                dp_tau_matrix_sharded(&cols, &specs, eps, strategy, 42, 2, &off()).unwrap();
            let plain = dp_tau_matrix_par(&cols, eps, strategy, 42, 2, &off()).unwrap();
            assert_eq!(sharded, plain, "{strategy:?}");
        }
    }

    #[test]
    fn full_strategy_is_shard_count_invariant_bitwise() {
        // Under Full sampling the merge is exact and the noise stream
        // depends only on the pair id, so ANY shard count releases the
        // identical matrix.
        let cols = test_columns(3, 901, 40, 6);
        let eps = Epsilon::new(1.0).unwrap();
        let one = dp_tau_matrix_sharded(
            &cols,
            &shard_specs(901, 1),
            eps,
            SamplingStrategy::Full,
            7,
            1,
            &off(),
        )
        .unwrap();
        for shards in [2, 3, 5] {
            let many = dp_tau_matrix_sharded(
                &cols,
                &shard_specs(901, shards),
                eps,
                SamplingStrategy::Full,
                7,
                4,
                &off(),
            )
            .unwrap();
            assert_eq!(many, one, "shards={shards}");
        }
    }

    #[test]
    fn sharded_tau_is_worker_count_invariant() {
        let cols = test_columns(3, 1_200, 30, 8);
        let eps = Epsilon::new(1.0).unwrap();
        let specs = shard_specs(1_200, 4);
        let base = dp_tau_matrix_sharded(
            &cols,
            &specs,
            eps,
            SamplingStrategy::Fixed(400),
            3,
            1,
            &off(),
        )
        .unwrap();
        for workers in [2, 7] {
            let p = dp_tau_matrix_sharded(
                &cols,
                &specs,
                eps,
                SamplingStrategy::Fixed(400),
                3,
                workers,
                &off(),
            )
            .unwrap();
            assert_eq!(p, base, "workers={workers}");
        }
    }

    #[test]
    fn margin_summaries_merge_to_per_bin_sums_and_max_ledger() {
        let cols = test_columns(2, 400, 16, 9);
        let domains = [16usize, 16];
        let eps_margin = Epsilon::new(0.25).unwrap();
        let specs = shard_specs(400, 4);
        let summaries = build_margin_summaries(
            &cols,
            &domains,
            &specs,
            "identity",
            eps_margin,
            11,
            2,
            &off(),
        );
        assert_eq!(summaries.len(), 4);
        let merged = merge_margins(&summaries);
        for (j, bins) in merged.iter().enumerate() {
            for (b, &val) in bins.iter().enumerate() {
                let sum: f64 = summaries.iter().map(|s| s.noisy_margins[j][b]).sum();
                assert_eq!(val.to_bits(), sum.to_bits(), "j={j} b={b}");
            }
        }
        // Parallel composition: each shard spent m * eps_margin on the
        // margins label; the combined ledger carries the max, which for
        // identical sub-ledgers equals any one of them — NOT 4x.
        let combined = merge_ledgers(&summaries);
        let per_shard = 2 * nano_eps(eps_margin);
        assert_eq!(combined.spent_neps("margins"), per_shard);
        for s in &summaries {
            assert_eq!(s.ledger.spent_neps("margins"), per_shard);
        }
    }

    #[test]
    fn one_shard_margin_summary_uses_pre_shard_streams() {
        // With one shard the (shard, attr) stream index is `0 * m + j`,
        // i.e. the pre-shard per-attribute key: publishing through the
        // summary layer must equal publishing directly.
        let cols = test_columns(3, 500, 16, 10);
        let domains = [16usize, 16, 16];
        let eps_margin = Epsilon::new(0.2).unwrap();
        let specs = shard_specs(500, 1);
        let summaries =
            build_margin_summaries(&cols, &domains, &specs, "efpa", eps_margin, 13, 1, &off());
        let merged = merge_margins(&summaries);
        for (j, col) in cols.iter().enumerate() {
            let exact = Histogram1D::from_values(col, domains[j]);
            let mut rng = parkit::stream_rng(13, STREAM_MARGINS, j as u64);
            let direct = MarginRegistry::builtin()
                .publish("efpa", exact.counts(), eps_margin, &mut rng)
                .unwrap();
            assert_eq!(merged[j], direct, "attr {j}");
        }
    }

    #[test]
    fn tiny_shards_fall_back_to_cross_terms_only() {
        // 2 records over 2 shards: both within summaries are EMPTY, the
        // whole τ signal is the single cross pair — and must not panic.
        let cols = vec![vec![0u32, 1], vec![0u32, 1]];
        let specs = shard_specs(2, 2);
        let p = dp_tau_matrix_sharded(
            &cols,
            &specs,
            Epsilon::new(5.0).unwrap(),
            SamplingStrategy::Full,
            1,
            1,
            &off(),
        )
        .unwrap();
        assert_eq!((p.rows(), p.cols()), (2, 2));
        assert!(p[(0, 1)].is_finite());
    }

    #[test]
    fn sharded_rejects_degenerate_inputs() {
        let eps = Epsilon::new(1.0).unwrap();
        assert_eq!(
            dp_tau_matrix_sharded(&[], &[], eps, SamplingStrategy::Full, 1, 1, &off()).unwrap_err(),
            DpCopulaError::EmptyInput
        );
        let one_record = vec![vec![1u32], vec![2u32]];
        assert!(matches!(
            dp_tau_matrix_sharded(
                &one_record,
                &shard_specs(1, 1),
                eps,
                SamplingStrategy::Full,
                1,
                1,
                &off()
            )
            .unwrap_err(),
            DpCopulaError::TooFewRecords { .. }
        ));
    }
}
