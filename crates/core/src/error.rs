//! Error type for the DPCopula pipeline.

use dpmech::BudgetError;
use mathkit::cholesky::CholeskyError;

/// Everything that can go wrong while fitting or sampling a DP copula.
///
/// Non-exhaustive: new pipeline stages and serving paths will add
/// failure modes, so downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DpCopulaError {
    /// The input had no attributes or no records.
    EmptyInput,
    /// Columns have different lengths.
    RaggedColumns,
    /// `columns.len() != domains.len()`.
    ArityMismatch {
        /// Number of data columns supplied.
        columns: usize,
        /// Number of domain sizes supplied.
        domains: usize,
    },
    /// A value fell outside its declared domain.
    ValueOutOfDomain {
        /// Dimension index.
        dim: usize,
        /// Offending value.
        value: u32,
        /// Domain size of that dimension.
        domain: usize,
    },
    /// Privacy budget problems (invalid epsilon, over-spending).
    Budget(BudgetError),
    /// The operation needs more records than the dataset holds (e.g.
    /// Kendall's tau requires at least two observations).
    TooFewRecords {
        /// Records available.
        records: usize,
        /// Records required.
        required: usize,
    },
    /// The operation needs more attributes than the dataset has (e.g.
    /// copula-family selection requires dependence to compare).
    TooFewAttributes {
        /// Attributes available.
        attributes: usize,
        /// Attributes required.
        required: usize,
    },
    /// DPCopula-MLE needs `l > C(m,2) / (0.025 * eps2)` partitions with at
    /// least 2 records each; the dataset is too small for the requested
    /// dimensionality/budget (§4.1 of the paper).
    InsufficientDataForMle {
        /// Partitions required.
        required_partitions: usize,
        /// Records available.
        records: usize,
    },
    /// A correlation matrix failed the Cholesky factorisation even after
    /// the eigenvalue repair — numerically it is not positive definite,
    /// so no copula can be sampled from it.
    NotPositiveDefinite(CholeskyError),
    /// A sampler was asked to pair a correlation matrix with a different
    /// number of marginal distributions — one margin per matrix
    /// dimension is required.
    MarginCountMismatch {
        /// Number of marginal distributions supplied.
        margins: usize,
        /// Dimension of the correlation matrix.
        dims: usize,
    },
    /// A stored model artifact failed decoding or its on-load validation
    /// (checksums, unit diagonal, symmetry, positive-definiteness) —
    /// serving it would produce garbage or panic downstream, so the load
    /// is refused instead.
    CorruptModel {
        /// What failed, as precisely as the layer that caught it knows
        /// (section name + byte offset for codec damage, the violated
        /// invariant for semantic damage).
        reason: String,
    },
    /// The artifact is well-formed but this serving layer cannot sample
    /// its model (e.g. a copula family reserved in the format that has
    /// no sampler yet).
    UnsupportedModel {
        /// What is unsupported.
        reason: String,
    },
    /// A requested serving window `[offset, offset + n)` overflows the
    /// addressable synthetic row space — serving it would wrap around and
    /// silently return the wrong rows.
    RowWindowOverflow {
        /// Window start (absolute row index).
        offset: usize,
        /// Requested window length.
        n: usize,
    },
    /// A sharded fit was requested with zero shards — there is no data
    /// partition to fit.
    ZeroShards,
    /// More shards were requested than the dataset has records, so some
    /// shard would be empty (parallel composition needs every shard to
    /// hold at least one record of the disjoint partition).
    TooManyShards {
        /// Shards requested.
        shards: usize,
        /// Records available.
        records: usize,
    },
    /// Shard inputs disagree on the released schema (attribute count or
    /// domains), so their summaries cannot be merged into one model.
    ShardSchemaMismatch {
        /// Index of the first disagreeing shard.
        shard: usize,
        /// How it disagrees with shard 0.
        reason: String,
    },
    /// The configured correlation estimator has no mergeable summary, so
    /// it cannot run across more than one shard (only Kendall's tau
    /// merges exactly; see DESIGN.md §12).
    ShardedCorrelationUnsupported {
        /// Name of the unsupported estimator.
        method: &'static str,
    },
    /// A streaming input source failed while being read (I/O error,
    /// malformed row, or a rewind requested from a one-pass source).
    InputSource {
        /// What went wrong, as reported by the source.
        reason: String,
    },
    /// A shard fit was requested for a shard index outside the declared
    /// shard count.
    ShardIndexOutOfRange {
        /// Requested shard index.
        index: usize,
        /// Declared shard count.
        shards: usize,
    },
    /// A shard fit's input part held a different number of rows than its
    /// slot of the global partition — the part files do not line up with
    /// `shard_specs(total_rows, shards)`, so the merged release would
    /// not match the single-process fit.
    ShardRowCountMismatch {
        /// Rows the shard's partition slot covers.
        expected: usize,
        /// Rows the input part actually held.
        found: usize,
    },
    /// A `.dpcs` shard artifact disagrees with the first artifact of the
    /// merge set (schema, fit configuration, total rows, or row ranges),
    /// naming the culprit file.
    ShardArtifactMismatch {
        /// Path of the disagreeing artifact.
        file: String,
        /// How it disagrees.
        reason: String,
    },
    /// Two `.dpcs` artifacts of one merge set claim the same shard
    /// index — the partition would double-count its rows.
    DuplicateShardIndex {
        /// The claimed-twice shard index.
        index: usize,
        /// Path of the second artifact claiming it.
        file: String,
    },
    /// The merge was given a different number of shard artifacts than
    /// the artifacts themselves declare the fit was split into.
    ShardCountMismatch {
        /// Shard count declared inside the artifacts.
        declared: usize,
        /// Artifacts actually provided.
        provided: usize,
    },
}

impl std::fmt::Display for DpCopulaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpCopulaError::EmptyInput => write!(f, "input data is empty"),
            DpCopulaError::RaggedColumns => write!(f, "columns have differing lengths"),
            DpCopulaError::ArityMismatch { columns, domains } => write!(
                f,
                "{columns} data columns but {domains} domain sizes supplied"
            ),
            DpCopulaError::ValueOutOfDomain { dim, value, domain } => write!(
                f,
                "value {value} in dimension {dim} is outside its domain of size {domain}"
            ),
            DpCopulaError::Budget(e) => write!(f, "privacy budget error: {e}"),
            DpCopulaError::TooFewRecords { records, required } => write!(
                f,
                "operation requires at least {required} records, got {records}"
            ),
            DpCopulaError::TooFewAttributes {
                attributes,
                required,
            } => write!(
                f,
                "operation requires at least {required} attributes, got {attributes}"
            ),
            DpCopulaError::InsufficientDataForMle {
                required_partitions,
                records,
            } => write!(
                f,
                "DPCopula-MLE requires at least {required_partitions} partitions \
                 of >= 2 records but only {records} records are available"
            ),
            DpCopulaError::NotPositiveDefinite(e) => {
                write!(f, "correlation matrix is not positive definite: {e}")
            }
            DpCopulaError::MarginCountMismatch { margins, dims } => write!(
                f,
                "need one marginal distribution per matrix dimension: \
                 {margins} margins for a {dims}-dimensional matrix"
            ),
            DpCopulaError::CorruptModel { reason } => {
                write!(f, "corrupt model artifact: {reason}")
            }
            DpCopulaError::UnsupportedModel { reason } => {
                write!(f, "unsupported model artifact: {reason}")
            }
            DpCopulaError::RowWindowOverflow { offset, n } => write!(
                f,
                "row window [{offset}, {offset} + {n}) overflows the addressable row space"
            ),
            DpCopulaError::ZeroShards => {
                write!(f, "sharded fit requires at least one shard, got 0")
            }
            DpCopulaError::TooManyShards { shards, records } => write!(
                f,
                "{shards} shards requested but only {records} records are \
                 available — every shard needs at least one record"
            ),
            DpCopulaError::ShardSchemaMismatch { shard, reason } => {
                write!(f, "shard {shard} schema does not match shard 0: {reason}")
            }
            DpCopulaError::ShardedCorrelationUnsupported { method } => write!(
                f,
                "correlation method {method} has no mergeable summary and \
                 cannot fit across more than one shard (use kendall)"
            ),
            DpCopulaError::InputSource { reason } => {
                write!(f, "input source failed: {reason}")
            }
            DpCopulaError::ShardIndexOutOfRange { index, shards } => write!(
                f,
                "shard index {index} is outside the declared shard count {shards}"
            ),
            DpCopulaError::ShardRowCountMismatch { expected, found } => write!(
                f,
                "shard input holds {found} rows but its slot of the global \
                 partition covers {expected}"
            ),
            DpCopulaError::ShardArtifactMismatch { file, reason } => {
                write!(
                    f,
                    "shard artifact {file} does not match the merge set: {reason}"
                )
            }
            DpCopulaError::DuplicateShardIndex { index, file } => write!(
                f,
                "shard artifact {file} claims shard index {index}, which another \
                 artifact of the merge set already holds"
            ),
            DpCopulaError::ShardCountMismatch { declared, provided } => write!(
                f,
                "{provided} shard artifacts provided but the fit was declared \
                 as {declared} shards"
            ),
        }
    }
}

impl std::error::Error for DpCopulaError {}

impl From<BudgetError> for DpCopulaError {
    fn from(e: BudgetError) -> Self {
        DpCopulaError::Budget(e)
    }
}

impl From<CholeskyError> for DpCopulaError {
    fn from(e: CholeskyError) -> Self {
        DpCopulaError::NotPositiveDefinite(e)
    }
}

impl From<parkit::WindowOverflow> for DpCopulaError {
    fn from(e: parkit::WindowOverflow) -> Self {
        DpCopulaError::RowWindowOverflow {
            offset: e.offset,
            n: e.n,
        }
    }
}

impl From<modelstore::StoreError> for DpCopulaError {
    fn from(e: modelstore::StoreError) -> Self {
        DpCopulaError::CorruptModel {
            reason: e.to_string(),
        }
    }
}

impl From<datagen::SourceError> for DpCopulaError {
    fn from(e: datagen::SourceError) -> Self {
        DpCopulaError::InputSource {
            reason: e.to_string(),
        }
    }
}

/// Validates the common columnar-input invariants shared by all
/// synthesizers.
pub fn validate_columns(columns: &[Vec<u32>], domains: &[usize]) -> Result<(), DpCopulaError> {
    if columns.is_empty() {
        return Err(DpCopulaError::EmptyInput);
    }
    if columns.len() != domains.len() {
        return Err(DpCopulaError::ArityMismatch {
            columns: columns.len(),
            domains: domains.len(),
        });
    }
    let n = columns[0].len();
    if n == 0 {
        return Err(DpCopulaError::EmptyInput);
    }
    for col in columns {
        if col.len() != n {
            return Err(DpCopulaError::RaggedColumns);
        }
    }
    for (dim, (col, &domain)) in columns.iter().zip(domains).enumerate() {
        if let Some(&value) = col.iter().find(|&&v| v as usize >= domain) {
            return Err(DpCopulaError::ValueOutOfDomain { dim, value, domain });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_input() {
        let cols = vec![vec![0u32, 1, 2], vec![3u32, 4, 5]];
        assert!(validate_columns(&cols, &[3, 6]).is_ok());
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert_eq!(validate_columns(&[], &[]), Err(DpCopulaError::EmptyInput));
        let empty_col = vec![Vec::<u32>::new()];
        assert_eq!(
            validate_columns(&empty_col, &[4]),
            Err(DpCopulaError::EmptyInput)
        );
        let ragged = vec![vec![0u32, 1], vec![0u32]];
        assert_eq!(
            validate_columns(&ragged, &[2, 2]),
            Err(DpCopulaError::RaggedColumns)
        );
    }

    #[test]
    fn rejects_arity_and_domain_violations() {
        let cols = vec![vec![0u32, 5]];
        assert_eq!(
            validate_columns(&cols, &[4, 4]),
            Err(DpCopulaError::ArityMismatch {
                columns: 1,
                domains: 2
            })
        );
        assert_eq!(
            validate_columns(&cols, &[4]),
            Err(DpCopulaError::ValueOutOfDomain {
                dim: 0,
                value: 5,
                domain: 4
            })
        );
    }

    #[test]
    fn errors_render_human_readable() {
        let e = DpCopulaError::InsufficientDataForMle {
            required_partitions: 100,
            records: 5,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("5"));
    }
}
