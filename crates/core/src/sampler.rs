//! Sampling DP synthetic data from the fitted copula model — Algorithm 3
//! of the paper.
//!
//! 1. draw `z ~ N(0, P~)` via Cholesky;
//! 2. map to the unit cube: `t_j = Phi(z_j)` (DP pseudo-copula data);
//! 3. map back to the original domains through the inverse DP marginal
//!    CDFs: `x_j = F~_j^{-1}(t_j)`.

use crate::empirical::{MarginalDistribution, QuantileTable};
use crate::error::DpCopulaError;
use mathkit::dist::MultivariateNormal;
use mathkit::special::norm_cdf;
use mathkit::Matrix;
use rngkit::ziggurat;
use rngkit::Rng;

/// How the sampling hot path trades determinism pinning for speed.
///
/// Both profiles post-process the *same* fitted DP model, so the
/// privacy guarantee is identical; they differ only in which
/// reproducibility contract the emitted bytes satisfy (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingProfile {
    /// The pinned path: polar-method normals, per-row Cholesky apply,
    /// scalar Φ then inverse-CDF search. Output is byte-identical to
    /// every release since the determinism contract was introduced, at
    /// any worker count or window split.
    #[default]
    Reference,
    /// The vectorised path: ziggurat normals, blocked Cholesky apply,
    /// and per-margin z-space lookup tables that skip Φ entirely.
    /// Deterministic with *itself* (same seed ⇒ same bytes at any
    /// worker count or window split) but not byte-comparable to
    /// [`SamplingProfile::Reference`]; equality is enforced
    /// distributionally by the statistical-equivalence test tier.
    Fast,
}

impl SamplingProfile {
    /// Stable lower-case label used for CLI flags and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            SamplingProfile::Reference => "reference",
            SamplingProfile::Fast => "fast",
        }
    }
}

/// A ready-to-sample DP copula model: DP correlation matrix plus DP
/// marginal distributions.
#[derive(Debug, Clone)]
pub struct CopulaSampler {
    mvn: MultivariateNormal,
    margins: Vec<MarginalDistribution>,
    /// z-space inverse-CDF tables, one per margin (fast profile only).
    tables: Vec<QuantileTable>,
}

impl CopulaSampler {
    /// Builds the sampler. Fails when the number of margins disagrees
    /// with `p` ([`DpCopulaError::MarginCountMismatch`]) or when `p` is
    /// not positive definite (run it through the repair of Algorithm 5
    /// first).
    pub fn new(p: &Matrix, margins: Vec<MarginalDistribution>) -> Result<Self, DpCopulaError> {
        if p.rows() != margins.len() {
            return Err(DpCopulaError::MarginCountMismatch {
                margins: margins.len(),
                dims: p.rows(),
            });
        }
        let tables = margins.iter().map(QuantileTable::new).collect();
        Ok(Self {
            mvn: MultivariateNormal::new(p)?,
            margins,
            tables,
        })
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.margins.len()
    }

    /// The marginal distributions.
    pub fn margins(&self) -> &[MarginalDistribution] {
        &self.margins
    }

    /// Draws one synthetic record into `out`.
    ///
    /// # Panics
    /// Panics when `out.len() != self.dims()`.
    pub fn sample_record<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [u32]) {
        assert_eq!(out.len(), self.dims(), "output buffer size mismatch");
        let mut z = vec![0.0; self.dims()];
        self.mvn.sample_into(rng, &mut z);
        for (j, (zj, margin)) in z.iter().zip(&self.margins).enumerate() {
            out[j] = margin.quantile(norm_cdf(*zj));
        }
    }

    /// Draws `n` synthetic records, returned column-major (one `Vec<u32>`
    /// per attribute) to match the workspace's dataset layout.
    pub fn sample_columns<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Vec<u32>> {
        let d = self.dims();
        let mut cols = vec![vec![0u32; n]; d];
        let mut buf = vec![0u32; d];
        for row in 0..n {
            self.sample_record(rng, &mut buf);
            for (j, col) in cols.iter_mut().enumerate() {
                col[row] = buf[j];
            }
        }
        cols
    }

    /// Draws `n` synthetic records in row chunks of at most `chunk`
    /// records, fanned out across `workers` threads and concatenated in
    /// chunk order.
    ///
    /// Chunk `c` draws from `stream_rng(base_seed, STREAM_SAMPLER, c)` —
    /// a pure function of the chunk id — so for a fixed
    /// `(base_seed, chunk)` the output is bit-identical at any worker
    /// count. Changing `chunk` re-keys the streams and therefore changes
    /// the (equally valid) sample.
    pub fn sample_columns_chunked(
        &self,
        n: usize,
        base_seed: u64,
        workers: usize,
        chunk: usize,
    ) -> Vec<Vec<u32>> {
        self.sample_columns_window(
            0,
            n,
            base_seed,
            crate::engine::STREAM_SAMPLER,
            workers,
            chunk,
        )
    }

    /// [`CopulaSampler::sample_columns_chunked`] with per-chunk task
    /// metrics published to `sink` under the given `stage` label. Same
    /// bytes as the unobserved call for any sink.
    pub fn sample_columns_chunked_observed(
        &self,
        n: usize,
        base_seed: u64,
        workers: usize,
        chunk: usize,
        sink: &obskit::MetricsSink,
        stage: &str,
    ) -> Vec<Vec<u32>> {
        self.sample_columns_window_observed(
            0,
            n,
            base_seed,
            crate::engine::STREAM_SAMPLER,
            workers,
            chunk,
            sink,
            stage,
        )
    }

    /// Draws the absolute row window `[offset, offset + n)` of the
    /// infinite synthetic row space keyed by `(base_seed, stream)`,
    /// fanned out across `workers` threads.
    ///
    /// Rows are gridded into fixed chunks of `chunk` records; chunk `c`
    /// (covering rows `c*chunk .. (c+1)*chunk`) draws from
    /// `stream_rng(base_seed, stream, c)`, and rows of a chunk before
    /// the window are generated and discarded. Row `r` is therefore a
    /// pure function of `(model, base_seed, stream, chunk, r)` — the
    /// same bytes whether it is produced by one call, any split of
    /// calls, or any worker count. This is what lets horizontally
    /// sharded servers each own a disjoint row range of one model and
    /// still jointly reproduce the single-machine output.
    pub fn sample_columns_window(
        &self,
        offset: usize,
        n: usize,
        base_seed: u64,
        stream: u64,
        workers: usize,
        chunk: usize,
    ) -> Vec<Vec<u32>> {
        self.sample_columns_window_observed(
            offset,
            n,
            base_seed,
            stream,
            workers,
            chunk,
            &obskit::MetricsSink::off(),
            "sampling",
        )
    }

    /// [`CopulaSampler::sample_columns_window`] with per-chunk task
    /// metrics (`parkit_*{stage=..}` series) published to `sink`. The
    /// sampled bytes are identical for any sink — observation is pure
    /// post-processing on the side.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_columns_window_observed(
        &self,
        offset: usize,
        n: usize,
        base_seed: u64,
        stream: u64,
        workers: usize,
        chunk: usize,
        sink: &obskit::MetricsSink,
        stage: &str,
    ) -> Vec<Vec<u32>> {
        self.sample_columns_window_profile_observed(
            SamplingProfile::Reference,
            offset,
            n,
            base_seed,
            stream,
            workers,
            chunk,
            sink,
            stage,
        )
    }

    /// [`CopulaSampler::sample_columns_window`] under an explicit
    /// [`SamplingProfile`]. `Reference` reproduces the pinned byte
    /// stream; `Fast` draws an equally valid sample from the same model,
    /// deterministic for a fixed `(base_seed, stream, chunk)` at any
    /// worker count or window split, but on its own byte stream.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_columns_window_profile(
        &self,
        profile: SamplingProfile,
        offset: usize,
        n: usize,
        base_seed: u64,
        stream: u64,
        workers: usize,
        chunk: usize,
    ) -> Vec<Vec<u32>> {
        self.sample_columns_window_profile_observed(
            profile,
            offset,
            n,
            base_seed,
            stream,
            workers,
            chunk,
            &obskit::MetricsSink::off(),
            "sampling",
        )
    }

    /// [`CopulaSampler::sample_columns_window_profile`] with per-chunk
    /// task metrics published to `sink`. Bytes are identical for any
    /// sink.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_columns_window_profile_observed(
        &self,
        profile: SamplingProfile,
        offset: usize,
        n: usize,
        base_seed: u64,
        stream: u64,
        workers: usize,
        chunk: usize,
        sink: &obskit::MetricsSink,
        stage: &str,
    ) -> Vec<Vec<u32>> {
        let d = self.dims();
        let windows = parkit::chunk_windows(offset, n, chunk);
        let pieces: Vec<Vec<Vec<u32>>> =
            parkit::par_map_observed(workers, &windows, sink, stage, |_, w| {
                let mut rng = parkit::stream_rng(base_seed, stream, w.id as u64);
                match profile {
                    SamplingProfile::Reference => {
                        self.sample_chunk_reference(&mut rng, w.skip, w.take)
                    }
                    SamplingProfile::Fast => self.sample_chunk_fast(&mut rng, w.skip, w.take),
                }
            });
        let mut out = vec![Vec::with_capacity(n); d];
        for piece in pieces {
            for (col, mut part) in out.iter_mut().zip(piece) {
                col.append(&mut part);
            }
        }
        out
    }

    /// One chunk of the pinned reference path: row-at-a-time
    /// [`CopulaSampler::sample_record`], burning `skip` rows first.
    fn sample_chunk_reference<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        skip: usize,
        take: usize,
    ) -> Vec<Vec<u32>> {
        let d = self.dims();
        let mut cols = vec![Vec::with_capacity(take); d];
        let mut buf = vec![0u32; d];
        for _ in 0..skip {
            self.sample_record(rng, &mut buf);
        }
        for _ in 0..take {
            self.sample_record(rng, &mut buf);
            for (col, &v) in cols.iter_mut().zip(&buf) {
                col.push(v);
            }
        }
        cols
    }

    /// One chunk of the fast path: ziggurat normals drawn row-major into
    /// a structure-of-arrays batch, one blocked Cholesky apply, then a
    /// z-space table walk per cell — no per-row Φ evaluation at all.
    ///
    /// Normals are consumed in row order (`d` draws per row, skipped
    /// rows burn exactly `d` draws each) so any window split of a chunk
    /// sees the same per-row draws — the property the window-stitching
    /// contract rests on.
    ///
    /// The z-matrix lives in a per-thread scratch reused across chunks:
    /// every cell is overwritten before the Cholesky apply reads it, so
    /// the emitted bytes are independent of what a previous chunk (or a
    /// previous model on the same worker thread) left behind.
    fn sample_chunk_fast<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        skip: usize,
        take: usize,
    ) -> Vec<Vec<u32>> {
        thread_local! {
            static FAST_Z: std::cell::RefCell<Vec<Vec<f64>>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        let d = self.dims();
        for _ in 0..skip * d {
            ziggurat::standard_normal(rng);
        }
        FAST_Z.with(|cell| {
            let mut z = cell.borrow_mut();
            z.resize_with(d, Vec::new);
            for col in z.iter_mut() {
                col.resize(take, 0.0);
            }
            for row in 0..take {
                for col in z.iter_mut() {
                    col[row] = ziggurat::standard_normal(rng);
                }
            }
            self.mvn.apply_lower_blocked(&mut z);
            z.iter()
                .zip(&self.tables)
                .map(|(col, table)| col.iter().map(|&v| table.quantile_z(v)).collect())
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendall::kendall_tau;
    use mathkit::correlation::equicorrelation;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    fn uniform_margin(domain: usize) -> MarginalDistribution {
        MarginalDistribution::from_noisy_histogram(&vec![1.0; domain])
    }

    #[test]
    fn output_respects_domains() {
        let margins = vec![uniform_margin(10), uniform_margin(50)];
        let s = CopulaSampler::new(&equicorrelation(2, 0.5), margins).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cols = s.sample_columns(2_000, &mut rng);
        assert!(cols[0].iter().all(|&v| v < 10));
        assert!(cols[1].iter().all(|&v| v < 50));
    }

    #[test]
    fn margins_are_reproduced() {
        // A skewed margin must be visible in the synthetic output.
        let skew = MarginalDistribution::from_noisy_histogram(&[70.0, 20.0, 10.0]);
        let s =
            CopulaSampler::new(&equicorrelation(2, 0.0), vec![skew, uniform_margin(4)]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let cols = s.sample_columns(30_000, &mut rng);
        let f0 = cols[0].iter().filter(|&&v| v == 0).count() as f64 / 30_000.0;
        let f2 = cols[0].iter().filter(|&&v| v == 2).count() as f64 / 30_000.0;
        assert!((f0 - 0.7).abs() < 0.02, "f0 {f0}");
        assert!((f2 - 0.1).abs() < 0.02, "f2 {f2}");
    }

    #[test]
    fn dependence_survives_the_transform() {
        // tau of a Gaussian copula with rho: tau = 2/pi * asin(rho).
        let rho = 0.8_f64;
        let margins = vec![uniform_margin(1000), uniform_margin(1000)];
        let s = CopulaSampler::new(&equicorrelation(2, rho), margins).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let cols = s.sample_columns(8_000, &mut rng);
        let tau = kendall_tau(&cols[0], &cols[1]);
        let expect = 2.0 / std::f64::consts::PI * rho.asin();
        assert!((tau - expect).abs() < 0.03, "tau {tau} vs {expect}");
    }

    #[test]
    fn independence_produces_near_zero_tau() {
        let margins = vec![uniform_margin(500), uniform_margin(500)];
        let s = CopulaSampler::new(&Matrix::identity(2), margins).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let cols = s.sample_columns(5_000, &mut rng);
        let tau = kendall_tau(&cols[0], &cols[1]);
        assert!(tau.abs() < 0.03, "tau {tau}");
    }

    #[test]
    fn chunked_sampling_is_worker_count_invariant() {
        let margins = vec![uniform_margin(100), uniform_margin(100)];
        let s = CopulaSampler::new(&equicorrelation(2, 0.6), margins).unwrap();
        let base = s.sample_columns_chunked(5_000, 77, 1, 512);
        for workers in [2, 7] {
            assert_eq!(
                s.sample_columns_chunked(5_000, 77, workers, 512),
                base,
                "workers={workers}"
            );
        }
        assert_eq!(base[0].len(), 5_000);
        // Statistical sanity: dependence survives chunked sampling too.
        let tau = kendall_tau(&base[0], &base[1]);
        let expect = 2.0 / std::f64::consts::PI * 0.6_f64.asin();
        assert!((tau - expect).abs() < 0.05, "tau {tau} vs {expect}");
    }

    #[test]
    fn chunked_sampling_handles_edge_sizes() {
        let margins = vec![uniform_margin(10)];
        let s = CopulaSampler::new(&Matrix::identity(1), margins).unwrap();
        // n == 0, n < chunk, chunk == 0, workers > chunks.
        assert_eq!(
            s.sample_columns_chunked(0, 1, 4, 64),
            vec![Vec::<u32>::new()]
        );
        assert_eq!(s.sample_columns_chunked(5, 1, 4, 64)[0].len(), 5);
        assert_eq!(s.sample_columns_chunked(3, 1, 16, 0)[0].len(), 3);
    }

    #[test]
    fn window_sampling_splits_seamlessly_at_any_point() {
        let margins = vec![uniform_margin(60), uniform_margin(60)];
        let s = CopulaSampler::new(&equicorrelation(2, 0.4), margins).unwrap();
        let stream = crate::engine::STREAM_SAMPLER;
        let whole = s.sample_columns_window(0, 1_000, 5, stream, 3, 128);
        assert_eq!(whole, s.sample_columns_chunked(1_000, 5, 3, 128));
        // Splits at chunk-aligned and unaligned points both reproduce
        // the one-call bytes.
        for k in [1usize, 127, 128, 129, 500, 999] {
            let head = s.sample_columns_window(0, k, 5, stream, 2, 128);
            let tail = s.sample_columns_window(k, 1_000 - k, 5, stream, 7, 128);
            let stitched: Vec<Vec<u32>> = head
                .iter()
                .zip(&tail)
                .map(|(h, t)| h.iter().chain(t).copied().collect())
                .collect();
            assert_eq!(stitched, whole, "split at {k}");
        }
        // An interior window equals the matching slice of the whole.
        let mid = s.sample_columns_window(300, 150, 5, stream, 4, 128);
        for (j, col) in mid.iter().enumerate() {
            assert_eq!(col[..], whole[j][300..450], "column {j}");
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let margins = vec![uniform_margin(4), uniform_margin(4), uniform_margin(4)];
        let err = CopulaSampler::new(&equicorrelation(3, -0.9), margins).unwrap_err();
        assert!(matches!(err, DpCopulaError::NotPositiveDefinite(_)));
    }

    #[test]
    fn margin_count_mismatch_is_an_error_not_a_panic() {
        let err = CopulaSampler::new(&Matrix::identity(2), vec![uniform_margin(4)]).unwrap_err();
        assert_eq!(
            err,
            DpCopulaError::MarginCountMismatch {
                margins: 1,
                dims: 2
            }
        );
        assert!(err.to_string().contains("marginal distribution"));
    }

    #[test]
    fn fast_profile_is_worker_count_invariant_with_itself() {
        let margins = vec![uniform_margin(100), uniform_margin(100)];
        let s = CopulaSampler::new(&equicorrelation(2, 0.6), margins).unwrap();
        let stream = crate::engine::STREAM_SAMPLER;
        let base =
            s.sample_columns_window_profile(SamplingProfile::Fast, 0, 5_000, 77, stream, 1, 512);
        for workers in [2, 7] {
            assert_eq!(
                s.sample_columns_window_profile(
                    SamplingProfile::Fast,
                    0,
                    5_000,
                    77,
                    stream,
                    workers,
                    512
                ),
                base,
                "workers={workers}"
            );
        }
        assert_eq!(base[0].len(), 5_000);
        // And it draws from the same copula: dependence survives.
        let tau = kendall_tau(&base[0], &base[1]);
        let expect = 2.0 / std::f64::consts::PI * 0.6_f64.asin();
        assert!((tau - expect).abs() < 0.05, "tau {tau} vs {expect}");
    }

    #[test]
    fn fast_profile_window_splits_seamlessly() {
        let margins = vec![uniform_margin(60), uniform_margin(60)];
        let s = CopulaSampler::new(&equicorrelation(2, 0.4), margins).unwrap();
        let stream = crate::engine::STREAM_SAMPLER;
        let fast = SamplingProfile::Fast;
        let whole = s.sample_columns_window_profile(fast, 0, 1_000, 5, stream, 3, 128);
        for k in [1usize, 127, 128, 129, 500, 999] {
            let head = s.sample_columns_window_profile(fast, 0, k, 5, stream, 2, 128);
            let tail = s.sample_columns_window_profile(fast, k, 1_000 - k, 5, stream, 7, 128);
            let stitched: Vec<Vec<u32>> = head
                .iter()
                .zip(&tail)
                .map(|(h, t)| h.iter().chain(t).copied().collect())
                .collect();
            assert_eq!(stitched, whole, "split at {k}");
        }
    }

    #[test]
    fn fast_profile_reproduces_margins() {
        let skew = MarginalDistribution::from_noisy_histogram(&[70.0, 20.0, 10.0]);
        let s =
            CopulaSampler::new(&equicorrelation(2, 0.0), vec![skew, uniform_margin(4)]).unwrap();
        let stream = crate::engine::STREAM_SAMPLER;
        let cols =
            s.sample_columns_window_profile(SamplingProfile::Fast, 0, 30_000, 2, stream, 4, 4096);
        let f0 = cols[0].iter().filter(|&&v| v == 0).count() as f64 / 30_000.0;
        let f2 = cols[0].iter().filter(|&&v| v == 2).count() as f64 / 30_000.0;
        assert!((f0 - 0.7).abs() < 0.02, "f0 {f0}");
        assert!((f2 - 0.1).abs() < 0.02, "f2 {f2}");
    }

    #[test]
    fn profile_names_are_stable() {
        assert_eq!(SamplingProfile::Reference.name(), "reference");
        assert_eq!(SamplingProfile::Fast.name(), "fast");
        assert_eq!(SamplingProfile::default(), SamplingProfile::Reference);
    }
}
