//! DPCopula-Hybrid (Algorithm 6): handling small-domain attributes.
//!
//! Kendall's tau (and the copula's continuity assumption) degrade on
//! attributes with fewer than ~10 values (§4.4 of the paper): a binary
//! attribute has almost nothing but ties. The hybrid therefore:
//!
//! 1. partitions the dataset on the small-domain attributes (the cross
//!    product of their values);
//! 2. releases each partition's cardinality with Laplace noise
//!    (`epsilon_1`; partitions are disjoint, so parallel composition
//!    applies);
//! 3. runs plain DPCopula with the remaining `epsilon - epsilon_1` on the
//!    large-domain attributes *within* each partition (again parallel
//!    composition across partitions);
//! 4. concatenates the partitions' synthetic data, re-attaching the
//!    small-domain values.

use crate::error::{validate_columns, DpCopulaError};
use crate::synthesizer::{DpCopula, DpCopulaConfig};
use dpmech::{laplace_noise, Epsilon};
use rngkit::Rng;
use std::collections::HashMap;

/// Domain-size threshold below which an attribute is "small" (the paper
/// uses 10).
pub const SMALL_DOMAIN_THRESHOLD: usize = 10;

/// How the partition cardinalities of step 2 are released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountMethod {
    /// Independent `Lap(1/epsilon_1)` per partition (the paper's choice;
    /// Dwork's method over the disjoint partitions).
    #[default]
    Laplace,
    /// Two-sided geometric noise — integer counts, no rounding step.
    Geometric,
    /// Barak et al.'s Fourier contingency table over the small attributes
    /// (requires them all binary; falls back to Laplace otherwise).
    /// Marginals of the released counts are mutually consistent.
    Barak,
}

/// Configuration of the hybrid synthesizer.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Configuration of the per-partition DPCopula runs. Its `epsilon` is
    /// the *total* budget; the hybrid carves `count_fraction` out of it
    /// for the partition counts.
    pub base: DpCopulaConfig,
    /// Fraction of the budget spent on noisy partition counts
    /// (`epsilon_1` of Algorithm 6).
    pub count_fraction: f64,
    /// Attributes with domains strictly smaller than this partition the
    /// data.
    pub small_domain_threshold: usize,
    /// Mechanism releasing the partition cardinalities.
    pub count_method: CountMethod,
}

impl HybridConfig {
    /// Defaults: 10% of the budget on counts, threshold 10, Laplace
    /// counts.
    pub fn new(base: DpCopulaConfig) -> Self {
        Self {
            base,
            count_fraction: 0.1,
            small_domain_threshold: SMALL_DOMAIN_THRESHOLD,
            count_method: CountMethod::default(),
        }
    }
}

/// Result of a hybrid synthesis.
#[derive(Debug, Clone)]
pub struct HybridSynthesis {
    /// Synthetic records, column-major, in the *original* attribute order
    /// (small-domain attributes included).
    pub columns: Vec<Vec<u32>>,
    /// Number of partitions induced by the small-domain attributes.
    pub partitions: usize,
    /// Indices of the attributes that were treated as small-domain.
    pub small_attributes: Vec<usize>,
}

/// The hybrid synthesizer of Algorithm 6.
#[derive(Debug, Clone, Copy)]
pub struct HybridSynthesizer {
    config: HybridConfig,
}

impl HybridSynthesizer {
    /// Creates the synthesizer.
    pub fn new(config: HybridConfig) -> Self {
        assert!(
            config.count_fraction > 0.0 && config.count_fraction < 1.0,
            "count fraction must be in (0,1)"
        );
        Self { config }
    }

    /// Runs Algorithm 6.
    ///
    /// If no attribute is small-domain this degrades to plain DPCopula
    /// with the full budget (no count noise is spent).
    pub fn synthesize<R: Rng + ?Sized>(
        &self,
        columns: &[Vec<u32>],
        domains: &[usize],
        rng: &mut R,
    ) -> Result<HybridSynthesis, DpCopulaError> {
        validate_columns(columns, domains)?;
        let cfg = &self.config;
        let m = columns.len();

        let small: Vec<usize> = (0..m)
            .filter(|&j| domains[j] < cfg.small_domain_threshold)
            .collect();
        let large: Vec<usize> = (0..m)
            .filter(|&j| domains[j] >= cfg.small_domain_threshold)
            .collect();

        if small.is_empty() {
            let out = DpCopula::new(cfg.base).synthesize(columns, domains, rng)?;
            return Ok(HybridSynthesis {
                columns: out.columns,
                partitions: 1,
                small_attributes: Vec::new(),
            });
        }

        let eps_total = cfg.base.epsilon;
        let eps_counts = eps_total.fraction(cfg.count_fraction);
        let eps_copula =
            Epsilon::new(eps_total.value() - eps_counts.value()).map_err(DpCopulaError::from)?;

        // Group row indices by their small-attribute combination.
        let n = columns[0].len();
        let mut groups: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        #[allow(clippy::needless_range_loop)] // row indexes several columns
        for row in 0..n {
            let key: Vec<u32> = small.iter().map(|&j| columns[j][row]).collect();
            groups.entry(key).or_default().push(row);
        }
        // Also include empty combinations so their (pure-noise) counts are
        // released, as Algorithm 6 prescribes for all prod|A_i| partitions.
        let mut all_keys: Vec<Vec<u32>> = Vec::new();
        build_keys(&small, domains, &mut Vec::new(), &mut all_keys);

        // For the Barak count method: one consistent contingency-table
        // release over the small attributes (all-binary only).
        let all_binary = small.iter().all(|&j| domains[j] == 2);
        let barak = if cfg.count_method == CountMethod::Barak && all_binary {
            let small_cols: Vec<Vec<u32>> = small.iter().map(|&j| columns[j].clone()).collect();
            Some(dphist::barak::BarakTable::publish(
                &small_cols,
                eps_counts,
                rng,
            ))
        } else {
            None
        };
        let geometric = dpmech::GeometricMechanism::new(eps_counts, 1.0);

        let mut out_columns: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut partitions = 0usize;
        for key in all_keys {
            partitions += 1;
            let rows = groups.get(&key).map(Vec::as_slice).unwrap_or(&[]);
            // Step 2: noisy cardinality (sensitivity 1; disjoint partitions
            // => parallel composition, each uses the full eps_counts).
            let n_out = match (&barak, cfg.count_method) {
                (Some(table), _) => {
                    let idx: usize = key
                        .iter()
                        .enumerate()
                        .map(|(slot, &v)| (v as usize) << slot)
                        .sum();
                    table.cell(idx).round().max(0.0) as usize
                }
                (None, CountMethod::Geometric) => {
                    geometric.release(rows.len() as i64, rng).max(0) as usize
                }
                (None, _) => {
                    let noisy = rows.len() as f64 + laplace_noise(rng, 1.0 / eps_counts.value());
                    noisy.round().max(0.0) as usize
                }
            };
            if n_out == 0 {
                continue;
            }

            let synth_large: Vec<Vec<u32>> = if large.is_empty() {
                Vec::new()
            } else if rows.len() < 2 {
                // Too few records to fit a copula: emit uniform draws over
                // the large domains (least-informative fallback; the count
                // is still correct).
                large
                    .iter()
                    .map(|&j| {
                        (0..n_out)
                            .map(|_| rng.gen_range(0..domains[j] as u32))
                            .collect()
                    })
                    .collect()
            } else {
                // Step 3: per-partition DPCopula on the large attributes
                // with the remaining budget.
                let part_cols: Vec<Vec<u32>> = large
                    .iter()
                    .map(|&j| rows.iter().map(|&r| columns[j][r]).collect())
                    .collect();
                let part_domains: Vec<usize> = large.iter().map(|&j| domains[j]).collect();
                let mut base = cfg.base;
                base.epsilon = eps_copula;
                base.output_records = Some(n_out);
                DpCopula::new(base)
                    .synthesize(&part_cols, &part_domains, rng)?
                    .columns
            };

            // Reassemble rows in original attribute order.
            for (slot, &j) in small.iter().enumerate() {
                out_columns[j].extend(std::iter::repeat_n(key[slot], n_out));
            }
            for (slot, &j) in large.iter().enumerate() {
                out_columns[j].extend_from_slice(&synth_large[slot]);
            }
        }

        Ok(HybridSynthesis {
            columns: out_columns,
            partitions,
            small_attributes: small,
        })
    }
}

/// Enumerates the cross product of the small attributes' domains.
fn build_keys(small: &[usize], domains: &[usize], prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
    if prefix.len() == small.len() {
        out.push(prefix.clone());
        return;
    }
    let j = small[prefix.len()];
    for v in 0..domains[j] as u32 {
        prefix.push(v);
        build_keys(small, domains, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpmech::Epsilon;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    /// Data with one binary attribute and two large attributes whose
    /// distribution depends on the binary one.
    fn mixed_data(n: usize, seed: u64) -> (Vec<Vec<u32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gender: Vec<u32> = (0..n).map(|_| u32::from(rng.gen_bool(0.4))).collect();
        let age: Vec<u32> = gender
            .iter()
            .map(|&g| {
                if g == 0 {
                    rng.gen_range(0..50u32)
                } else {
                    rng.gen_range(40..96u32)
                }
            })
            .collect();
        let income: Vec<u32> = age.iter().map(|&a| (a * 10).min(999)).collect();
        (vec![gender, age, income], vec![2, 96, 1000])
    }

    fn base_config(eps: f64) -> DpCopulaConfig {
        DpCopulaConfig::kendall(Epsilon::new(eps).unwrap())
    }

    #[test]
    fn partitions_on_binary_attribute() {
        let (cols, domains) = mixed_data(4_000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let h = HybridSynthesizer::new(HybridConfig::new(base_config(2.0)));
        let out = h.synthesize(&cols, &domains, &mut rng).unwrap();
        assert_eq!(out.partitions, 2);
        assert_eq!(out.small_attributes, vec![0]);
        assert_eq!(out.columns.len(), 3);
        // Cardinality near the original (noisy counts with eps 0.2).
        let n_out = out.columns[0].len();
        assert!((n_out as f64 - 4_000.0).abs() < 100.0, "n_out {n_out}");
        // Group sizes approximately preserved.
        let g1 = out.columns[0].iter().filter(|&&g| g == 1).count() as f64;
        assert!((g1 / n_out as f64 - 0.4).abs() < 0.05);
    }

    #[test]
    fn per_partition_structure_is_preserved() {
        let (cols, domains) = mixed_data(8_000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let h = HybridSynthesizer::new(HybridConfig::new(base_config(4.0)));
        let out = h.synthesize(&cols, &domains, &mut rng).unwrap();
        // Within gender 1, ages concentrate in 40..96.
        let ages_g1: Vec<u32> = out.columns[1]
            .iter()
            .zip(&out.columns[0])
            .filter(|(_, &g)| g == 1)
            .map(|(&a, _)| a)
            .collect();
        let mean_g1 = ages_g1.iter().map(|&a| f64::from(a)).sum::<f64>() / ages_g1.len() as f64;
        let ages_g0: Vec<u32> = out.columns[1]
            .iter()
            .zip(&out.columns[0])
            .filter(|(_, &g)| g == 0)
            .map(|(&a, _)| a)
            .collect();
        let mean_g0 = ages_g0.iter().map(|&a| f64::from(a)).sum::<f64>() / ages_g0.len() as f64;
        assert!(
            mean_g1 > mean_g0 + 20.0,
            "group means g1={mean_g1} g0={mean_g0}"
        );
    }

    #[test]
    fn no_small_attributes_degrades_to_plain_dpcopula() {
        let cols = vec![
            (0..1000u32).map(|i| i % 50).collect::<Vec<_>>(),
            (0..1000u32).map(|i| (i * 3) % 50).collect::<Vec<_>>(),
        ];
        let mut rng = StdRng::seed_from_u64(5);
        let h = HybridSynthesizer::new(HybridConfig::new(base_config(1.0)));
        let out = h.synthesize(&cols, &[50, 50], &mut rng).unwrap();
        assert_eq!(out.partitions, 1);
        assert!(out.small_attributes.is_empty());
        assert_eq!(out.columns[0].len(), 1000);
    }

    #[test]
    fn all_small_attributes_is_a_noisy_contingency_table() {
        let mut rng = StdRng::seed_from_u64(6);
        let a: Vec<u32> = (0..2000).map(|_| rng.gen_range(0..2)).collect();
        let b: Vec<u32> = (0..2000).map(|_| rng.gen_range(0..3)).collect();
        let cols = vec![a, b];
        let h = HybridSynthesizer::new(HybridConfig::new(base_config(2.0)));
        let out = h.synthesize(&cols, &[2, 3], &mut rng).unwrap();
        assert_eq!(out.partitions, 6);
        // Total cardinality close to 2000.
        let n_out = out.columns[0].len();
        assert!((n_out as f64 - 2000.0).abs() < 150.0, "n_out {n_out}");
    }

    #[test]
    fn geometric_counts_preserve_cardinality() {
        let (cols, domains) = mixed_data(3_000, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let mut cfg = HybridConfig::new(base_config(2.0));
        cfg.count_method = CountMethod::Geometric;
        let out = HybridSynthesizer::new(cfg)
            .synthesize(&cols, &domains, &mut rng)
            .unwrap();
        let n_out = out.columns[0].len();
        assert!((n_out as f64 - 3_000.0).abs() < 100.0, "n_out {n_out}");
    }

    #[test]
    fn barak_counts_are_consistent_and_accurate() {
        let mut rng = StdRng::seed_from_u64(13);
        // Two binary attributes + one large one.
        let n = 6_000;
        let a: Vec<u32> = (0..n).map(|_| u32::from(rng.gen_bool(0.3))).collect();
        let b: Vec<u32> = (0..n).map(|_| u32::from(rng.gen_bool(0.6))).collect();
        let big: Vec<u32> = (0..n as u32).map(|i| i % 200).collect();
        let cols = vec![a.clone(), b, big];
        let mut cfg = HybridConfig::new(base_config(2.0));
        cfg.count_method = CountMethod::Barak;
        let out = HybridSynthesizer::new(cfg)
            .synthesize(&cols, &[2, 2, 200], &mut rng)
            .unwrap();
        assert_eq!(out.partitions, 4);
        let n_out = out.columns[0].len();
        assert!((n_out as f64 - n as f64).abs() < 150.0, "n_out {n_out}");
        // The a=1 rate should track the data.
        let a1 = out.columns[0].iter().filter(|&&v| v == 1).count() as f64;
        let truth = a.iter().filter(|&&v| v == 1).count() as f64 / n as f64;
        assert!(
            (a1 / n_out as f64 - truth).abs() < 0.05,
            "a1 rate {} vs {truth}",
            a1 / n_out as f64
        );
    }

    #[test]
    fn barak_falls_back_for_non_binary_small_attributes() {
        let mut rng = StdRng::seed_from_u64(14);
        // A ternary small attribute: Barak cannot apply, Laplace fallback.
        let n = 2_000;
        let tri: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
        let big: Vec<u32> = (0..n as u32).map(|i| i % 100).collect();
        let mut cfg = HybridConfig::new(base_config(2.0));
        cfg.count_method = CountMethod::Barak;
        let out = HybridSynthesizer::new(cfg)
            .synthesize(&[tri, big], &[3, 100], &mut rng)
            .unwrap();
        assert_eq!(out.partitions, 3);
        let n_out = out.columns[0].len();
        assert!((n_out as f64 - n as f64).abs() < 100.0, "n_out {n_out}");
    }

    #[test]
    #[should_panic(expected = "count fraction")]
    fn rejects_bad_count_fraction() {
        let mut cfg = HybridConfig::new(base_config(1.0));
        cfg.count_fraction = 1.5;
        let _ = HybridSynthesizer::new(cfg);
    }
}
