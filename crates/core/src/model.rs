//! Fit-once / sample-many serving: [`FittedModel`] wraps a
//! [`ModelArtifact`] with a validated, ready-to-sample copula, so a
//! deployment fits a model one time (spending its ε budget), persists it
//! as a `.dpcm` artifact, and thereafter serves unbounded synthetic rows
//! — on any machine, at any worker count — without ever touching the raw
//! data or the budget again.
//!
//! ## Why serving is free (the DP argument)
//!
//! Differential privacy is closed under post-processing: any function of
//! an ε-DP release is itself ε-DP at no additional cost. The artifact
//! stores exactly the two ε-budgeted releases of the fit — the noisy
//! marginal histograms and the noisy (repaired) correlation matrix — and
//! sampling reads *only* those. However many rows are served, from
//! however many artifact copies, the privacy guarantee stays the ledger's
//! recorded ε.
//!
//! ## Deterministic row windows
//!
//! [`FittedModel::sample_range`] generates the absolute row window
//! `[offset, offset + n)` of a conceptually infinite synthetic row space.
//! Rows are gridded into fixed chunks (`provenance.sample_chunk` rows);
//! chunk `c` draws from `parkit::stream_rng(base_seed, sampler_stream,
//! c)`, so every row is a pure function of the artifact plus its absolute
//! index. Horizontally sharded servers that each own a disjoint row range
//! therefore produce disjoint, non-overlapping rows that concatenate to
//! exactly the single-machine output — and `sample_range(0, n)`
//! reproduces `synthesize_staged`'s released rows bit-for-bit.

use crate::empirical::MarginalDistribution;
use crate::engine::{EngineOptions, PipelineReport, STREAM_SAMPLER};
use crate::error::DpCopulaError;
use crate::sampler::{CopulaSampler, SamplingProfile};
use crate::synthesizer::DpCopula;
use crate::tcopula::TCopulaSampler;
use dphist::MarginRegistry;
use mathkit::correlation::is_correlation_shaped;
use modelstore::{
    AttributeSpec, BudgetEntry, BudgetLedger, CopulaFamily, ModelArtifact, RngProvenance,
    StoreError,
};
use obskit::names::{
    MODELSTORE_CORRUPTION_REJECTS_TOTAL, SAMPLING_PROFILE_ROWS_TOTAL, SERVE_ROWS_TOTAL,
    SERVE_WINDOWS_TOTAL, STAGE_SERVE,
};
use obskit::{MetricsSink, Unit};
use std::path::Path;

/// The stream-key derivation scheme recorded in artifact provenance —
/// pins `parkit::stream_rng`'s triple-SplitMix64 derivation over
/// xoshiro256++ states.
pub const STREAM_SCHEME: &str = "splitmix64x3/xoshiro256++";

/// The artifact fields that do not come from the fitted parts: the
/// configured budget total, the margin-method provenance name, and the
/// sampling provenance knobs.
pub(crate) struct ArtifactMeta<'a> {
    /// The configured total ε (the ledger's `total`).
    pub epsilon_total: f64,
    /// Registry name of the margin mechanism.
    pub margin_method: &'a str,
    /// The base seed every stream generator derives from.
    pub base_seed: u64,
    /// Rows per sampling chunk (already clamped positive).
    pub sample_chunk: u64,
}

/// Packages fitted parts into the released [`ModelArtifact`] — the one
/// assembly path shared by the eager fit, the streaming fit and the
/// distributed-shard merge, so all three release identical bytes for
/// identical parts.
pub(crate) fn assemble_artifact(
    meta: &ArtifactMeta<'_>,
    schema: Vec<AttributeSpec>,
    parts: crate::engine::FitParts,
) -> ModelArtifact {
    let mut entries = vec![BudgetEntry {
        label: "margins".into(),
        epsilon: parts.epsilon_margins,
    }];
    if parts.epsilon_correlations > 0.0 {
        entries.push(BudgetEntry {
            label: "correlation".into(),
            epsilon: parts.epsilon_correlations,
        });
    }
    ModelArtifact {
        schema,
        margin_method: meta.margin_method.to_string(),
        margins: parts.noisy_margins,
        correlation: parts.correlation,
        family: CopulaFamily::Gaussian,
        ledger: BudgetLedger {
            total: meta.epsilon_total,
            entries,
            shard_entries: parts.shard_entries,
        },
        provenance: RngProvenance {
            base_seed: meta.base_seed,
            sample_chunk: meta.sample_chunk,
            sampler_stream: STREAM_SAMPLER,
            scheme: STREAM_SCHEME.into(),
            shards: parts.shards,
        },
    }
}

/// Tolerance for the on-load unit-diagonal / symmetry / range check of
/// the stored correlation matrix. The fit writes exact repaired values,
/// so anything beyond tiny float formatting noise is damage.
const CORRELATION_TOL: f64 = 1e-8;

/// A loaded (or freshly fitted) model, validated and ready to serve.
#[derive(Debug, Clone)]
pub struct FittedModel {
    artifact: ModelArtifact,
    sampler: ServingSampler,
    sink: MetricsSink,
}

/// The family-specific sampling back-end.
#[derive(Debug, Clone)]
enum ServingSampler {
    Gaussian(CopulaSampler),
    StudentT(TCopulaSampler),
}

impl FittedModel {
    /// Validates an artifact and builds the serving model.
    ///
    /// On-load validation re-checks everything sampling will rely on,
    /// refusing with [`DpCopulaError::CorruptModel`] instead of letting a
    /// damaged model panic (or silently mis-sample) downstream:
    ///
    /// * schema non-empty; one margin histogram per attribute, each with
    ///   exactly its domain's bin count;
    /// * margin-method provenance resolves in the builtin
    ///   [`MarginRegistry`];
    /// * correlation matrix has unit diagonal, symmetry and entries in
    ///   `[-1, 1]`;
    /// * the matrix is positive definite — checked by the same Cholesky
    ///   path sampling uses (Algorithm 5's repair guarantees this for
    ///   anything the fit actually wrote).
    pub fn from_artifact(artifact: ModelArtifact) -> Result<Self, DpCopulaError> {
        let corrupt = |reason: String| DpCopulaError::CorruptModel { reason };
        let m = artifact.schema.len();
        if m == 0 {
            return Err(corrupt("schema has no attributes".into()));
        }
        if artifact.margins.len() != m {
            return Err(corrupt(format!(
                "{} margins for {m} schema attributes",
                artifact.margins.len()
            )));
        }
        for (attr, counts) in artifact.schema.iter().zip(&artifact.margins) {
            if counts.len() != attr.domain {
                return Err(corrupt(format!(
                    "margin of `{}` has {} bins for domain {}",
                    attr.name,
                    counts.len(),
                    attr.domain
                )));
            }
            if counts.iter().any(|c| !c.is_finite()) {
                return Err(corrupt(format!(
                    "margin of `{}` contains non-finite counts",
                    attr.name
                )));
            }
        }
        if !MarginRegistry::builtin().contains(&artifact.margin_method) {
            return Err(corrupt(format!(
                "margin method `{}` is not a known MarginRegistry name",
                artifact.margin_method
            )));
        }
        let p = &artifact.correlation;
        if p.rows() != m || p.cols() != m {
            return Err(corrupt(format!(
                "{}x{} correlation matrix for {m} attributes",
                p.rows(),
                p.cols()
            )));
        }
        if !is_correlation_shaped(p, CORRELATION_TOL) {
            return Err(corrupt(
                "correlation matrix is not unit-diagonal symmetric with entries in [-1, 1]".into(),
            ));
        }
        let margins: Vec<MarginalDistribution> = artifact
            .margins
            .iter()
            .map(|noisy| MarginalDistribution::from_noisy_histogram(noisy))
            .collect();
        let sampler = match artifact.family {
            CopulaFamily::Gaussian => {
                // The sampler's own error already names the violated
                // invariant ("not positive definite" / margin count).
                ServingSampler::Gaussian(
                    CopulaSampler::new(p, margins).map_err(|e| corrupt(e.to_string()))?,
                )
            }
            CopulaFamily::StudentT { dof } => {
                if !dof.is_finite() || dof <= 0.0 {
                    return Err(corrupt(format!(
                        "student-t copula with invalid degrees of freedom {dof}"
                    )));
                }
                ServingSampler::StudentT(TCopulaSampler::new(p, dof, margins).map_err(|e| {
                    corrupt(format!("correlation matrix is not positive definite: {e}"))
                })?)
            }
            CopulaFamily::Hybrid { .. } => {
                return Err(DpCopulaError::UnsupportedModel {
                    reason: "hybrid-family artifacts cannot be served yet (the v1 format \
                             reserves the tag, but the histogram component is not stored)"
                        .into(),
                });
            }
        };
        if artifact.provenance.sample_chunk == 0 {
            return Err(corrupt("provenance sample_chunk must be positive".into()));
        }
        Ok(Self {
            artifact,
            sampler,
            sink: MetricsSink::off(),
        })
    }

    /// Loads and validates a `.dpcm` artifact from disk. Codec damage
    /// (bad checksum, truncation, unknown version) and semantic damage
    /// (indefinite matrix, shape mismatches) both surface as
    /// [`DpCopulaError::CorruptModel`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DpCopulaError> {
        Self::from_artifact(ModelArtifact::load(path)?)
    }

    /// [`FittedModel::load`] with serving observability: byte and
    /// section-parse metrics from the decoder, `serve/load` /
    /// `serve/validate` spans, and a corruption-reject counter that
    /// covers semantic validation failures as well as codec damage. The
    /// loaded model keeps `sink` for its serving-path metrics.
    pub fn load_observed(
        path: impl AsRef<Path>,
        sink: &MetricsSink,
    ) -> Result<Self, DpCopulaError> {
        let span = sink.span("serve/load");
        let bytes = std::fs::read(path).map_err(StoreError::from);
        drop(span);
        let artifact = modelstore::decode_observed(&bytes?, sink)?;
        let span = sink.span("serve/validate");
        let model = Self::from_artifact(artifact);
        drop(span);
        match model {
            Ok(mut m) => {
                m.sink = sink.clone();
                Ok(m)
            }
            Err(e) => {
                // Codec damage is already counted inside the decoder;
                // this counts models that decoded cleanly but failed
                // semantic validation.
                sink.add(MODELSTORE_CORRUPTION_REJECTS_TOTAL, Unit::Count, 1);
                Err(e)
            }
        }
    }

    /// Routes this model's serving metrics (window spans, rows served,
    /// per-chunk latency) to `sink`. Freshly validated models start with
    /// a disabled sink.
    pub fn set_metrics_sink(&mut self, sink: MetricsSink) {
        self.sink = sink;
    }

    /// Persists the model as a `.dpcm` artifact.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        self.artifact.save(path)
    }

    /// The underlying artifact (schema, margins, matrix, ledger,
    /// provenance).
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.artifact.schema.len()
    }

    /// Per-attribute domain sizes.
    pub fn domains(&self) -> Vec<usize> {
        self.artifact.domains()
    }

    /// Renames the schema's attributes (e.g. to the CSV header names the
    /// fit input carried).
    ///
    /// # Panics
    /// Panics when `names.len() != self.dims()`.
    pub fn set_attribute_names<S: AsRef<str>>(&mut self, names: &[S]) {
        assert_eq!(names.len(), self.dims(), "one name per attribute");
        for (attr, name) in self.artifact.schema.iter_mut().zip(names) {
            attr.name = name.as_ref().to_string();
        }
    }

    /// Draws the absolute row window `[offset, offset + n)`, column-major,
    /// fanned out across `workers` threads.
    ///
    /// Bit-identical at any worker count and under any window split:
    /// `sample_range(0, N)` equals `sample_range(0, k)` concatenated with
    /// `sample_range(k, N - k)` for every `k` — each worker of a sharded
    /// deployment owns a window and the shards jointly reproduce the
    /// one-machine output. `sample_range(0, n)` also reproduces
    /// `synthesize_staged`'s sampled rows for the same seed and chunk.
    pub fn sample_range(&self, offset: usize, n: usize, workers: usize) -> Vec<Vec<u32>> {
        self.sample_range_profiled(SamplingProfile::Reference, offset, n, workers)
    }

    /// [`FittedModel::sample_range`] under an explicit
    /// [`SamplingProfile`]. `Reference` reproduces the pinned serving
    /// bytes; `Fast` serves an equally valid draw from the same model at
    /// much higher throughput, deterministic with itself at any worker
    /// count or window split. Student-t models have no vectorised path
    /// yet and serve the reference stream under either profile.
    pub fn sample_range_profiled(
        &self,
        profile: SamplingProfile,
        offset: usize,
        n: usize,
        workers: usize,
    ) -> Vec<Vec<u32>> {
        let sink = &self.sink;
        let span = sink.span("serve/window");
        sink.add(SERVE_WINDOWS_TOTAL, Unit::Count, 1);
        sink.add(SERVE_ROWS_TOTAL, Unit::Count, n as u64);
        sink.add_labeled(
            SAMPLING_PROFILE_ROWS_TOTAL,
            &[("profile", profile.name())],
            Unit::Count,
            n as u64,
        );
        let prov = &self.artifact.provenance;
        let chunk = prov.sample_chunk as usize;
        let out = match &self.sampler {
            ServingSampler::Gaussian(s) => s.sample_columns_window_profile_observed(
                profile,
                offset,
                n,
                prov.base_seed,
                prov.sampler_stream,
                workers,
                chunk,
                sink,
                STAGE_SERVE,
            ),
            ServingSampler::StudentT(s) => {
                let d = self.dims();
                let windows = parkit::chunk_windows(offset, n, chunk);
                let pieces: Vec<Vec<Vec<u32>>> =
                    parkit::par_map_observed(workers, &windows, sink, STAGE_SERVE, |_, w| {
                        let mut rng =
                            parkit::stream_rng(prov.base_seed, prov.sampler_stream, w.id as u64);
                        let mut cols = vec![Vec::with_capacity(w.take); d];
                        let mut buf = vec![0u32; d];
                        for _ in 0..w.skip {
                            s.sample_record(&mut rng, &mut buf);
                        }
                        for _ in 0..w.take {
                            s.sample_record(&mut rng, &mut buf);
                            for (col, &v) in cols.iter_mut().zip(&buf) {
                                col.push(v);
                            }
                        }
                        cols
                    });
                let mut out = vec![Vec::with_capacity(n); d];
                for piece in pieces {
                    for (col, mut part) in out.iter_mut().zip(piece) {
                        col.append(&mut part);
                    }
                }
                out
            }
        };
        drop(span);
        out
    }

    /// Checked variant of [`sample_range`](Self::sample_range) for
    /// windows that come from untrusted input (CLI flags, RPC requests):
    /// a window whose end would overflow the addressable row space is
    /// refused with [`DpCopulaError::RowWindowOverflow`] instead of
    /// panicking inside the chunk-grid math.
    pub fn try_sample_range(
        &self,
        offset: usize,
        n: usize,
        workers: usize,
    ) -> Result<Vec<Vec<u32>>, DpCopulaError> {
        self.try_sample_range_profiled(SamplingProfile::Reference, offset, n, workers)
    }

    /// Checked variant of
    /// [`sample_range_profiled`](Self::sample_range_profiled).
    pub fn try_sample_range_profiled(
        &self,
        profile: SamplingProfile,
        offset: usize,
        n: usize,
        workers: usize,
    ) -> Result<Vec<Vec<u32>>, DpCopulaError> {
        if offset.checked_add(n).is_none() {
            return Err(DpCopulaError::RowWindowOverflow { offset, n });
        }
        Ok(self.sample_range_profiled(profile, offset, n, workers))
    }

    /// Convenience for `sample_range(0, n, workers)`.
    pub fn sample_columns(&self, n: usize, workers: usize) -> Vec<Vec<u32>> {
        self.sample_range(0, n, workers)
    }
}

impl DpCopula {
    /// Fits the model — stages 1–4 of the staged pipeline, everything
    /// that touches the raw data and spends budget — and packages the
    /// releases as a durable, self-describing [`FittedModel`].
    ///
    /// The returned report's sampling stage is zero: sampling is the
    /// caller's post-processing, via [`FittedModel::sample_range`] now or
    /// after a save/load round-trip, and
    /// `fit_staged(..).sample_range(0, n)` is bit-identical to
    /// `synthesize_staged(..)` with `output_records = n` at the same
    /// `(base_seed, sample_chunk)`.
    pub fn fit_staged(
        &self,
        columns: &[Vec<u32>],
        domains: &[usize],
        base_seed: u64,
        opts: &EngineOptions,
    ) -> Result<(FittedModel, PipelineReport), DpCopulaError> {
        self.fit_staged_with(columns, domains, base_seed, opts, &MetricsSink::off())
    }

    /// [`DpCopula::fit_staged`] with a metrics sink: the four fit stages
    /// run under `pipeline/<stage>` spans and the fitted model keeps
    /// `sink` for its serving-path metrics. With a disabled sink this is
    /// exactly `fit_staged`.
    pub(crate) fn fit_staged_with(
        &self,
        columns: &[Vec<u32>],
        domains: &[usize],
        base_seed: u64,
        opts: &EngineOptions,
        sink: &MetricsSink,
    ) -> Result<(FittedModel, PipelineReport), DpCopulaError> {
        let workers = opts.workers.max(1);
        let pipeline = sink.span("pipeline");
        let (parts, timings) = self.fit_parts(columns, domains, base_seed, opts, sink)?;
        drop(pipeline);
        let cfg = self.config();
        let schema = domains
            .iter()
            .enumerate()
            .map(|(j, &d)| AttributeSpec::new(format!("attr{j}"), d))
            .collect();
        let artifact = assemble_artifact(
            &ArtifactMeta {
                epsilon_total: cfg.epsilon.value(),
                margin_method: cfg.margin.registry_name(),
                base_seed,
                sample_chunk: opts.sample_chunk.max(1) as u64,
            },
            schema,
            parts,
        );
        let mut model = FittedModel::from_artifact(artifact)?;
        model.sink = sink.clone();
        Ok((
            model,
            PipelineReport {
                timings,
                workers,
                base_seed,
            },
        ))
    }

    /// The streaming counterpart of [`DpCopula::fit_staged`]: fits from
    /// a [`datagen::RowSource`] without materializing its columns.
    ///
    /// The artifact's schema carries the source's attribute names (where
    /// the eager path, fed bare columns, has to invent `attr{j}` names),
    /// and under the Kendall estimator the resident fit state is bounded
    /// by the source's block size rather than its row count — the
    /// out-of-core path the CLI and the serving daemon use for inputs too
    /// large to hold. MLE and Spearman have no streamable sufficient
    /// statistics and fall back to materializing the source. Released
    /// values are byte-identical to the eager fit on the same data at the
    /// same `(config, base_seed, shards)`.
    pub fn fit_source(
        &self,
        source: &mut dyn datagen::RowSource,
        base_seed: u64,
        opts: &EngineOptions,
    ) -> Result<(FittedModel, PipelineReport), DpCopulaError> {
        self.fit_source_with(source, base_seed, opts, &MetricsSink::off())
    }

    /// [`DpCopula::fit_source`] with a metrics sink, mirroring
    /// [`DpCopula::fit_staged_with`].
    pub(crate) fn fit_source_with(
        &self,
        source: &mut dyn datagen::RowSource,
        base_seed: u64,
        opts: &EngineOptions,
        sink: &MetricsSink,
    ) -> Result<(FittedModel, PipelineReport), DpCopulaError> {
        let workers = opts.workers.max(1);
        let pipeline = sink.span("pipeline");
        let (parts, timings, schema, _n) = self.fit_parts_source(source, base_seed, opts, sink)?;
        drop(pipeline);
        let cfg = self.config();
        let artifact = assemble_artifact(
            &ArtifactMeta {
                epsilon_total: cfg.epsilon.value(),
                margin_method: cfg.margin.registry_name(),
                base_seed,
                sample_chunk: opts.sample_chunk.max(1) as u64,
            },
            schema,
            parts,
        );
        let mut model = FittedModel::from_artifact(artifact)?;
        model.sink = sink.clone();
        Ok((
            model,
            PipelineReport {
                timings,
                workers,
                base_seed,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesizer::DpCopulaConfig;
    use dpmech::Epsilon;
    use rngkit::rngs::StdRng;
    use rngkit::{Rng, SeedableRng};

    fn test_columns(m: usize, n: usize, domain: u32, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
        (0..m)
            .map(|j| {
                base.iter()
                    .map(|&v| (v + rng.gen_range(0..domain / 4) + j as u32) % domain)
                    .collect()
            })
            .collect()
    }

    fn fitted(seed: u64) -> FittedModel {
        let cols = test_columns(3, 2_000, 32, seed);
        let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));
        let (model, _) = dp
            .fit_staged(&cols, &[32, 32, 32], seed, &EngineOptions::with_workers(2))
            .unwrap();
        model
    }

    #[test]
    fn fit_then_sample_matches_synthesize_staged() {
        let cols = test_columns(3, 2_000, 32, 1);
        let domains = vec![32usize; 3];
        let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));
        let opts = EngineOptions::with_workers(2);
        let (synth, _) = dp.synthesize_staged(&cols, &domains, 42, &opts).unwrap();
        let (model, report) = dp.fit_staged(&cols, &domains, 42, &opts).unwrap();
        assert_eq!(report.timings.sampling, std::time::Duration::ZERO);
        assert_eq!(model.sample_range(0, 2_000, 4), synth.columns);
        assert_eq!(model.artifact().correlation, synth.correlation);
        assert_eq!(model.artifact().margins, synth.noisy_margins);
        let ledger = &model.artifact().ledger;
        assert!((ledger.spent() - 1.0).abs() < 1e-9);
        assert_eq!(ledger.total, 1.0);
    }

    #[test]
    fn sharded_fit_records_per_shard_provenance_and_round_trips() {
        let cols = test_columns(3, 2_000, 32, 2);
        let domains = vec![32usize; 3];
        let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));

        let mut opts = EngineOptions::with_workers(2);
        opts.shards = 4;
        let (model, _) = dp.fit_staged(&cols, &domains, 42, &opts).unwrap();
        let artifact = model.artifact();

        // Four shard records covering the rows exactly, stream indices
        // in shard order.
        assert_eq!(artifact.provenance.shards.len(), 4);
        assert_eq!(artifact.provenance.shards[0].row_start, 0);
        assert_eq!(artifact.provenance.shards[3].row_end, 2_000);
        for (s, info) in artifact.provenance.shards.iter().enumerate() {
            assert_eq!(info.seed_index, s as u64);
            assert!(info.row_end > info.row_start);
        }

        // Per-shard sub-ledgers: each shard spent the full eps1/m per
        // attribute on its disjoint rows, and the combined entries are
        // the per-label max — identical to the unsharded ledger.
        assert_eq!(artifact.ledger.shard_entries.len(), 4);
        let eps1 = 8.0 / 9.0; // split_ratio(8) of eps = 1.0
        for entries in &artifact.ledger.shard_entries {
            let margins: f64 = entries
                .iter()
                .filter(|e| e.label == "margins")
                .map(|e| e.epsilon)
                .sum();
            assert!((margins - eps1).abs() < 1e-8, "margins {margins}");
        }
        assert!((artifact.ledger.spent() - 1.0).abs() < 1e-9);

        // The sharded artifact uses format v2 and round-trips losslessly.
        let bytes = artifact.encode();
        assert_eq!(modelstore::probe_version(&bytes).unwrap(), 2);
        assert_eq!(&ModelArtifact::decode(&bytes).unwrap(), artifact);

        // The unsharded fit stays on v1 with no shard records at all.
        let (plain, _) = dp
            .fit_staged(&cols, &domains, 42, &EngineOptions::with_workers(2))
            .unwrap();
        assert!(plain.artifact().provenance.shards.is_empty());
        assert!(plain.artifact().ledger.shard_entries.is_empty());
        assert_eq!(
            modelstore::probe_version(&plain.artifact().encode()).unwrap(),
            1
        );
    }

    #[test]
    fn save_load_serve_round_trips_bit_identically() {
        let model = fitted(7);
        let dir = std::env::temp_dir().join(format!("dpcm_model_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.dpcm");
        model.save(&path).unwrap();
        let served = FittedModel::load(&path).unwrap();
        assert_eq!(served.artifact(), model.artifact());
        assert_eq!(
            served.sample_range(0, 500, 3),
            model.sample_range(0, 500, 1)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sample_range_shards_are_disjoint_and_seamless() {
        let model = fitted(9);
        let whole = model.sample_range(0, 3_000, 1);
        // Three disjoint shards, different worker counts, stitched.
        let shards = [
            model.sample_range(0, 1_000, 2),
            model.sample_range(1_000, 1_000, 7),
            model.sample_range(2_000, 1_000, 3),
        ];
        for j in 0..model.dims() {
            let stitched: Vec<u32> = shards.iter().flat_map(|s| s[j].iter().copied()).collect();
            assert_eq!(stitched, whole[j], "column {j}");
        }
    }

    #[test]
    fn overflowing_serving_windows_are_refused() {
        let model = fitted(8);
        let err = model.try_sample_range(usize::MAX - 5, 100, 2).unwrap_err();
        assert_eq!(
            err,
            DpCopulaError::RowWindowOverflow {
                offset: usize::MAX - 5,
                n: 100
            }
        );
        assert!(err.to_string().contains("overflows"), "{err}");
        // In-range windows behave exactly like the infallible path.
        assert_eq!(
            model.try_sample_range(10, 50, 2).unwrap(),
            model.sample_range(10, 50, 2)
        );
    }

    #[test]
    fn attribute_names_round_trip() {
        let mut model = fitted(3);
        model.set_attribute_names(&["age", "income", "hours"]);
        let names: Vec<&str> = model
            .artifact()
            .schema
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["age", "income", "hours"]);
    }

    #[test]
    fn corrupt_matrix_is_rejected_on_load() {
        let model = fitted(5);
        // Asymmetric matrix.
        let mut bad = model.artifact().clone();
        bad.correlation[(0, 1)] = 0.9;
        bad.correlation[(1, 0)] = -0.9;
        assert!(matches!(
            FittedModel::from_artifact(bad).unwrap_err(),
            DpCopulaError::CorruptModel { .. }
        ));
        // Non-unit diagonal.
        let mut bad = model.artifact().clone();
        bad.correlation[(2, 2)] = 1.5;
        assert!(matches!(
            FittedModel::from_artifact(bad).unwrap_err(),
            DpCopulaError::CorruptModel { .. }
        ));
        // Symmetric, unit diagonal, in range — but indefinite.
        let mut bad = model.artifact().clone();
        for i in 0..3 {
            for j in 0..3 {
                bad.correlation[(i, j)] = if i == j { 1.0 } else { -0.9 };
            }
        }
        let err = FittedModel::from_artifact(bad).unwrap_err();
        match err {
            DpCopulaError::CorruptModel { reason } => {
                assert!(reason.contains("positive definite"), "{reason}")
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn mismatched_margins_and_unknown_method_are_rejected() {
        let model = fitted(2);
        let mut bad = model.artifact().clone();
        bad.margins[0].push(1.0);
        assert!(matches!(
            FittedModel::from_artifact(bad).unwrap_err(),
            DpCopulaError::CorruptModel { .. }
        ));
        let mut bad = model.artifact().clone();
        bad.margin_method = "no-such-method".into();
        assert!(matches!(
            FittedModel::from_artifact(bad).unwrap_err(),
            DpCopulaError::CorruptModel { .. }
        ));
    }

    #[test]
    fn student_t_artifacts_serve_deterministic_windows() {
        let model = fitted(11);
        let mut artifact = model.artifact().clone();
        artifact.family = CopulaFamily::StudentT { dof: 5.0 };
        let t_model = FittedModel::from_artifact(artifact).unwrap();
        let whole = t_model.sample_range(0, 1_000, 1);
        let head = t_model.sample_range(0, 321, 4);
        let tail = t_model.sample_range(321, 679, 2);
        for j in 0..t_model.dims() {
            let stitched: Vec<u32> = head[j].iter().chain(&tail[j]).copied().collect();
            assert_eq!(stitched, whole[j], "column {j}");
        }
        // t sampling differs from the Gaussian path.
        assert_ne!(whole, model.sample_range(0, 1_000, 1));
    }

    #[test]
    fn hybrid_artifacts_are_refused_as_unsupported() {
        let mut artifact = fitted(4).artifact().clone();
        artifact.family = CopulaFamily::Hybrid { threshold: 8 };
        assert!(matches!(
            FittedModel::from_artifact(artifact).unwrap_err(),
            DpCopulaError::UnsupportedModel { .. }
        ));
    }

    #[test]
    fn corrupt_file_surfaces_precise_reason() {
        let model = fitted(6);
        let dir = std::env::temp_dir().join(format!("dpcm_corrupt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.dpcm");
        model.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match FittedModel::load(&path).unwrap_err() {
            DpCopulaError::CorruptModel { reason } => {
                assert!(reason.contains("offset"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
