//! Spearman's rank correlation under differential privacy — the
//! alternative the paper *rejects* in §3.2 ("we choose to use Kendall's
//! tau instead of other correlation metrics such as Pearson or Spearman
//! ... \[Kendall\] has better statistical properties than Spearman").
//! Implemented so that the choice can be tested rather than taken on
//! faith: the `ablation_rank_correlation` experiment compares
//! DPCopula-Kendall against a DPCopula-Spearman variant built from this
//! module.
//!
//! For elliptical copulas the analogue of `rho = sin(pi/2 tau)` is
//! `rho = 2 sin(pi/6 rho_s)` (Pearson's 1907 relation for the Gaussian).
//!
//! ## Sensitivity
//!
//! `rho_s = 1 - 6 * sum d_i^2 / (n^3 - n)` with `d_i` the rank
//! differences. Adding one record (a) appends a new `d` of magnitude at
//! most `n`, and (b) shifts every existing rank by at most 1, changing
//! each `d_i` by at most 2 and therefore `sum d_i^2` by at most
//! `sum ((|d_i|+2)^2 - d_i^2) = 4 sum |d_i| + 4n <= 4 n^2 / sqrt(...)`.
//! Using `sum |d_i| <= n^2/2` (loose), the total change of
//! `6 sum d^2 / (n^3-n)` is at most `6 (n^2 + 2n^2 + 4n) / (n^3 - n)`
//! plus the denominator shift, bounded overall by `30/(n-1)` for
//! `n >= 3`. We release with `Delta = 30/(n-1)` — about 7.5x Kendall's
//! `4/(n+1)`, which is exactly why the paper prefers Kendall. The bound
//! is verified empirically by a property test.

use crate::engine::STREAM_SPEARMAN_NOISE;
use crate::error::DpCopulaError;
use dpmech::{laplace_noise, Epsilon};
use mathkit::correlation::{clamp_to_correlation, repair_positive_definite};
use mathkit::stats::ranks;
use mathkit::Matrix;
use rngkit::Rng;

/// Sample Spearman rank correlation (mid-ranks for ties).
///
/// # Panics
/// Panics when the slices differ in length or have fewer than 2 elements.
pub fn spearman_rho(x: &[u32], y: &[u32]) -> f64 {
    assert_eq!(x.len(), y.len(), "spearman_rho length mismatch");
    let n = x.len();
    assert!(n >= 2, "spearman_rho needs at least 2 observations");
    let xf: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
    let yf: Vec<f64> = y.iter().map(|&v| f64::from(v)).collect();
    let rx = ranks(&xf);
    let ry = ranks(&yf);
    // Pearson correlation of the ranks (correct under ties, reduces to
    // the 1 - 6 sum d^2 / (n^3 - n) formula without ties).
    mathkit::stats::pearson(&rx, &ry)
}

/// The conservative L1 sensitivity bound used for the DP release,
/// `Delta = 30 / (n - 1)` (see the module docs).
pub fn spearman_sensitivity(n: usize) -> f64 {
    assert!(n >= 2, "need at least 2 observations");
    30.0 / (n as f64 - 1.0)
}

/// Releases one pairwise Spearman coefficient under `epsilon`-DP.
pub fn dp_spearman_rho<R: Rng + ?Sized>(
    x: &[u32],
    y: &[u32],
    epsilon: Epsilon,
    rng: &mut R,
) -> f64 {
    spearman_rho(x, y) + laplace_noise(rng, spearman_sensitivity(x.len()) / epsilon.value())
}

/// The Spearman analogue of Algorithm 5: noisy pairwise `rho_s`, mapped
/// through `2 sin(pi/6 rho_s)`, clamped and repaired to a positive
/// definite correlation matrix. `eps2_total` is split over the `C(m,2)`
/// pairs.
pub fn dp_correlation_matrix_spearman<R: Rng + ?Sized>(
    columns: &[Vec<u32>],
    eps2_total: Epsilon,
    rng: &mut R,
) -> Matrix {
    let m = columns.len();
    assert!(m >= 1, "need at least one column");
    if m == 1 {
        return Matrix::identity(1);
    }
    let pairs = m * (m - 1) / 2;
    let eps_pair = eps2_total.divide(pairs);
    let mut p = Matrix::identity(m);
    for i in 0..m {
        for j in (i + 1)..m {
            let rho_s = dp_spearman_rho(&columns[i], &columns[j], eps_pair, rng);
            let r = 2.0 * (std::f64::consts::PI / 6.0 * rho_s.clamp(-1.0, 1.0)).sin();
            p[(i, j)] = r;
            p[(j, i)] = r;
        }
    }
    clamp_to_correlation(&mut p);
    repair_positive_definite(&p)
}

/// The staged-engine version of the Spearman estimator: per-column rank
/// vectors are computed once (one pure task per attribute) instead of
/// per pair, then the `C(m,2)` coefficients fan out across `workers`
/// threads with per-pair noise streams. Returns the **raw**
/// `2 sin(pi/6 rho_s)` matrix; clamping and the positive-definite repair
/// are a separate pipeline stage (see [`crate::engine`]).
///
/// Bit-identical at any worker count: pair `k`'s noise comes from
/// `stream_rng(base_seed, STREAM_SPEARMAN_NOISE, k)`.
///
/// Observability: fan-outs are recorded under
/// `parkit_*{stage="correlation"}` and per-pair noise draws under
/// `noise_draws_total{stage="correlation"}`; pass
/// [`obskit::MetricsSink::off`] to skip all recording.
pub fn dp_spearman_matrix_par(
    columns: &[Vec<u32>],
    eps2_total: Epsilon,
    base_seed: u64,
    workers: usize,
    sink: &obskit::MetricsSink,
) -> Result<Matrix, DpCopulaError> {
    let m = columns.len();
    if m == 0 {
        return Err(DpCopulaError::EmptyInput);
    }
    if m == 1 {
        return Ok(Matrix::identity(1));
    }
    let n = columns[0].len();
    if n < 2 {
        return Err(DpCopulaError::TooFewRecords {
            records: n,
            required: 2,
        });
    }
    let pairs = m * (m - 1) / 2;
    let eps_pair = eps2_total.divide(pairs);

    // Rank each column once — `spearman_rho` would redo this per pair.
    let rank_cols: Vec<Vec<f64>> =
        parkit::par_map_observed(workers, columns, sink, "correlation", |_, col| {
            let f: Vec<f64> = col.iter().map(|&v| f64::from(v)).collect();
            ranks(&f)
        });

    let pair_ids: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
        .collect();
    let coeffs = parkit::par_map_observed(workers, &pair_ids, sink, "correlation", |k, &(i, j)| {
        crate::engine::harvest_draws(sink, "correlation", || {
            let rho_s = mathkit::stats::pearson(&rank_cols[i], &rank_cols[j]);
            let mut rng = parkit::stream_rng(base_seed, STREAM_SPEARMAN_NOISE, k as u64);
            let noisy = rho_s + laplace_noise(&mut rng, spearman_sensitivity(n) / eps_pair.value());
            2.0 * (std::f64::consts::PI / 6.0 * noisy.clamp(-1.0, 1.0)).sin()
        })
    });

    let mut p = Matrix::identity(m);
    for (&(i, j), &r) in pair_ids.iter().zip(&coeffs) {
        p[(i, j)] = r;
        p[(j, i)] = r;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendall::kendall_sensitivity;
    use mathkit::cholesky::is_positive_definite;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn perfect_monotone_relations() {
        let x: Vec<u32> = (0..50).collect();
        assert!((spearman_rho(&x, &x) - 1.0).abs() < 1e-12);
        let rev: Vec<u32> = x.iter().rev().cloned().collect();
        assert!((spearman_rho(&x, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_classic_formula_without_ties() {
        // Classic example: d = rank differences.
        let x = vec![1u32, 2, 3, 4, 5];
        let y = vec![2u32, 1, 4, 3, 5];
        // d = (-1, 1, -1, 1, 0); sum d^2 = 4; rho = 1 - 24/120 = 0.8.
        assert!((spearman_rho(&x, &y) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn constant_column_gives_zero() {
        let x = vec![3u32; 10];
        let y: Vec<u32> = (0..10).collect();
        assert_eq!(spearman_rho(&x, &y), 0.0);
    }

    #[test]
    fn sensitivity_is_larger_than_kendalls() {
        // The quantitative core of the paper's §3.2 choice.
        for n in [10usize, 100, 10_000] {
            assert!(spearman_sensitivity(n) > 5.0 * kendall_sensitivity(n));
        }
    }

    #[test]
    fn empirical_sensitivity_respects_bound() {
        // Add one record to random datasets and check |delta rho_s| stays
        // under the 30/(n-1) bound.
        let mut rng = StdRng::seed_from_u64(1);
        use rngkit::Rng as _;
        for _ in 0..200 {
            let n = rng.gen_range(3..60);
            let x: Vec<u32> = (0..n).map(|_| rng.gen_range(0..20)).collect();
            let y: Vec<u32> = (0..n).map(|_| rng.gen_range(0..20)).collect();
            let base = spearman_rho(&x, &y);
            let mut x2 = x.clone();
            let mut y2 = y.clone();
            x2.push(rng.gen_range(0..20));
            y2.push(rng.gen_range(0..20));
            let grown = spearman_rho(&x2, &y2);
            assert!(
                (base - grown).abs() <= spearman_sensitivity(n),
                "delta {} exceeds bound {} at n={n}",
                (base - grown).abs(),
                spearman_sensitivity(n)
            );
        }
    }

    #[test]
    fn dp_release_concentrates_for_large_n() {
        let n = 20_000u32;
        let x: Vec<u32> = (0..n).collect();
        let y: Vec<u32> = x.iter().map(|&v| v / 3).collect();
        let exact = spearman_rho(&x, &y);
        let mut rng = StdRng::seed_from_u64(2);
        let eps = Epsilon::new(1.0).unwrap();
        let avg: f64 = (0..30)
            .map(|_| dp_spearman_rho(&x, &y, eps, &mut rng))
            .sum::<f64>()
            / 30.0;
        assert!((avg - exact).abs() < 0.01, "avg {avg} vs exact {exact}");
    }

    #[test]
    fn spearman_matrix_is_valid_correlation() {
        let mut rng = StdRng::seed_from_u64(3);
        use rngkit::Rng as _;
        let base: Vec<u32> = (0..5_000).map(|_| rng.gen_range(0..500)).collect();
        let cols: Vec<Vec<u32>> = (0..3)
            .map(|j| {
                base.iter()
                    .map(|&v| (v + rng.gen_range(0u32..80) + j) % 500)
                    .collect()
            })
            .collect();
        let p = dp_correlation_matrix_spearman(&cols, Epsilon::new(1.0).unwrap(), &mut rng);
        assert!(is_positive_definite(&p));
        assert!(mathkit::correlation::is_correlation_shaped(&p, 1e-9));
        assert!(p[(0, 1)] > 0.3, "p01 {}", p[(0, 1)]);
    }

    #[test]
    fn par_spearman_matrix_is_worker_count_invariant() {
        let mut rng = StdRng::seed_from_u64(17);
        use rngkit::Rng as _;
        let base: Vec<u32> = (0..3_000).map(|_| rng.gen_range(0..200)).collect();
        let cols: Vec<Vec<u32>> = (0..4)
            .map(|j| {
                base.iter()
                    .map(|&v| (v + rng.gen_range(0u32..40) + j) % 200)
                    .collect()
            })
            .collect();
        let eps = Epsilon::new(1.0).unwrap();
        let one = dp_spearman_matrix_par(&cols, eps, 23, 1, &obskit::MetricsSink::off()).unwrap();
        for workers in [2, 7] {
            let p = dp_spearman_matrix_par(&cols, eps, 23, workers, &obskit::MetricsSink::off())
                .unwrap();
            assert_eq!(p, one, "workers={workers}");
        }
        assert!(one[(0, 1)] > 0.2, "p01 {}", one[(0, 1)]);
    }

    #[test]
    fn par_spearman_matrix_rejects_degenerate_inputs() {
        let eps = Epsilon::new(1.0).unwrap();
        assert_eq!(
            dp_spearman_matrix_par(&[], eps, 1, 1, &obskit::MetricsSink::off()).unwrap_err(),
            DpCopulaError::EmptyInput
        );
        assert!(matches!(
            dp_spearman_matrix_par(
                &[vec![1u32], vec![2u32]],
                eps,
                1,
                1,
                &obskit::MetricsSink::off()
            )
            .unwrap_err(),
            DpCopulaError::TooFewRecords { .. }
        ));
        assert_eq!(
            dp_spearman_matrix_par(&[vec![1u32, 2]], eps, 1, 1, &obskit::MetricsSink::off())
                .unwrap(),
            Matrix::identity(1)
        );
    }

    #[test]
    fn gaussian_mapping_agrees_with_kendall_mapping() {
        // On clean Gaussian-copula data both mappings should estimate the
        // same rho.
        use mathkit::correlation::equicorrelation;
        use mathkit::dist::MultivariateNormal;
        let rho = 0.65;
        let mvn = MultivariateNormal::new(&equicorrelation(2, rho)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let cols: Vec<Vec<u32>> = mvn
            .sample_columns(&mut rng, 20_000)
            .into_iter()
            .map(|c| {
                c.into_iter()
                    .map(|z| ((mathkit::special::norm_cdf(z) * 1000.0) as u32).min(999))
                    .collect()
            })
            .collect();
        let rho_s = spearman_rho(&cols[0], &cols[1]);
        let from_spearman = 2.0 * (std::f64::consts::PI / 6.0 * rho_s).sin();
        let tau = crate::kendall::kendall_tau(&cols[0], &cols[1]);
        let from_kendall = (std::f64::consts::FRAC_PI_2 * tau).sin();
        assert!(
            (from_spearman - rho).abs() < 0.02,
            "spearman-> {from_spearman}"
        );
        assert!(
            (from_kendall - rho).abs() < 0.02,
            "kendall-> {from_kendall}"
        );
    }
}
