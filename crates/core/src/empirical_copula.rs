//! The empirical copula — the non-parametric dependence estimate the
//! paper mentions as an alternative for "data with special dependence
//! structures" (§3.2).
//!
//! `C_n(u) = (1/n) * #{ i : U_i1 <= u_1, ..., U_im <= u_m }` over the
//! pseudo-copula data. Used here as a *diagnostic*: the sup-distance
//! between the empirical copulas of the original and synthetic data
//! measures how much dependence structure survived — complementary to the
//! pairwise Kendall comparison in [`crate::convergence`] because it sees
//! higher-order (non-pairwise) structure too.
//!
//! Note this module performs no privacy accounting: it compares datasets
//! you already hold (e.g. original vs released), it does not release
//! anything new.

use crate::empirical::pseudo_copula_column;

/// An empirical copula built from a columnar dataset.
#[derive(Debug, Clone)]
pub struct EmpiricalCopula {
    /// Pseudo-copula data, column-major, each in `(0,1)`.
    u: Vec<Vec<f64>>,
}

impl EmpiricalCopula {
    /// Builds the empirical copula of a dataset.
    ///
    /// # Panics
    /// Panics on empty input or ragged columns.
    pub fn from_columns(columns: &[Vec<u32>]) -> Self {
        assert!(!columns.is_empty(), "need at least one column");
        let n = columns[0].len();
        assert!(n > 0, "need at least one record");
        for c in columns {
            assert_eq!(c.len(), n, "ragged columns");
        }
        Self {
            u: columns.iter().map(|c| pseudo_copula_column(c)).collect(),
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.u.len()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.u[0].len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates `C_n(point)`.
    ///
    /// # Panics
    /// Panics when `point.len() != self.dims()`.
    pub fn eval(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.dims(), "dimension mismatch");
        let n = self.len();
        let mut count = 0usize;
        'rows: for i in 0..n {
            for (col, &p) in self.u.iter().zip(point) {
                if col[i] > p {
                    continue 'rows;
                }
            }
            count += 1;
        }
        count as f64 / n as f64
    }

    /// Approximate sup-distance `max |C_a - C_b|` over a regular grid of
    /// `grid^m` evaluation points (exact maximisation is exponential; the
    /// grid bound converges as the grid refines).
    ///
    /// # Panics
    /// Panics when the copulas disagree on dimensionality or `grid == 0`.
    pub fn sup_distance(&self, other: &EmpiricalCopula, grid: usize) -> f64 {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        assert!(grid > 0, "grid must be positive");
        let m = self.dims();
        let mut point = vec![0.0; m];
        let mut idx = vec![0usize; m];
        let mut worst: f64 = 0.0;
        loop {
            for (p, &i) in point.iter_mut().zip(&idx) {
                *p = (i + 1) as f64 / (grid + 1) as f64;
            }
            worst = worst.max((self.eval(&point) - other.eval(&point)).abs());
            // Odometer.
            let mut d = m;
            loop {
                if d == 0 {
                    return worst;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < grid {
                    break;
                }
                idx[d] = 0;
                if d == 0 {
                    return worst;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copula_boundaries() {
        let cols = vec![vec![0u32, 1, 2, 3], vec![3u32, 2, 1, 0]];
        let c = EmpiricalCopula::from_columns(&cols);
        // C(1,...,1) = 1 (everything counted).
        assert_eq!(c.eval(&[1.0, 1.0]), 1.0);
        // C near 0 is 0.
        assert_eq!(c.eval(&[0.01, 0.01]), 0.0);
    }

    #[test]
    fn comonotone_copula_is_min() {
        let x: Vec<u32> = (0..100).collect();
        let cols = vec![x.clone(), x];
        let c = EmpiricalCopula::from_columns(&cols);
        // For comonotone data C(u, v) ~ min(u, v).
        for &(u, v) in &[(0.3, 0.7), (0.5, 0.5), (0.9, 0.2)] {
            let got = c.eval(&[u, v]);
            assert!((got - u.min(v)).abs() < 0.03, "C({u},{v}) = {got}");
        }
    }

    #[test]
    fn independent_copula_is_product() {
        // Grid data: every (i, j) pair exactly once => independence.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..20u32 {
            for j in 0..20u32 {
                a.push(i);
                b.push(j);
            }
        }
        let c = EmpiricalCopula::from_columns(&[a, b]);
        for &(u, v) in &[(0.25, 0.5), (0.8, 0.4)] {
            let got = c.eval(&[u, v]);
            assert!((got - u * v).abs() < 0.06, "C({u},{v}) = {got}");
        }
    }

    #[test]
    fn sup_distance_zero_for_identical() {
        let cols = vec![vec![5u32, 1, 9, 3], vec![2u32, 8, 4, 6]];
        let a = EmpiricalCopula::from_columns(&cols);
        let b = EmpiricalCopula::from_columns(&cols);
        assert_eq!(a.sup_distance(&b, 6), 0.0);
    }

    #[test]
    fn sup_distance_detects_dependence_flip() {
        let x: Vec<u32> = (0..200).collect();
        let up = EmpiricalCopula::from_columns(&[x.clone(), x.clone()]);
        let down = EmpiricalCopula::from_columns(&[x.clone(), x.iter().rev().cloned().collect()]);
        // Comonotone vs countermonotone: sup distance approaches 0.5.
        let d = up.sup_distance(&down, 8);
        assert!(d > 0.4, "distance {d}");
    }
}
