//! Distributed out-of-core fit: one process per shard, a coordinator
//! merge, and the streaming ingestion that feeds both.
//!
//! The fit phase reduces to mergeable sufficient statistics — per-shard
//! noisy margins and Kendall-τ layers ([`crate::shard`]) — so it splits
//! across processes with no loss of exactness:
//!
//! * [`fit_shard`] fits **one shard's** part of the input (a
//!   [`RowSource`] holding exactly that shard's rows) into a durable
//!   [`ShardArtifact`] (`.dpcs`), drawing the shard's margin noise and
//!   τ subsample from the same streams the in-process sharded fit would;
//! * [`merge_shards`] validates a complete set of `.dpcs` artifacts and
//!   folds them into a served [`FittedModel`] — running exactly the
//!   in-process merge half (margin sums, cross-shard concordance, pooled
//!   τ noise, per-label-max ledger), so `fit_shard × N` + `merge_shards`
//!   releases a `.dpcm` **byte-identical** to the single-process
//!   `fit --shards N` at the same seeds (pinned in
//!   `tests/distfit_identity.rs`);
//! * [`gather_source`] is the streaming gather the in-process fit uses
//!   to consume a [`RowSource`] without materializing the columns: block
//!   memory stays bounded by the source's chunk size, while the resident
//!   per-fit state is the exact histogram counts and the τ subsample.
//!
//! The ε accounting of the merge is the in-process sharded fit's
//! (DESIGN.md §12, restated for the wire formats in §14): margins
//! compose in parallel across shards (per-label max), and the pooled τ
//! noise is drawn once at merge time against the pooled sensitivity.

use crate::empirical::MarginalDistribution;
use crate::engine::{EngineOptions, FitParts};
use crate::error::DpCopulaError;
use crate::kendall::SamplingStrategy;
use crate::model::{assemble_artifact, ArtifactMeta, FittedModel, STREAM_SCHEME};
use crate::shard::{self, ShardSpec, ShardSummary};
use crate::synthesizer::{CorrelationMethod, DpCopulaConfig};
use datagen::{Block, RowSource};
use dpmech::{BudgetAccountant, Epsilon, ShardLedger};
use mathkit::concord::Concordance;
use mathkit::correlation::{clamp_to_correlation, repair_positive_definite};
use mathkit::Matrix;
use modelstore::{
    AttributeSpec, SamplingSpec, ShardArtifact, ShardConcordance, ShardFitConfig, ShardSpend,
};
use obskit::names::{ENGINE_SHARDS, SHARD_EPS_SPENT_NEPS};
use obskit::{MetricsSink, Stopwatch, Unit, SPAN_NS};

/// Maps the typed sampling strategy onto its `.dpcs` wire form.
fn sampling_spec(strategy: SamplingStrategy) -> SamplingSpec {
    match strategy {
        SamplingStrategy::Full => SamplingSpec::Full,
        SamplingStrategy::Auto => SamplingSpec::Auto,
        SamplingStrategy::Fixed(k) => SamplingSpec::Fixed(k as u64),
    }
}

/// Inverts a subsample plan: `slots[local_row] = sample slot` for every
/// participating local row, `u32::MAX` for the rest — the structure that
/// lets a single streaming pass scatter rows into subsample order.
fn invert_locals(locals: &[usize], shard_n: usize) -> Vec<u32> {
    debug_assert!(shard_n < u32::MAX as usize, "shard too large for slot map");
    let mut slots = vec![u32::MAX; shard_n];
    for (slot, &local) in locals.iter().enumerate() {
        slots[local] = slot as u32;
    }
    slots
}

/// Everything the streaming gather reduced a [`RowSource`] to: the
/// schema, the row count, the shard partition, the **exact** per-shard
/// histogram counts, and the per-shard τ record subsample.
pub(crate) struct SourceGather {
    /// Attribute names, in source order.
    pub names: Vec<String>,
    /// Attribute domains.
    pub domains: Vec<usize>,
    /// Total rows the source held.
    pub n: usize,
    /// The shard partition of those rows.
    pub specs: Vec<ShardSpec>,
    /// Exact histogram counts per `[shard][attribute][bin]` — what
    /// `Histogram1D::from_values` would build on the resident slice.
    pub exact: Vec<Vec<Vec<f64>>>,
    /// τ record subsample per `[shard][attribute][slot]`, in subsample
    /// order; empty for single-attribute fits.
    pub sampled: Vec<Vec<Vec<u32>>>,
}

/// Streams a [`RowSource`] into [`SourceGather`] without materializing
/// its columns.
///
/// Rewindable sources are read twice (count, then accumulate) and only
/// ever hold one block resident; one-pass sources are buffered block by
/// block on the first pass and replayed — the documented capability
/// contract ([`RowSource::rewindable`]). Validation matches the eager
/// path: empty input, too few records for pairwise estimation, more
/// shards than rows, and per-value domain violations are all named
/// errors, never panics.
pub(crate) fn gather_source(
    source: &mut dyn RowSource,
    shards: usize,
    strategy: SamplingStrategy,
    eps2: Epsilon,
    base_seed: u64,
) -> Result<SourceGather, DpCopulaError> {
    let attrs = source.attributes().to_vec();
    let m = attrs.len();
    if m == 0 {
        return Err(DpCopulaError::EmptyInput);
    }
    let names: Vec<String> = attrs.iter().map(|a| a.name.clone()).collect();
    let domains: Vec<usize> = attrs.iter().map(|a| a.domain).collect();

    // Pass 1: count rows (buffering the blocks when the source cannot
    // rewind).
    let mut n = 0usize;
    let mut buffered: Option<Vec<Block>> = if source.rewindable() {
        None
    } else {
        Some(Vec::new())
    };
    while let Some(block) = source.next_block()? {
        if block.columns().len() != m {
            return Err(DpCopulaError::ArityMismatch {
                columns: block.columns().len(),
                domains: m,
            });
        }
        n += block.rows();
        if let Some(buf) = buffered.as_mut() {
            buf.push(block);
        }
    }
    if n == 0 {
        return Err(DpCopulaError::EmptyInput);
    }
    if m > 1 && n < 2 {
        return Err(DpCopulaError::TooFewRecords {
            records: n,
            required: 2,
        });
    }
    if shards > n {
        return Err(DpCopulaError::TooManyShards { shards, records: n });
    }
    let specs = shard::shard_specs(n, shards);

    // The subsample plan is a pure function of (n, m, strategy, seed) —
    // identical to the eager fill_tau plan.
    let slot_maps: Vec<Vec<u32>> = if m > 1 {
        let target = shard::kendall_sample_target(m, n, strategy, eps2);
        let targets = shard::partition_sample_target(target, &specs);
        specs
            .iter()
            .map(|&spec| {
                let locals =
                    shard::shard_locals(spec, targets[spec.seed_index as usize], base_seed);
                invert_locals(&locals, spec.len())
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut exact: Vec<Vec<Vec<f64>>> = specs
        .iter()
        .map(|_| domains.iter().map(|&d| vec![0.0f64; d]).collect())
        .collect();
    let mut sampled: Vec<Vec<Vec<u32>>> = slot_maps
        .iter()
        .map(|slots| {
            let k = slots.iter().filter(|&&s| s != u32::MAX).count();
            (0..m).map(|_| vec![0u32; k]).collect()
        })
        .collect();

    // Pass 2: accumulate — exact counts always, subsample scatter when
    // there are pairs to estimate.
    let mut cur = 0usize; // current shard index
    let mut row = 0usize; // global row cursor
    let mut accumulate = |block: &Block| -> Result<(), DpCopulaError> {
        for r in 0..block.rows() {
            while row >= specs[cur].end {
                cur += 1;
            }
            let local = row - specs[cur].start;
            for (j, col) in block.columns().iter().enumerate() {
                let v = col[r];
                if v as usize >= domains[j] {
                    return Err(DpCopulaError::ValueOutOfDomain {
                        dim: j,
                        value: v,
                        domain: domains[j],
                    });
                }
                exact[cur][j][v as usize] += 1.0;
                if m > 1 {
                    let slot = slot_maps[cur][local];
                    if slot != u32::MAX {
                        sampled[cur][j][slot as usize] = v;
                    }
                }
            }
            row += 1;
        }
        Ok(())
    };
    match buffered {
        Some(blocks) => {
            for block in &blocks {
                accumulate(block)?;
            }
        }
        None => {
            source.rewind()?;
            while let Some(block) = source.next_block()? {
                accumulate(&block)?;
            }
        }
    }

    Ok(SourceGather {
        names,
        domains,
        n,
        specs,
        exact,
        sampled,
    })
}

/// A [`RowSource`] read fully into memory: schema, domains, columns.
pub(crate) type MaterializedSource = (Vec<AttributeSpec>, Vec<usize>, Vec<Vec<u32>>);

/// Materializes a [`RowSource`] into resident columns — the fallback
/// for estimators without streamable sufficient statistics (MLE,
/// Spearman) and for adaptive family selection, which partition the raw
/// records.
pub(crate) fn materialize_source(
    source: &mut dyn RowSource,
) -> Result<MaterializedSource, DpCopulaError> {
    let attrs = source.attributes().to_vec();
    let m = attrs.len();
    if m == 0 {
        return Err(DpCopulaError::EmptyInput);
    }
    let schema: Vec<AttributeSpec> = attrs
        .iter()
        .map(|a| AttributeSpec::new(a.name.clone(), a.domain))
        .collect();
    let domains: Vec<usize> = attrs.iter().map(|a| a.domain).collect();
    let mut columns: Vec<Vec<u32>> = vec![Vec::new(); m];
    while let Some(block) = source.next_block()? {
        if block.columns().len() != m {
            return Err(DpCopulaError::ArityMismatch {
                columns: block.columns().len(),
                domains: m,
            });
        }
        for (col, part) in columns.iter_mut().zip(block.columns()) {
            col.extend_from_slice(part);
        }
    }
    Ok((schema, domains, columns))
}

/// Fits **one shard** of a distributed fit from a streaming source
/// holding exactly that shard's rows, producing the durable
/// [`ShardArtifact`] the coordinator's [`merge_shards`] consumes.
///
/// `total_rows` is the *global* row count of the whole fit — the
/// subsample plan and the τ sensitivity depend on it, so every worker
/// must be told the same value the coordinator split the input by. The
/// shard's slot of `shard_specs(total_rows, shards)` determines how many
/// rows `source` must hold; a different count is refused with
/// [`DpCopulaError::ShardRowCountMismatch`] because the merged release
/// would silently diverge from the single-process fit.
///
/// The shard draws its margin noise from stream
/// `STREAM_MARGINS[shard_index·m + j]` and its τ subsample from
/// `STREAM_KENDALL_SAMPLE[shard_index]` — exactly the streams the
/// in-process `fit --shards N` assigns this shard, which is what makes
/// the distributed release byte-identical. Only the Kendall estimator
/// has a mergeable summary; anything else is refused with
/// [`DpCopulaError::ShardedCorrelationUnsupported`].
#[allow(clippy::too_many_arguments)]
pub fn fit_shard(
    source: &mut dyn RowSource,
    config: &DpCopulaConfig,
    shard_index: usize,
    shards: usize,
    total_rows: usize,
    base_seed: u64,
    opts: &EngineOptions,
    sink: &MetricsSink,
) -> Result<ShardArtifact, DpCopulaError> {
    let watch = Stopwatch::start();
    let attrs = source.attributes().to_vec();
    let m = attrs.len();
    if m == 0 || total_rows == 0 {
        return Err(DpCopulaError::EmptyInput);
    }
    if shards == 0 {
        return Err(DpCopulaError::ZeroShards);
    }
    if shard_index >= shards {
        return Err(DpCopulaError::ShardIndexOutOfRange {
            index: shard_index,
            shards,
        });
    }
    if shards > total_rows {
        return Err(DpCopulaError::TooManyShards {
            shards,
            records: total_rows,
        });
    }
    if m > 1 && total_rows < 2 {
        return Err(DpCopulaError::TooFewRecords {
            records: total_rows,
            required: 2,
        });
    }
    let strategy = match config.method {
        CorrelationMethod::Kendall(strategy) => strategy,
        CorrelationMethod::Mle(_) => {
            return Err(DpCopulaError::ShardedCorrelationUnsupported { method: "mle" })
        }
        CorrelationMethod::Spearman => {
            return Err(DpCopulaError::ShardedCorrelationUnsupported { method: "spearman" })
        }
    };
    let domains: Vec<usize> = attrs.iter().map(|a| a.domain).collect();
    let (eps1, eps2) = config.epsilon.split_ratio(config.k_ratio);
    let eps_margin = eps1.divide(m);
    let specs = shard::shard_specs(total_rows, shards);
    let spec = specs[shard_index];
    let expected = spec.len();
    sink.gauge_set(ENGINE_SHARDS, Unit::Info, shards as u64);

    // The shard's slot of the global subsample plan — a pure function of
    // (total_rows, m, strategy, seed), no data needed.
    let slot_map: Option<Vec<u32>> = if m > 1 {
        let target = shard::kendall_sample_target(m, total_rows, strategy, eps2);
        let targets = shard::partition_sample_target(target, &specs);
        let locals = shard::shard_locals(spec, targets[shard_index], base_seed);
        Some(invert_locals(&locals, expected))
    } else {
        None
    };

    // One streaming pass: exact histogram counts + subsample scatter.
    // The expected row count is known up front, so no counting pass is
    // needed; block memory stays bounded by the source's chunk size.
    let mut exact: Vec<Vec<f64>> = domains.iter().map(|&d| vec![0.0f64; d]).collect();
    let mut sampled: Vec<Vec<u32>> = match &slot_map {
        Some(slots) => {
            let k = slots.iter().filter(|&&s| s != u32::MAX).count();
            vec![vec![0u32; k]; m]
        }
        None => Vec::new(),
    };
    let mut rows = 0usize;
    while let Some(block) = source.next_block()? {
        if block.columns().len() != m {
            return Err(DpCopulaError::ArityMismatch {
                columns: block.columns().len(),
                domains: m,
            });
        }
        for r in 0..block.rows() {
            let local = rows + r;
            if local >= expected {
                continue; // keep counting; the mismatch errors below
            }
            for (j, col) in block.columns().iter().enumerate() {
                let v = col[r];
                if v as usize >= domains[j] {
                    return Err(DpCopulaError::ValueOutOfDomain {
                        dim: j,
                        value: v,
                        domain: domains[j],
                    });
                }
                exact[j][v as usize] += 1.0;
                if let Some(slots) = &slot_map {
                    let slot = slots[local];
                    if slot != u32::MAX {
                        sampled[j][slot as usize] = v;
                    }
                }
            }
        }
        rows += block.rows();
    }
    if rows != expected {
        return Err(DpCopulaError::ShardRowCountMismatch {
            expected,
            found: rows,
        });
    }

    // Publish this shard's noisy margins (stream seed_index·m + j) and
    // score its within-shard concordances — the fit half of the shard
    // pipeline, under the same stages and draw counters as in-process.
    let workers = opts.workers.max(1);
    let margin_name = config.margin.registry_name();
    let exact_all = vec![exact];
    let mut summaries = shard::build_margin_summaries_from_counts(
        &exact_all,
        &[spec],
        margin_name,
        eps_margin,
        base_seed,
        workers,
        sink,
    );
    if m > 1 {
        shard::fill_tau_from_sampled(&mut summaries, vec![sampled], workers, sink);
    }
    let summary = summaries.remove(0);

    if sink.enabled() {
        sink.observe_labeled(
            SPAN_NS,
            &[("span", "pipeline/shard_fit")],
            Unit::Nanos,
            watch.elapsed_ns(),
        );
        sink.add_labeled(
            SHARD_EPS_SPENT_NEPS,
            &[("shard", &shard_index.to_string())],
            Unit::NanoEps,
            summary.ledger.total_neps(),
        );
    }

    Ok(ShardArtifact {
        schema: attrs
            .iter()
            .map(|a| AttributeSpec::new(a.name.clone(), a.domain))
            .collect(),
        shard_index: shard_index as u64,
        shard_count: shards as u64,
        total_rows: total_rows as u64,
        row_start: spec.start as u64,
        row_end: spec.end as u64,
        seed_index: spec.seed_index,
        config: ShardFitConfig {
            epsilon: config.epsilon.value(),
            k_ratio: config.k_ratio,
            margin_method: margin_name.to_string(),
            strategy: sampling_spec(strategy),
            base_seed,
            sample_chunk: opts.sample_chunk.max(1) as u64,
            scheme: STREAM_SCHEME.into(),
        },
        noisy_margins: summary.noisy_margins,
        sampled: summary.sampled,
        within: summary
            .within
            .iter()
            .map(|c| ShardConcordance {
                s: c.s,
                pairs: c.pairs,
            })
            .collect(),
        ledger: summary
            .ledger
            .entries()
            .iter()
            .map(|(label, neps)| ShardSpend {
                label: label.clone(),
                neps: *neps,
            })
            .collect(),
    })
}

/// Validates that `artifact` agrees with the merge set's first artifact
/// on everything the merge depends on, naming the culprit file.
fn check_compatible(
    first: &ShardArtifact,
    first_file: &str,
    artifact: &ShardArtifact,
    file: &str,
) -> Result<(), DpCopulaError> {
    let mismatch = |reason: String| DpCopulaError::ShardArtifactMismatch {
        file: file.to_string(),
        reason,
    };
    if artifact.schema != first.schema {
        return Err(mismatch(format!("schema differs from {first_file}")));
    }
    if artifact.config != first.config {
        return Err(mismatch(format!(
            "fit configuration differs from {first_file}"
        )));
    }
    if artifact.shard_count != first.shard_count {
        return Err(mismatch(format!(
            "declares {} shards but {first_file} declares {}",
            artifact.shard_count, first.shard_count
        )));
    }
    if artifact.total_rows != first.total_rows {
        return Err(mismatch(format!(
            "declares {} total rows but {first_file} declares {}",
            artifact.total_rows, first.total_rows
        )));
    }
    Ok(())
}

/// Merges a complete set of `.dpcs` shard artifacts into a served
/// [`FittedModel`] — the coordinator half of the distributed fit.
///
/// `artifacts` pairs each decoded artifact with the path it came from
/// (used verbatim in error messages); order does not matter. The set
/// must be complete and consistent: exactly the declared shard count,
/// no duplicate shard indices, and agreement on schema, fit
/// configuration, total rows and the row partition — each violation is
/// a named [`DpCopulaError`] identifying the culprit file.
///
/// The merge itself is the in-process second half of `fit --shards N`:
/// per-bin margin sums, cross-shard concordance corrections, one pooled
/// Laplace draw per attribute pair, positive-definite repair, and the
/// per-label-max ledger fold — so the resulting model encodes to bytes
/// identical to the single-process sharded fit at the same seeds.
pub fn merge_shards(
    artifacts: &[(String, ShardArtifact)],
    workers: usize,
    sink: &MetricsSink,
) -> Result<FittedModel, DpCopulaError> {
    if artifacts.is_empty() {
        return Err(DpCopulaError::EmptyInput);
    }
    let (first_file, first) = &artifacts[0];
    let declared = first.shard_count as usize;
    if artifacts.len() != declared {
        return Err(DpCopulaError::ShardCountMismatch {
            declared,
            provided: artifacts.len(),
        });
    }
    let mut by_index: Vec<Option<&(String, ShardArtifact)>> = vec![None; declared];
    for pair in artifacts {
        let (file, artifact) = pair;
        check_compatible(first, first_file, artifact, file)?;
        let idx = artifact.shard_index as usize;
        // The decoder guarantees shard_index < shard_count, and
        // check_compatible pins shard_count — so idx is in range.
        if by_index[idx].is_some() {
            return Err(DpCopulaError::DuplicateShardIndex {
                index: idx,
                file: file.clone(),
            });
        }
        by_index[idx] = Some(pair);
    }
    // A full, duplicate-free set of in-range indices is a permutation.
    let ordered: Vec<&(String, ShardArtifact)> = by_index
        .into_iter()
        .map(|p| p.expect("pigeonhole: N distinct indices below N"))
        .collect();

    // The row partition must be the coordinator's split.
    let total_rows = first.total_rows as usize;
    let specs = shard::shard_specs(total_rows, declared);
    for (spec, (file, artifact)) in specs.iter().zip(&ordered) {
        if artifact.row_start as usize != spec.start
            || artifact.row_end as usize != spec.end
            || artifact.seed_index != spec.seed_index
        {
            return Err(DpCopulaError::ShardArtifactMismatch {
                file: file.clone(),
                reason: format!(
                    "covers rows [{}, {}) but shard {} of {} rows over {} shards is [{}, {})",
                    artifact.row_start,
                    artifact.row_end,
                    artifact.shard_index,
                    total_rows,
                    declared,
                    spec.start,
                    spec.end
                ),
            });
        }
    }

    // Reconstruct the in-process summaries (rank caches are recomputed
    // from the stored samples — deterministic, no noise involved).
    let summaries: Vec<ShardSummary> = ordered
        .iter()
        .zip(&specs)
        .map(|((_, artifact), &spec)| {
            let mut ledger = ShardLedger::new();
            for e in &artifact.ledger {
                ledger.spend_neps(&e.label, e.neps);
            }
            ShardSummary {
                spec,
                noisy_margins: artifact.noisy_margins.clone(),
                sampled: artifact.sampled.clone(),
                within: artifact
                    .within
                    .iter()
                    .map(|c| Concordance {
                        s: c.s,
                        pairs: c.pairs,
                    })
                    .collect(),
                ledger,
            }
        })
        .collect();

    // The merge proper — the exact second half of the in-process fit.
    let conf = &first.config;
    let m = first.schema.len();
    let epsilon = Epsilon::new(conf.epsilon)?;
    let (eps1, eps2) = epsilon.split_ratio(conf.k_ratio);
    let mut accountant = BudgetAccountant::new(epsilon);
    let eps_margin = eps1.divide(m);
    sink.gauge_set(ENGINE_SHARDS, Unit::Info, declared as u64);

    let merge_watch = Stopwatch::start();
    let noisy_margins = shard::merge_margins(&summaries);
    for _ in 0..m {
        accountant.spend_tracked(eps_margin, "margins", sink)?;
    }
    let raw = if m == 1 {
        Matrix::identity(1)
    } else {
        let cross = shard::cross_concordances(&summaries, workers, sink);
        shard::combine_tau(&summaries, &cross, eps2, conf.base_seed, sink)
    };
    if m > 1 {
        accountant.spend_tracked(eps2, "correlation", sink)?;
    }
    let correlation = if m == 1 {
        raw
    } else {
        let mut p = raw;
        clamp_to_correlation(&mut p);
        repair_positive_definite(&p)
    };
    let shard_merge_ns = merge_watch.elapsed_ns();

    if sink.enabled() {
        sink.observe_labeled(
            SPAN_NS,
            &[("span", "pipeline/shard_merge")],
            Unit::Nanos,
            shard_merge_ns,
        );
        for (s, summary) in summaries.iter().enumerate() {
            sink.add_labeled(
                SHARD_EPS_SPENT_NEPS,
                &[("shard", &s.to_string())],
                Unit::NanoEps,
                summary.ledger.total_neps(),
            );
        }
    }

    let (shard_infos, shard_entries) = crate::engine::shard_provenance(&summaries, declared);
    let parts = FitParts {
        margins: noisy_margins
            .iter()
            .map(|noisy| MarginalDistribution::from_noisy_histogram(noisy))
            .collect(),
        noisy_margins,
        correlation,
        epsilon_margins: eps1.value(),
        epsilon_correlations: if m > 1 { eps2.value() } else { 0.0 },
        shards: shard_infos,
        shard_entries,
    };
    let artifact = assemble_artifact(
        &ArtifactMeta {
            epsilon_total: epsilon.value(),
            margin_method: &conf.margin_method,
            base_seed: conf.base_seed,
            sample_chunk: conf.sample_chunk,
        },
        first.schema.clone(),
        parts,
    );
    let mut model = FittedModel::from_artifact(artifact)?;
    model.set_metrics_sink(sink.clone());
    Ok(model)
}
