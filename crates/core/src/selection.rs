//! Differentially private copula-family selection by AIC — the paper's
//! §3.2 remark ("we can use many approaches to test the goodness-of-fit,
//! such as Akaike's Information Criterion (AIC), to identify the best
//! copula") turned into a working mechanism, plus an adaptive synthesizer
//! that picks between the Gaussian and Student-t families before
//! sampling.
//!
//! The AIC of a copula family `F` with `k_F` parameters is
//! `2 k_F - 2 ln L`. Selection is by **subsample-and-aggregate voting**:
//! each disjoint block computes its own AIC for every candidate (on its
//! block-local pseudo-copula data and block-local correlation estimate)
//! and votes for the minimiser; the vote histogram is released through
//! the Laplace mechanism (one record lives in one block and can flip at
//! most that block's single vote, so the histogram has L1 sensitivity 2)
//! and the arg-max candidate wins. Voting is far more robust than
//! averaging noisy log-likelihoods: the per-block AIC differences that
//! matter are O(block) while a DP mean-log-likelihood release must be
//! calibrated to a worst-case rank rearrangement and drowns the signal.
//!
//! [`dp_mean_log_likelihood`] (the direct clamped-mean release) is kept
//! for diagnostics and for callers who need a numeric likelihood rather
//! than a winner.

use crate::empirical::{pseudo_copula_column, MarginalDistribution};
use crate::error::{validate_columns, DpCopulaError};
use crate::gaussian::GaussianCopula;
use crate::kendall::{dp_correlation_matrix, SamplingStrategy};
use crate::sampler::CopulaSampler;
use crate::synthesizer::{DpCopulaConfig, Synthesis};
use crate::tcopula::{TCopula, TCopulaSampler};
use dphist::histogram::Histogram1D;
use dpmech::{laplace_noise, Epsilon};
use mathkit::dist::Continuous as _;
use mathkit::special::norm_quantile;
use mathkit::stats::pearson;
use mathkit::Matrix;
use rngkit::Rng;

/// Clamp applied to per-record log-densities so the AIC release has
/// bounded sensitivity.
pub const LL_CLAMP: f64 = 25.0;

/// A copula family candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CopulaFamily {
    /// The Gaussian copula (the paper's default).
    Gaussian,
    /// Student-t copula with fixed degrees of freedom.
    StudentT {
        /// Degrees of freedom `nu > 0`.
        df: f64,
    },
}

impl CopulaFamily {
    /// Number of free parameters beyond the correlation matrix (the
    /// matrix's `C(m,2)` entries are shared by all elliptical families).
    fn extra_params(self) -> f64 {
        match self {
            CopulaFamily::Gaussian => 0.0,
            CopulaFamily::StudentT { .. } => 1.0,
        }
    }
}

impl std::fmt::Display for CopulaFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CopulaFamily::Gaussian => write!(f, "gaussian"),
            CopulaFamily::StudentT { df } => write!(f, "t(nu={df})"),
        }
    }
}

/// One candidate's released support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyScore {
    /// The candidate.
    pub family: CopulaFamily,
    /// Noisy count of blocks whose AIC preferred this candidate
    /// (higher is better).
    pub noisy_votes: f64,
}

/// DP mean per-record pseudo log-likelihood of `family` on the data, by
/// subsample-and-aggregate over `partitions` blocks, spending `epsilon`.
pub fn dp_mean_log_likelihood<R: Rng + ?Sized>(
    columns: &[Vec<u32>],
    family: CopulaFamily,
    partitions: usize,
    epsilon: Epsilon,
    rng: &mut R,
) -> Result<f64, DpCopulaError> {
    let m = columns.len();
    assert!(m >= 2, "log-likelihood needs at least two attributes");
    let n = columns[0].len();
    let l = partitions.max(1);
    let block = n / l;
    if block < 8 {
        return Err(DpCopulaError::InsufficientDataForMle {
            required_partitions: l,
            records: n,
        });
    }

    let mut total = 0.0;
    let mut u_cols: Vec<Vec<f64>> = vec![Vec::new(); m];
    for t in 0..l {
        let lo = t * block;
        let hi = lo + block;
        for (j, col) in columns.iter().enumerate() {
            u_cols[j] = pseudo_copula_column(&col[lo..hi]);
        }
        // Block-local correlation from normal scores.
        let scores: Vec<Vec<f64>> = u_cols
            .iter()
            .map(|u| u.iter().map(|&v| norm_quantile(v)).collect())
            .collect();
        let mut p = Matrix::identity(m);
        for i in 0..m {
            for j in (i + 1)..m {
                let r = pearson(&scores[i], &scores[j]).clamp(-0.95, 0.95);
                p[(i, j)] = r;
                p[(j, i)] = r;
            }
        }
        let p = mathkit::correlation::repair_positive_definite(&p);

        let mut block_ll = 0.0;
        match family {
            CopulaFamily::Gaussian => {
                let c = GaussianCopula::new(p).expect("repaired matrix is PD");
                for row in 0..block {
                    let z: Vec<f64> = scores.iter().map(|s| s[row]).collect();
                    block_ll += c.log_density_scores(&z).clamp(-LL_CLAMP, LL_CLAMP);
                }
            }
            CopulaFamily::StudentT { df } => {
                let c = TCopula::new(p, df).expect("repaired matrix is PD");
                let t = mathkit::dist::StudentT::new(df).expect("positive df");
                for row in 0..block {
                    let x: Vec<f64> = u_cols.iter().map(|u| t.quantile(u[row])).collect();
                    block_ll += c.log_density_scores(&x).clamp(-LL_CLAMP, LL_CLAMP);
                }
            }
        }
        total += block_ll / block as f64;
    }
    let mean = total / l as f64;
    // One record lives in one block and can move that block's clamped mean
    // by at most 2*LL_CLAMP/block, hence the average by 2*LL_CLAMP/(l*block).
    // Being conservative (the rank transform couples records within a
    // block), we calibrate to 2*LL_CLAMP/l.
    Ok(mean + laplace_noise(rng, 2.0 * LL_CLAMP / (l as f64 * epsilon.value())))
}

/// Selects the best copula family by per-block AIC voting, spending
/// `epsilon` on the vote-histogram release.
pub fn dp_select_family<R: Rng + ?Sized>(
    columns: &[Vec<u32>],
    candidates: &[CopulaFamily],
    partitions: usize,
    epsilon: Epsilon,
    rng: &mut R,
) -> Result<(CopulaFamily, Vec<FamilyScore>), DpCopulaError> {
    assert!(!candidates.is_empty(), "need candidate families");
    let m = columns.len();
    assert!(m >= 2, "family selection needs at least two attributes");
    let n = columns[0].len();
    let l = partitions.max(1);
    let block = n / l;
    if block < 8 {
        return Err(DpCopulaError::InsufficientDataForMle {
            required_partitions: l,
            records: n,
        });
    }
    let pairs = (m * (m - 1) / 2) as f64;

    let mut votes = vec![0.0; candidates.len()];
    let mut u_cols: Vec<Vec<f64>> = vec![Vec::new(); m];
    for t in 0..l {
        let lo = t * block;
        let hi = lo + block;
        for (j, col) in columns.iter().enumerate() {
            u_cols[j] = pseudo_copula_column(&col[lo..hi]);
        }
        let scores: Vec<Vec<f64>> = u_cols
            .iter()
            .map(|u| u.iter().map(|&v| norm_quantile(v)).collect())
            .collect();
        let mut p = Matrix::identity(m);
        for i in 0..m {
            for j in (i + 1)..m {
                let r = pearson(&scores[i], &scores[j]).clamp(-0.95, 0.95);
                p[(i, j)] = r;
                p[(j, i)] = r;
            }
        }
        let p = mathkit::correlation::repair_positive_definite(&p);

        // Per-block AIC for every candidate; vote for the minimiser.
        let mut best = (0usize, f64::INFINITY);
        for (ci, &family) in candidates.iter().enumerate() {
            let mut ll = 0.0;
            match family {
                CopulaFamily::Gaussian => {
                    let c = GaussianCopula::new(p.clone()).expect("repaired matrix is PD");
                    for row in 0..block {
                        let z: Vec<f64> = scores.iter().map(|s| s[row]).collect();
                        ll += c.log_density_scores(&z).clamp(-LL_CLAMP, LL_CLAMP);
                    }
                }
                CopulaFamily::StudentT { df } => {
                    let c = TCopula::new(p.clone(), df).expect("repaired matrix is PD");
                    let tdist = mathkit::dist::StudentT::new(df).expect("positive df");
                    for row in 0..block {
                        let x: Vec<f64> = u_cols.iter().map(|u| tdist.quantile(u[row])).collect();
                        ll += c.log_density_scores(&x).clamp(-LL_CLAMP, LL_CLAMP);
                    }
                }
            }
            let aic = 2.0 * (pairs + family.extra_params()) - 2.0 * ll;
            if aic < best.1 {
                best = (ci, aic);
            }
        }
        votes[best.0] += 1.0;
    }

    // One record flips at most one block's vote (L1 sensitivity 2 on the
    // histogram).
    let scores: Vec<FamilyScore> = candidates
        .iter()
        .zip(&votes)
        .map(|(&family, &v)| FamilyScore {
            family,
            noisy_votes: v + laplace_noise(rng, 2.0 / epsilon.value()),
        })
        .collect();
    let best = scores
        .iter()
        .max_by(|a, b| {
            a.noisy_votes
                .partial_cmp(&b.noisy_votes)
                .expect("finite votes")
        })
        .expect("non-empty");
    Ok((best.family, scores.clone()))
}

/// Configuration of the adaptive (family-selecting) synthesizer.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Base DPCopula configuration; its `epsilon` is the total budget.
    pub base: DpCopulaConfig,
    /// Candidate families (default: Gaussian plus t with nu in {4, 10}).
    pub candidates: Vec<CopulaFamily>,
    /// Fraction of the budget spent on family selection.
    pub selection_fraction: f64,
    /// Subsample-and-aggregate block count for the selection.
    pub partitions: usize,
}

impl AdaptiveConfig {
    /// Sensible defaults around a base configuration.
    pub fn new(base: DpCopulaConfig) -> Self {
        Self {
            base,
            candidates: vec![
                CopulaFamily::Gaussian,
                CopulaFamily::StudentT { df: 4.0 },
                CopulaFamily::StudentT { df: 10.0 },
            ],
            selection_fraction: 0.1,
            partitions: 100,
        }
    }
}

/// Result of an adaptive synthesis: the usual release plus which family
/// won and the score table.
#[derive(Debug, Clone)]
pub struct AdaptiveSynthesis {
    /// The synthetic release.
    pub synthesis: Synthesis,
    /// The selected family.
    pub family: CopulaFamily,
    /// Noisy AIC scores of every candidate.
    pub scores: Vec<FamilyScore>,
}

/// Runs family selection and then the full DPCopula pipeline with the
/// winning family. Budget: `selection_fraction * eps` on selection, the
/// rest split between margins and correlations as usual.
///
/// *Soft-deprecated:* prefer
/// [`crate::request::SynthesisRequest::run_adaptive`], which derives the
/// generator from the request's seed and shares the front-door builder;
/// for a generator seeded identically it releases byte-identical output
/// (`DESIGN.md` §10).
pub fn synthesize_adaptive<R: Rng + ?Sized>(
    config: &AdaptiveConfig,
    columns: &[Vec<u32>],
    domains: &[usize],
    rng: &mut R,
) -> Result<AdaptiveSynthesis, DpCopulaError> {
    validate_columns(columns, domains)?;
    if columns.len() < 2 {
        // Copula-family selection is meaningless without dependence.
        return Err(DpCopulaError::TooFewAttributes {
            attributes: columns.len(),
            required: 2,
        });
    }
    assert!(
        config.selection_fraction > 0.0 && config.selection_fraction < 1.0,
        "selection fraction must be in (0,1)"
    );
    let total = config.base.epsilon;
    let eps_select = total.fraction(config.selection_fraction);
    let eps_rest = Epsilon::new(total.value() - eps_select.value())?;

    let (family, scores) = dp_select_family(
        columns,
        &config.candidates,
        config.partitions,
        eps_select,
        rng,
    )?;

    // Margins + correlation with the remaining budget.
    let (eps1, eps2) = eps_rest.split_ratio(config.base.k_ratio);
    let m = columns.len();
    let n = columns[0].len();
    let eps_margin = eps1.divide(m);
    let mut margins = Vec::with_capacity(m);
    let mut noisy_margins = Vec::with_capacity(m);
    for (col, &domain) in columns.iter().zip(domains) {
        let exact = Histogram1D::from_values(col, domain);
        let noisy = config.base.margin.publish(exact.counts(), eps_margin, rng);
        margins.push(MarginalDistribution::from_noisy_histogram(&noisy));
        noisy_margins.push(noisy);
    }
    let correlation = dp_correlation_matrix(columns, eps2, SamplingStrategy::Auto, rng);

    let n_out = config.base.output_records.unwrap_or(n);
    let columns_out = match family {
        CopulaFamily::Gaussian => {
            CopulaSampler::new(&correlation, margins)?.sample_columns(n_out, rng)
        }
        CopulaFamily::StudentT { df } => {
            TCopulaSampler::new(&correlation, df, margins)?.sample_columns(n_out, rng)
        }
    };

    Ok(AdaptiveSynthesis {
        synthesis: Synthesis {
            columns: columns_out,
            correlation,
            noisy_margins,
            epsilon_margins: eps1.value(),
            epsilon_correlations: eps2.value(),
        },
        family,
        scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical::MarginalDistribution;
    use mathkit::correlation::equicorrelation;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    fn uniform_margin(domain: usize) -> MarginalDistribution {
        MarginalDistribution::from_noisy_histogram(&vec![1.0; domain])
    }

    fn gaussian_data(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let p = equicorrelation(2, 0.6);
        let s = CopulaSampler::new(&p, vec![uniform_margin(400), uniform_margin(400)]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        s.sample_columns(n, &mut rng)
    }

    fn t_data(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let p = equicorrelation(2, 0.6);
        let s =
            TCopulaSampler::new(&p, 3.0, vec![uniform_margin(400), uniform_margin(400)]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        s.sample_columns(n, &mut rng)
    }

    #[test]
    fn aic_prefers_gaussian_on_gaussian_data() {
        let cols = gaussian_data(12_000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (best, scores) = dp_select_family(
            &cols,
            &[CopulaFamily::Gaussian, CopulaFamily::StudentT { df: 3.0 }],
            80,
            Epsilon::new(10.0).unwrap(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(best, CopulaFamily::Gaussian, "scores {scores:?}");
        assert_eq!(scores.len(), 2);
    }

    #[test]
    fn aic_prefers_t_on_t_data() {
        let cols = t_data(12_000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let (best, scores) = dp_select_family(
            &cols,
            &[CopulaFamily::Gaussian, CopulaFamily::StudentT { df: 3.0 }],
            80,
            Epsilon::new(10.0).unwrap(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            best,
            CopulaFamily::StudentT { df: 3.0 },
            "scores {scores:?}"
        );
    }

    #[test]
    fn adaptive_synthesis_runs_end_to_end() {
        let cols = t_data(8_000, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let config = AdaptiveConfig::new(DpCopulaConfig::kendall(Epsilon::new(5.0).unwrap()));
        let out = synthesize_adaptive(&config, &cols, &[400, 400], &mut rng).unwrap();
        assert_eq!(out.synthesis.columns.len(), 2);
        assert_eq!(out.synthesis.columns[0].len(), 8_000);
        assert!(out.synthesis.columns.iter().flatten().all(|&v| v < 400));
        assert_eq!(out.scores.len(), 3);
        // Budget: selection 10% + (margins + correlations) = total.
        let spent = 0.5 + out.synthesis.epsilon_margins + out.synthesis.epsilon_correlations;
        assert!((spent - 5.0).abs() < 1e-9, "spent {spent}");
    }

    #[test]
    fn tiny_blocks_error() {
        let cols = vec![vec![1u32; 20], vec![2u32; 20]];
        let mut rng = StdRng::seed_from_u64(7);
        let err = dp_mean_log_likelihood(
            &cols,
            CopulaFamily::Gaussian,
            10,
            Epsilon::new(1.0).unwrap(),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, DpCopulaError::InsufficientDataForMle { .. }));
    }
}
