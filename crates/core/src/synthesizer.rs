//! The top-level DPCopula synthesizer — Algorithm 1 (MLE flavour) and
//! Algorithm 4 (Kendall flavour) of the paper.
//!
//! Pipeline (Figure 4):
//!
//! 1. split the total budget `epsilon` into `epsilon_1` (margins) and
//!    `epsilon_2` (correlations) by the ratio `k = eps1/eps2`
//!    (Table 3 default: `k = 8`);
//! 2. publish a DP marginal histogram per attribute with `epsilon_1 / m`
//!    each (EFPA by default, as in the paper);
//! 3. estimate the DP correlation matrix with `epsilon_2` — noisy
//!    Kendall's tau or subsample-and-aggregate MLE;
//! 4. sample synthetic records from the resulting Gaussian copula
//!    (Algorithm 3).

use crate::engine::EngineOptions;
use crate::error::DpCopulaError;
use crate::kendall::SamplingStrategy;
use crate::mle::PartitionStrategy;
use dphist::MarginRegistry;
use dpmech::Epsilon;
use mathkit::Matrix;
use rngkit::{Rng, RngCore};

/// Which algorithm estimates the DP correlation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationMethod {
    /// DPCopula-Kendall (Algorithms 4–5).
    Kendall(SamplingStrategy),
    /// DPCopula-MLE (Algorithms 1–2).
    Mle(PartitionStrategy),
    /// Spearman-rho variant — the alternative §3.2 rejects; its larger
    /// sensitivity (`30/(n-1)` vs Kendall's `4/(n+1)`) makes it strictly
    /// noisier, which the `ablation_rank_correlation` experiment
    /// quantifies.
    Spearman,
}

/// Which 1-D DP histogram algorithm publishes the margins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarginMethod {
    /// EFPA — the paper's choice ("superior to other methods").
    #[default]
    Efpa,
    /// EFPA over the DCT basis — better on skewed margins (extension;
    /// see `dphist::efpa_dct`).
    EfpaDct,
    /// Laplace-per-bin baseline.
    Identity,
    /// Privelet (Haar wavelet).
    Privelet,
    /// P-HP hierarchical partitioning.
    Php,
    /// Hay's hierarchical method with consistency (VLDB 2010).
    Hierarchical,
    /// NoiseFirst (ICDE 2012): Dwork release + DP-optimal merging.
    NoiseFirst,
    /// StructureFirst (ICDE 2012): private boundaries, then noisy counts.
    StructureFirst,
}

impl MarginMethod {
    /// The [`MarginRegistry`] name this variant resolves to. The enum is
    /// only a typed façade over the registry — publication behaviour
    /// lives with each method's [`dphist::Publish1d`] impl, and the
    /// constructor lives in [`MarginRegistry::builtin`].
    pub fn registry_name(self) -> &'static str {
        match self {
            MarginMethod::Efpa => "efpa",
            MarginMethod::EfpaDct => "efpa-dct",
            MarginMethod::Identity => "identity",
            MarginMethod::Privelet => "privelet",
            MarginMethod::Php => "php",
            MarginMethod::Hierarchical => "hierarchical",
            MarginMethod::NoiseFirst => "noisefirst",
            MarginMethod::StructureFirst => "structurefirst",
        }
    }

    /// Publishes one marginal histogram with the chosen algorithm,
    /// dispatching through the builtin [`MarginRegistry`].
    pub fn publish<R: Rng + ?Sized>(self, counts: &[f64], eps: Epsilon, rng: &mut R) -> Vec<f64> {
        // `&mut R` is Sized and implements RngCore, so `&mut &mut R`
        // coerces to the `&mut dyn RngCore` the registry dispatches on.
        let mut reborrow: &mut R = rng;
        let dyn_rng: &mut dyn RngCore = &mut reborrow;
        MarginRegistry::builtin()
            .publish(self.registry_name(), counts, eps, dyn_rng)
            .expect("builtin registry covers every MarginMethod")
    }
}

/// Configuration of one DPCopula run.
#[derive(Debug, Clone, Copy)]
pub struct DpCopulaConfig {
    /// Total privacy budget `epsilon`.
    pub epsilon: Epsilon,
    /// Budget ratio `k = eps1 / eps2` between margins and correlations
    /// (Table 3 default: 8; Fig 5 shows the method is insensitive for
    /// `k > 1`).
    pub k_ratio: f64,
    /// Correlation estimator.
    pub method: CorrelationMethod,
    /// Margin publication algorithm.
    pub margin: MarginMethod,
    /// Number of synthetic records to emit; `None` reproduces the input
    /// cardinality (what the paper does).
    pub output_records: Option<usize>,
    /// Which sampling hot path emits the records. `Reference` (the
    /// default) keeps the pinned byte-reproducibility contract; `Fast`
    /// trades it for throughput while sampling the same distribution.
    /// Part of the config (not [`EngineOptions`]) because it changes the
    /// released bytes.
    pub sampling_profile: crate::sampler::SamplingProfile,
}

impl DpCopulaConfig {
    /// The paper's default configuration: DPCopula-Kendall with record
    /// sampling, EFPA margins, `k = 8`.
    pub fn kendall(epsilon: Epsilon) -> Self {
        Self {
            epsilon,
            k_ratio: 8.0,
            method: CorrelationMethod::Kendall(SamplingStrategy::Auto),
            margin: MarginMethod::Efpa,
            output_records: None,
            sampling_profile: crate::sampler::SamplingProfile::Reference,
        }
    }

    /// DPCopula-MLE with the paper's partition rule.
    pub fn mle(epsilon: Epsilon) -> Self {
        Self {
            method: CorrelationMethod::Mle(PartitionStrategy::Auto),
            ..Self::kendall(epsilon)
        }
    }

    /// Overrides the budget ratio `k`.
    pub fn with_k_ratio(mut self, k: f64) -> Self {
        assert!(k.is_finite() && k > 0.0, "k must be positive");
        self.k_ratio = k;
        self
    }

    /// Overrides the margin method.
    pub fn with_margin(mut self, margin: MarginMethod) -> Self {
        self.margin = margin;
        self
    }

    /// Overrides the output cardinality.
    pub fn with_output_records(mut self, n: usize) -> Self {
        self.output_records = Some(n);
        self
    }

    /// Overrides the sampling profile.
    pub fn with_profile(mut self, profile: crate::sampler::SamplingProfile) -> Self {
        self.sampling_profile = profile;
        self
    }
}

/// Everything a DPCopula run releases. All fields are differentially
/// private and safe to publish together (their budgets compose to the
/// configured `epsilon`).
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// Synthetic records, column-major.
    pub columns: Vec<Vec<u32>>,
    /// The DP correlation matrix estimator `P~`.
    pub correlation: Matrix,
    /// The DP marginal histograms (noisy counts, pre-normalisation).
    pub noisy_margins: Vec<Vec<f64>>,
    /// Budget actually spent on margins (`epsilon_1`).
    pub epsilon_margins: f64,
    /// Budget actually spent on correlations (`epsilon_2`).
    pub epsilon_correlations: f64,
}

/// The DPCopula synthesizer.
#[derive(Debug, Clone, Copy)]
pub struct DpCopula {
    config: DpCopulaConfig,
}

impl DpCopula {
    /// Creates a synthesizer from a configuration.
    pub fn new(config: DpCopulaConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DpCopulaConfig {
        &self.config
    }

    /// Runs the full pipeline on a columnar dataset (`columns[j]` is
    /// attribute `j` on the integer domain `0..domains[j]`).
    ///
    /// Draws one base seed from `rng` and delegates to a
    /// [`crate::request::SynthesisRequest`] with default engine options,
    /// so the serial API and the staged parallel engine release identical
    /// kinds of output (and the same seed always reproduces the same
    /// synthesis regardless of the machine's core count).
    ///
    /// *Soft-deprecated:* prefer building a
    /// [`crate::request::SynthesisRequest`] — the single front door that
    /// also carries engine options and a metrics sink. This wrapper is
    /// kept for source compatibility and releases byte-identical output
    /// (`DESIGN.md` §10 has the migration table).
    pub fn synthesize<R: Rng + ?Sized>(
        &self,
        columns: &[Vec<u32>],
        domains: &[usize],
        rng: &mut R,
    ) -> Result<Synthesis, DpCopulaError> {
        let base_seed = rng.next_u64();
        let (synthesis, _report) =
            crate::request::SynthesisRequest::from_config(columns, domains, self.config)
                .engine(EngineOptions::default())
                .seed(base_seed)
                .run()?;
        Ok(synthesis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendall::kendall_tau;
    use mathkit::correlation::equicorrelation;
    use mathkit::dist::MultivariateNormal;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    /// Gaussian-dependence data with uniform-ish margins on `0..domain`.
    fn test_data(rho: f64, m: usize, n: usize, domain: usize, seed: u64) -> Vec<Vec<u32>> {
        let mvn = MultivariateNormal::new(&equicorrelation(m, rho)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mvn.sample_columns(&mut rng, n)
            .into_iter()
            .map(|col| {
                col.into_iter()
                    .map(|z| {
                        let u = mathkit::special::norm_cdf(z);
                        ((u * domain as f64) as u32).min(domain as u32 - 1)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn kendall_end_to_end_preserves_shape() {
        let domain = 200;
        let cols = test_data(0.7, 2, 8_000, domain, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let config = DpCopulaConfig::kendall(Epsilon::new(2.0).unwrap());
        let out = DpCopula::new(config)
            .synthesize(&cols, &[domain, domain], &mut rng)
            .unwrap();

        assert_eq!(out.columns.len(), 2);
        assert_eq!(out.columns[0].len(), 8_000);
        assert!(out.columns.iter().flatten().all(|&v| (v as usize) < domain));

        // Dependence carried over: original tau ~ 2/pi asin(0.7) ~ 0.494.
        let tau_orig = kendall_tau(&cols[0], &cols[1]);
        let tau_synth = kendall_tau(&out.columns[0], &out.columns[1]);
        assert!(
            (tau_orig - tau_synth).abs() < 0.1,
            "orig {tau_orig} synth {tau_synth}"
        );

        // Budget accounting adds up.
        assert!((out.epsilon_margins + out.epsilon_correlations - 2.0).abs() < 1e-9);
        assert!((out.epsilon_margins / out.epsilon_correlations - 8.0).abs() < 1e-6);
    }

    #[test]
    fn mle_end_to_end_runs_with_fixed_partitions() {
        let domain = 100;
        let cols = test_data(0.5, 2, 12_000, domain, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut config = DpCopulaConfig::mle(Epsilon::new(2.0).unwrap());
        config.method = CorrelationMethod::Mle(PartitionStrategy::Fixed(200));
        let out = DpCopula::new(config)
            .synthesize(&cols, &[domain, domain], &mut rng)
            .unwrap();
        assert!(
            out.correlation[(0, 1)] > 0.2,
            "corr {}",
            out.correlation[(0, 1)]
        );
    }

    #[test]
    fn output_records_override() {
        let cols = test_data(0.3, 2, 1_000, 50, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()).with_output_records(123);
        let out = DpCopula::new(config)
            .synthesize(&cols, &[50, 50], &mut rng)
            .unwrap();
        assert_eq!(out.columns[0].len(), 123);
    }

    #[test]
    fn single_attribute_works() {
        let cols = vec![(0..500u32).map(|i| i % 40).collect::<Vec<_>>()];
        let mut rng = StdRng::seed_from_u64(7);
        let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
        let out = DpCopula::new(config)
            .synthesize(&cols, &[40], &mut rng)
            .unwrap();
        assert_eq!(out.correlation, Matrix::identity(1));
        assert_eq!(out.epsilon_correlations, 0.0);
        assert!(out.columns[0].iter().all(|&v| v < 40));
    }

    #[test]
    fn invalid_input_is_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
        let err = DpCopula::new(config)
            .synthesize(&[], &[], &mut rng)
            .unwrap_err();
        assert_eq!(err, DpCopulaError::EmptyInput);
    }

    #[test]
    fn margin_method_variants_all_run() {
        let cols = test_data(0.4, 2, 2_000, 64, 9);
        for margin in [
            MarginMethod::Efpa,
            MarginMethod::EfpaDct,
            MarginMethod::Identity,
            MarginMethod::Privelet,
            MarginMethod::Php,
            MarginMethod::Hierarchical,
            MarginMethod::NoiseFirst,
            MarginMethod::StructureFirst,
        ] {
            let mut rng = StdRng::seed_from_u64(10);
            let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()).with_margin(margin);
            let out = DpCopula::new(config)
                .synthesize(&cols, &[64, 64], &mut rng)
                .unwrap();
            assert_eq!(out.columns[0].len(), 2_000, "margin {margin:?}");
        }
    }

    #[test]
    fn tighter_budget_degrades_margins() {
        // Compare the noisy margin against the exact histogram: eps=0.01
        // must be farther from truth than eps=10 (on average).
        let cols = test_data(0.0, 2, 5_000, 64, 11);
        let exact: Vec<f64> = {
            let h = dphist::histogram::Histogram1D::from_values(&cols[0], 64);
            h.counts().to_vec()
        };
        let l1 = |eps: f64, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = DpCopulaConfig::kendall(Epsilon::new(eps).unwrap());
            let out = DpCopula::new(config)
                .synthesize(&cols, &[64, 64], &mut rng)
                .unwrap();
            out.noisy_margins[0]
                .iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        let loose: f64 = (0..5).map(|s| l1(10.0, 100 + s)).sum();
        let tight: f64 = (0..5).map(|s| l1(0.01, 200 + s)).sum();
        assert!(tight > loose, "tight {tight} loose {loose}");
    }
}
