//! Byte-identity pins for the sharded fit refactor.
//!
//! The fixtures under `tests/fixtures/` hold `.dpcm` bytes produced by
//! the **pre-shard** fit pipeline. The merge-path fit with `shards = 1`
//! must keep reproducing them bit for bit: the single-shard fit is the
//! 1-shard case of the merge path, not a separate code path, and this is
//! the test that holds that contract. Regenerate (only for an
//! intentional, documented format change) with `PIN_UPDATE=1`.

use dpcopula::engine::EngineOptions;
use dpcopula::kendall::SamplingStrategy;
use dpcopula::synthesizer::{CorrelationMethod, DpCopula, DpCopulaConfig, MarginMethod};
use dpmech::Epsilon;
use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};
use std::path::PathBuf;

/// Dependent integer columns, n large enough that the Kendall `Auto`
/// strategy actually subsamples (exercising `STREAM_KENDALL_SAMPLE`).
fn dataset(m: usize, n: usize, seed: u64) -> (Vec<Vec<u32>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1000u32)).collect();
    let domains: Vec<usize> = (0..m).map(|j| [16, 64, 256][j % 3]).collect();
    let columns = domains
        .iter()
        .enumerate()
        .map(|(j, &d)| {
            base.iter()
                .map(|&v| {
                    ((v + rng.gen_range(0..200u32)) as usize * d / 1200 + j) as u32 % d as u32
                })
                .collect()
        })
        .collect();
    (columns, domains)
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Fits with the given config and compares the artifact bytes to the
/// named fixture (or rewrites it under `PIN_UPDATE=1`).
fn assert_pinned(config: DpCopulaConfig, opts: &EngineOptions, name: &str) {
    let (columns, domains) = dataset(3, 4_000, 20240601);
    let (model, _) = DpCopula::new(config)
        .fit_staged(&columns, &domains, 77, opts)
        .unwrap();
    let bytes = model.artifact().encode();
    let path = fixture_path(name);
    if std::env::var("PIN_UPDATE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        return;
    }
    let pinned = std::fs::read(&path).unwrap_or_else(|e| panic!("fixture {name} missing: {e}"));
    assert_eq!(
        bytes, pinned,
        "{name}: fit output drifted from the pre-shard pipeline bytes"
    );
}

#[test]
fn one_shard_kendall_fit_matches_pre_shard_bytes() {
    let mut config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    config.method = CorrelationMethod::Kendall(SamplingStrategy::Auto);
    assert_pinned(config, &EngineOptions::default(), "pin_kendall_auto.dpcm");
}

#[test]
fn one_shard_kendall_full_fit_matches_pre_shard_bytes() {
    let mut config =
        DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()).with_margin(MarginMethod::Privelet);
    config.method = CorrelationMethod::Kendall(SamplingStrategy::Full);
    assert_pinned(config, &EngineOptions::default(), "pin_kendall_full.dpcm");
}

#[test]
fn one_shard_spearman_fit_matches_pre_shard_bytes() {
    let mut config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    config.method = CorrelationMethod::Spearman;
    assert_pinned(config, &EngineOptions::default(), "pin_spearman.dpcm");
}
