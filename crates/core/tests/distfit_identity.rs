//! The distributed-fit correctness anchor: `fit_shard × N` +
//! `merge_shards` must release a model **byte-identical** to the
//! single-process `fit --shards N` at the same seeds, the streaming
//! `RowSource` fit must be byte-identical to the eager fit, and every
//! merge-misuse path must surface a named error (never a panic).

use datagen::{Attribute, Block, CsvFileSource, Dataset, DatasetSource, RowSource, SourceError};
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig};
use dpcopula::{distfit, CorrelationMethod, DpCopulaError, EngineOptions, SynthesisRequest};
use dpmech::Epsilon;
use obskit::MetricsSink;
use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};

fn off() -> MetricsSink {
    MetricsSink::off()
}

fn test_columns(m: usize, n: usize, domain: u32, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
    (0..m)
        .map(|j| {
            base.iter()
                .map(|&v| (v + rng.gen_range(0..domain / 4) + j as u32) % domain)
                .collect()
        })
        .collect()
}

fn test_dataset(m: usize, n: usize, domain: u32, seed: u64) -> Dataset {
    let columns = test_columns(m, n, domain, seed);
    let attributes = (0..m)
        .map(|j| Attribute::new(format!("attr{j}"), domain as usize))
        .collect();
    Dataset::new(attributes, columns)
}

/// Runs `fit_shard` for every shard of `dataset` under `shards`, each
/// from its own `DatasetSource` slice — the in-test stand-in for N
/// separate worker processes.
fn fit_all_shards(
    dataset: &Dataset,
    config: &DpCopulaConfig,
    shards: usize,
    base_seed: u64,
    opts: &EngineOptions,
) -> Vec<(String, modelstore::ShardArtifact)> {
    let n = dataset.len();
    let specs = dpcopula::shard::shard_specs(n, shards);
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let part_cols: Vec<Vec<u32>> = dataset
                .columns()
                .iter()
                .map(|col| col[spec.start..spec.end].to_vec())
                .collect();
            let part = Dataset::new(dataset.attributes().to_vec(), part_cols);
            let mut source = DatasetSource::new(part);
            let artifact =
                distfit::fit_shard(&mut source, config, i, shards, n, base_seed, opts, &off())
                    .unwrap();
            (format!("part{i}.dpcs"), artifact)
        })
        .collect()
}

#[test]
fn fit_shard_plus_merge_matches_in_process_sharded_fit_bytewise() {
    let dataset = test_dataset(3, 2_003, 32, 7);
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    for shards in [1usize, 4] {
        let mut opts = EngineOptions::with_workers(2);
        opts.shards = shards;

        // Reference: the single-process sharded fit on resident columns.
        let (mut reference, _) = DpCopula::new(config)
            .fit_staged(dataset.columns(), &dataset.domains(), 42, &opts)
            .unwrap();
        let names: Vec<&str> = dataset
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        reference.set_attribute_names(&names);

        // Distributed: N fit-shard workers + one merge.
        let parts = fit_all_shards(&dataset, &config, shards, 42, &opts);
        let merged = distfit::merge_shards(&parts, 2, &off()).unwrap();

        assert_eq!(
            merged.artifact().encode(),
            reference.artifact().encode(),
            "shards={shards}: merged .dpcm bytes differ from fit --shards"
        );
        // And the served rows agree (follows from artifact equality, but
        // pins the whole serve path too).
        assert_eq!(
            merged.sample_range(0, 500, 3),
            reference.sample_range(0, 500, 1),
            "shards={shards}"
        );
    }
}

#[test]
fn fit_shard_identity_holds_under_record_sampling_and_other_margins() {
    // Fixed-k subsampling exercises the per-shard shuffle plan; the
    // margin registry name rides through the `.dpcs` config section.
    let dataset = test_dataset(3, 1_501, 24, 11);
    let mut config = DpCopulaConfig::kendall(Epsilon::new(2.0).unwrap());
    config.method = CorrelationMethod::Kendall(dpcopula::kendall::SamplingStrategy::Fixed(400));
    let config = config.with_margin(dpcopula::MarginMethod::Privelet);
    let mut opts = EngineOptions::with_workers(3);
    opts.shards = 4;
    let (mut reference, _) = DpCopula::new(config)
        .fit_staged(dataset.columns(), &dataset.domains(), 9, &opts)
        .unwrap();
    let names: Vec<&str> = dataset
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    reference.set_attribute_names(&names);

    let parts = fit_all_shards(&dataset, &config, 4, 9, &opts);
    let merged = distfit::merge_shards(&parts, 1, &off()).unwrap();
    assert_eq!(merged.artifact().encode(), reference.artifact().encode());
}

#[test]
fn dpcs_artifacts_round_trip_through_disk() {
    let dataset = test_dataset(2, 407, 16, 3);
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let mut opts = EngineOptions::with_workers(1);
    opts.shards = 2;
    let parts = fit_all_shards(&dataset, &config, 2, 5, &opts);

    let dir = std::env::temp_dir().join(format!("dpcs_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let loaded: Vec<(String, modelstore::ShardArtifact)> = parts
        .iter()
        .map(|(name, artifact)| {
            let path = dir.join(name);
            artifact.save(&path).unwrap();
            (
                name.clone(),
                modelstore::ShardArtifact::load(&path).unwrap(),
            )
        })
        .collect();
    for ((_, a), (_, b)) in parts.iter().zip(&loaded) {
        assert_eq!(a, b);
    }
    let from_disk = distfit::merge_shards(&loaded, 2, &off()).unwrap();
    let from_memory = distfit::merge_shards(&parts, 2, &off()).unwrap();
    assert_eq!(
        from_disk.artifact().encode(),
        from_memory.artifact().encode()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn streaming_source_fit_matches_eager_fit_bytewise() {
    let dataset = test_dataset(3, 1_200, 20, 13);
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    for shards in [1usize, 3] {
        let mut opts = EngineOptions::with_workers(2);
        opts.shards = shards;
        let (mut eager, _) = DpCopula::new(config)
            .fit_staged(dataset.columns(), &dataset.domains(), 21, &opts)
            .unwrap();
        let names: Vec<&str> = dataset
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        eager.set_attribute_names(&names);

        // Small blocks force the gather across many block boundaries.
        let mut source = DatasetSource::with_block_rows(dataset.clone(), 97);
        let (streamed, _) = DpCopula::new(config)
            .fit_source(&mut source, 21, &opts)
            .unwrap();
        assert_eq!(
            streamed.artifact().encode(),
            eager.artifact().encode(),
            "shards={shards}"
        );
    }
}

#[test]
fn streaming_csv_source_fit_matches_eager_fit_bytewise() {
    // The CSV file source is the out-of-core ingestion the CLI and the
    // daemon use; its parse must feed the exact same values.
    let dataset = test_dataset(2, 803, 12, 17);
    let dir = std::env::temp_dir().join(format!("distfit_csv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("input.csv");
    datagen::io::save_csv(&dataset, &path).unwrap();

    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let opts = EngineOptions::with_workers(2);
    let (mut eager, _) = DpCopula::new(config)
        .fit_staged(dataset.columns(), &dataset.domains(), 5, &opts)
        .unwrap();
    let names: Vec<&str> = dataset
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    eager.set_attribute_names(&names);

    let mut source = CsvFileSource::open_with_block_rows(&path, 128).unwrap();
    let (streamed, _) = DpCopula::new(config)
        .fit_source(&mut source, 5, &opts)
        .unwrap();
    assert_eq!(streamed.artifact().encode(), eager.artifact().encode());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn source_request_surface_matches_eager_request_bytewise() {
    let dataset = test_dataset(3, 900, 16, 23);
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());

    // run(): released synthesis identical.
    let (eager, _) = SynthesisRequest::from_config(dataset.columns(), &dataset.domains(), config)
        .seed(31)
        .workers(2)
        .run()
        .unwrap();
    let (streamed, _) =
        SynthesisRequest::from_source_config(DatasetSource::new(dataset.clone()), config)
            .seed(31)
            .workers(2)
            .run()
            .unwrap();
    assert_eq!(streamed.columns, eager.columns);
    assert_eq!(streamed.correlation, eager.correlation);
    assert_eq!(streamed.noisy_margins, eager.noisy_margins);

    // A rewindable source backs repeated runs.
    let request = SynthesisRequest::from_source_config(DatasetSource::new(dataset.clone()), config)
        .seed(31)
        .workers(2);
    let (a, _) = request.run().unwrap();
    let (b, _) = request.run().unwrap();
    assert_eq!(a.columns, b.columns);

    // The .input() migration hop releases the same bytes as from_source.
    let (hopped, _) = SynthesisRequest::from_config(dataset.columns(), &dataset.domains(), config)
        .input(DatasetSource::new(dataset.clone()))
        .seed(31)
        .workers(2)
        .run()
        .unwrap();
    assert_eq!(hopped.columns, eager.columns);

    // fit() through a source names the schema from the source.
    let (model, _) = SynthesisRequest::from_source_config(DatasetSource::new(dataset), config)
        .seed(31)
        .fit()
        .unwrap();
    let got: Vec<&str> = model
        .artifact()
        .schema
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    assert_eq!(got, vec!["attr0", "attr1", "attr2"]);
}

#[test]
fn fit_shard_misuse_returns_named_errors() {
    let dataset = test_dataset(2, 100, 8, 29);
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let opts = EngineOptions::default();

    let mut source = DatasetSource::new(dataset.clone());
    assert_eq!(
        distfit::fit_shard(&mut source, &config, 0, 0, 100, 1, &opts, &off()).unwrap_err(),
        DpCopulaError::ZeroShards
    );
    let mut source = DatasetSource::new(dataset.clone());
    assert_eq!(
        distfit::fit_shard(&mut source, &config, 4, 4, 100, 1, &opts, &off()).unwrap_err(),
        DpCopulaError::ShardIndexOutOfRange {
            index: 4,
            shards: 4
        }
    );
    let mut source = DatasetSource::new(dataset.clone());
    assert_eq!(
        distfit::fit_shard(&mut source, &config, 0, 101, 100, 1, &opts, &off()).unwrap_err(),
        DpCopulaError::TooManyShards {
            shards: 101,
            records: 100
        }
    );
    // The part holds all 100 rows but shard 0 of 4 covers only 25.
    let mut source = DatasetSource::new(dataset.clone());
    assert_eq!(
        distfit::fit_shard(&mut source, &config, 0, 4, 100, 1, &opts, &off()).unwrap_err(),
        DpCopulaError::ShardRowCountMismatch {
            expected: 25,
            found: 100
        }
    );
    // Non-mergeable estimators are refused up front.
    let mut mle = config;
    mle.method = CorrelationMethod::Mle(dpcopula::mle::PartitionStrategy::Fixed(10));
    let mut source = DatasetSource::new(dataset);
    assert_eq!(
        distfit::fit_shard(&mut source, &mle, 0, 1, 100, 1, &opts, &off()).unwrap_err(),
        DpCopulaError::ShardedCorrelationUnsupported { method: "mle" }
    );
}

#[test]
fn merge_misuse_names_the_culprit_file() {
    let dataset = test_dataset(2, 403, 8, 37);
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let mut opts = EngineOptions::with_workers(1);
    opts.shards = 3;
    let parts = fit_all_shards(&dataset, &config, 3, 2, &opts);

    // Wrong artifact count vs the declared shard count.
    assert_eq!(
        distfit::merge_shards(&parts[..2], 1, &off()).unwrap_err(),
        DpCopulaError::ShardCountMismatch {
            declared: 3,
            provided: 2
        }
    );

    // Duplicate shard index: replace part2 with a copy of part1.
    let mut dup = parts.clone();
    dup[2] = ("dup.dpcs".into(), parts[1].1.clone());
    assert_eq!(
        distfit::merge_shards(&dup, 1, &off()).unwrap_err(),
        DpCopulaError::DuplicateShardIndex {
            index: 1,
            file: "dup.dpcs".into()
        }
    );

    // Schema mismatch names the culprit file, not just "a mismatch".
    let mut alien = parts.clone();
    let mut bad = alien[1].1.clone();
    bad.schema[0] = modelstore::AttributeSpec::new("other", 9);
    alien[1] = ("alien.dpcs".into(), bad);
    match distfit::merge_shards(&alien, 1, &off()).unwrap_err() {
        DpCopulaError::ShardArtifactMismatch { file, reason } => {
            assert_eq!(file, "alien.dpcs");
            assert!(reason.contains("schema"), "{reason}");
        }
        other => panic!("unexpected error {other}"),
    }

    // Config mismatch (different ε) likewise.
    let mut skewed = parts.clone();
    let mut bad = skewed[2].1.clone();
    bad.config.epsilon = 2.0;
    skewed[2] = ("skewed.dpcs".into(), bad);
    match distfit::merge_shards(&skewed, 1, &off()).unwrap_err() {
        DpCopulaError::ShardArtifactMismatch { file, reason } => {
            assert_eq!(file, "skewed.dpcs");
            assert!(reason.contains("configuration"), "{reason}");
        }
        other => panic!("unexpected error {other}"),
    }

    // An empty merge set is refused.
    assert_eq!(
        distfit::merge_shards(&[], 1, &off()).unwrap_err(),
        DpCopulaError::EmptyInput
    );
}

/// A deliberately misbehaving source: advertises domain 4 but emits a 9.
/// `Dataset` can't represent this (its constructor validates), which is
/// exactly why the streaming gather must catch it itself.
struct LyingSource {
    attrs: Vec<Attribute>,
    done: bool,
}

impl RowSource for LyingSource {
    fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }
    fn rewindable(&self) -> bool {
        true
    }
    fn next_block(&mut self) -> Result<Option<Block>, SourceError> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        Ok(Some(Block::new(vec![vec![0, 1, 2, 3], vec![0, 1, 9, 3]])))
    }
    fn rewind(&mut self) -> Result<(), SourceError> {
        self.done = false;
        Ok(())
    }
}

#[test]
fn streaming_gather_validates_like_the_eager_path() {
    let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
    let mut source = LyingSource {
        attrs: vec![Attribute::new("a", 4), Attribute::new("b", 4)],
        done: false,
    };
    let err = DpCopula::new(config)
        .fit_source(&mut source, 1, &EngineOptions::default())
        .unwrap_err();
    assert_eq!(
        err,
        DpCopulaError::ValueOutOfDomain {
            dim: 1,
            value: 9,
            domain: 4
        }
    );
}
