//! Property-based tests for the DPCopula core: the Kendall fast/naive
//! equivalence, the sensitivity bound of Lemma 4.1 verified empirically,
//! marginal-distribution invariants, and synthesizer output contracts.

use dpcopula::empirical::{pseudo_copula_column, MarginalDistribution, QuantileTable};
use dpcopula::kendall::{kendall_sensitivity, kendall_tau, kendall_tau_naive};
use dpcopula::sampler::CopulaSampler;
use dpcopula::synthesizer::{DpCopula, DpCopulaConfig};
use dpmech::Epsilon;
use mathkit::correlation::{
    clamp_to_correlation, correlation_from_upper_triangle, repair_positive_definite,
};
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use testkit::prop::vec;
use testkit::{prop_assert, prop_assert_eq, property_tests};

property_tests! {
    fn kendall_fast_equals_naive(
        pairs in vec((0u32..20, 0u32..20), 2..120),
    ) {
        let x: Vec<u32> = pairs.iter().map(|&(a, _)| a).collect();
        let y: Vec<u32> = pairs.iter().map(|&(_, b)| b).collect();
        let fast = kendall_tau(&x, &y);
        let slow = kendall_tau_naive(&x, &y);
        prop_assert!((fast - slow).abs() < 1e-12, "fast {fast} slow {slow}");
    }

    fn kendall_is_within_unit_interval(
        pairs in vec((0u32..1000, 0u32..1000), 2..200),
    ) {
        let x: Vec<u32> = pairs.iter().map(|&(a, _)| a).collect();
        let y: Vec<u32> = pairs.iter().map(|&(_, b)| b).collect();
        let t = kendall_tau(&x, &y);
        prop_assert!((-1.0..=1.0).contains(&t));
    }

    /// Lemma 4.1: adding one record changes tau by at most 4/(n+1).
    /// (Empirical spot-check of the proof, on the *larger* dataset's n as
    /// the bound is stated for the neighbouring pair.)
    fn kendall_sensitivity_bound_holds(
        pairs in vec((0u32..15, 0u32..15), 3..60),
        extra in (0u32..15, 0u32..15),
    ) {
        let x: Vec<u32> = pairs.iter().map(|&(a, _)| a).collect();
        let y: Vec<u32> = pairs.iter().map(|&(_, b)| b).collect();
        let t_small = kendall_tau(&x, &y);
        let mut x2 = x.clone();
        let mut y2 = y.clone();
        x2.push(extra.0);
        y2.push(extra.1);
        let t_big = kendall_tau(&x2, &y2);
        let n = x.len();
        prop_assert!(
            (t_small - t_big).abs() <= kendall_sensitivity(n) + 1e-12,
            "delta {} exceeds bound {} at n={n}",
            (t_small - t_big).abs(),
            kendall_sensitivity(n)
        );
    }

    fn pseudo_copula_stays_in_open_unit_interval(
        values in vec(0u32..10_000, 1..200),
    ) {
        let u = pseudo_copula_column(&values);
        prop_assert!(u.iter().all(|&v| v > 0.0 && v < 1.0));
        // Rank order preserved.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(u[i] < u[j]);
                }
            }
        }
    }

    fn marginal_distribution_invariants(
        counts in vec(-50.0f64..500.0, 1..100),
        p in 0.0f64..1.0,
    ) {
        let m = MarginalDistribution::from_noisy_histogram(&counts);
        // CDF is monotone and ends at 1.
        let mut prev = 0.0;
        for k in 0..m.domain() as u32 {
            let c = m.cdf(k);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
        prop_assert_eq!(m.cdf(m.domain() as u32 - 1), 1.0);
        // Galois connection of the quantile.
        let k = m.quantile(p);
        prop_assert!(m.cdf(k) >= p - 1e-12);
        prop_assert!((k as usize) < m.domain());
    }

    fn sampler_respects_domains_for_arbitrary_margins(
        hists in vec(vec(0.0f64..100.0, 1..30), 2..4),
        rho in -0.9f64..0.9,
        seed in 0u64..100,
    ) {
        let m = hists.len();
        let pairs: Vec<f64> = vec![rho; m * (m - 1) / 2];
        let mut p = correlation_from_upper_triangle(m, &pairs);
        clamp_to_correlation(&mut p);
        let p = repair_positive_definite(&p);
        let margins: Vec<MarginalDistribution> = hists
            .iter()
            .map(|h| MarginalDistribution::from_noisy_histogram(h))
            .collect();
        let domains: Vec<usize> = margins.iter().map(MarginalDistribution::domain).collect();
        let sampler = CopulaSampler::new(&p, margins).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let cols = sampler.sample_columns(50, &mut rng);
        for (col, &d) in cols.iter().zip(&domains) {
            prop_assert!(col.iter().all(|&v| (v as usize) < d));
        }
    }

    fn quantile_table_is_monotone_and_matches_exact_inversion(
        counts in vec(-50.0f64..500.0, 1..80),
        zs in vec(-9.0f64..9.0, 1..60),
    ) {
        let m = MarginalDistribution::from_noisy_histogram(&counts);
        let table = QuantileTable::new(&m);
        let mut sorted = zs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0u32;
        for (i, &z) in sorted.iter().enumerate() {
            let fast = table.quantile_z(z);
            // Monotone in z.
            if i > 0 {
                prop_assert!(fast >= prev, "z {z}: {fast} < {prev}");
            }
            prev = fast;
            // Max-error contract vs exact inversion: identical except
            // where Phi(z) lands within an ulp of a CDF step, where the
            // two may disagree by that single boundary category.
            let u = mathkit::special::norm_cdf(z);
            let exact = m.quantile(u);
            if fast != exact {
                prop_assert!(fast.abs_diff(exact) == 1, "z {z}: {fast} vs {exact}");
                let boundary = m.cdf(fast.min(exact));
                prop_assert!(
                    (boundary - u).abs() < 1e-9,
                    "z {z}: non-boundary mismatch {fast} vs {exact}"
                );
            }
        }
    }

    fn synthesizer_output_contract(
        n in 20usize..200,
        domain in 12usize..64,
        eps in 0.1f64..10.0,
        seed in 0u64..50,
    ) {
        let cols: Vec<Vec<u32>> = vec![
            (0..n).map(|i| (i % domain) as u32).collect(),
            (0..n).map(|i| ((i * 7) % domain) as u32).collect(),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        let config = DpCopulaConfig::kendall(Epsilon::new(eps).unwrap());
        let out = DpCopula::new(config)
            .synthesize(&cols, &[domain, domain], &mut rng)
            .unwrap();
        prop_assert_eq!(out.columns.len(), 2);
        prop_assert_eq!(out.columns[0].len(), n);
        prop_assert!(out.columns.iter().flatten().all(|&v| (v as usize) < domain));
        // Budget conservation (Theorem 4.2).
        prop_assert!((out.epsilon_margins + out.epsilon_correlations - eps).abs() < 1e-9);
        // Released correlation matrix is a valid correlation matrix.
        prop_assert!(mathkit::correlation::is_correlation_shaped(&out.correlation, 1e-9));
        prop_assert!(mathkit::cholesky::is_positive_definite(&out.correlation));
    }
}
