//! Serial-vs-parallel bitwise equivalence — the staged engine's
//! determinism contract, pinned down per stage and end-to-end.
//!
//! Every stochastic task in the engine derives its generator from
//! `(base_seed, stream, logical index)`, never from the thread it runs
//! on, so `workers = 1` (serial) and any other worker count must produce
//! **identical bytes**. These tests compare at worker counts {1, 2, 7} —
//! one below, at, and above the task counts involved.

use dpcopula::engine::EngineOptions;
use dpcopula::kendall::{dp_tau_matrix_par, SamplingStrategy};
use dpcopula::mle::{dp_mle_matrix_par, PartitionStrategy};
use dpcopula::spearman::dp_spearman_matrix_par;
use dpcopula::synthesizer::{CorrelationMethod, DpCopula, DpCopulaConfig, MarginMethod};
use dpmech::Epsilon;
use obskit::MetricsSink;
use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};

const WORKER_COUNTS: [usize; 2] = [2, 7];

/// A disabled sink: the estimator fns take one, equivalence doesn't record.
fn off() -> MetricsSink {
    MetricsSink::off()
}

/// Dependent integer columns with mixed domain sizes.
fn dataset(m: usize, n: usize, seed: u64) -> (Vec<Vec<u32>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1000u32)).collect();
    let domains: Vec<usize> = (0..m).map(|j| [16, 64, 256, 1000][j % 4]).collect();
    let columns = domains
        .iter()
        .enumerate()
        .map(|(j, &d)| {
            base.iter()
                .map(|&v| {
                    ((v + rng.gen_range(0..200u32)) as usize * d / 1200 + j) as u32 % d as u32
                })
                .collect()
        })
        .collect();
    (columns, domains)
}

fn bits(cols: &[Vec<f64>]) -> Vec<Vec<u64>> {
    cols.iter()
        .map(|c| c.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn margins_are_bitwise_equal_across_worker_counts() {
    let (columns, domains) = dataset(5, 3_000, 1);
    for margin in [
        MarginMethod::Efpa,
        MarginMethod::Identity,
        MarginMethod::Privelet,
    ] {
        let config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()).with_margin(margin);
        let dp = DpCopula::new(config);
        let (serial, _) = dp
            .synthesize_staged(&columns, &domains, 101, &EngineOptions::with_workers(1))
            .unwrap();
        for workers in WORKER_COUNTS {
            let (par, _) = dp
                .synthesize_staged(
                    &columns,
                    &domains,
                    101,
                    &EngineOptions::with_workers(workers),
                )
                .unwrap();
            assert_eq!(
                bits(&par.noisy_margins),
                bits(&serial.noisy_margins),
                "margin={margin:?} workers={workers}"
            );
        }
    }
}

#[test]
fn kendall_matrix_is_bitwise_equal_across_worker_counts() {
    let (columns, _) = dataset(5, 4_000, 2);
    let eps = Epsilon::new(0.5).unwrap();
    for strategy in [
        SamplingStrategy::Full,
        SamplingStrategy::Auto,
        SamplingStrategy::Fixed(700),
    ] {
        let serial = dp_tau_matrix_par(&columns, eps, strategy, 202, 1, &off()).unwrap();
        for workers in WORKER_COUNTS {
            let par = dp_tau_matrix_par(&columns, eps, strategy, 202, workers, &off()).unwrap();
            assert_eq!(par, serial, "strategy={strategy:?} workers={workers}");
        }
    }
}

#[test]
fn mle_matrix_is_bitwise_equal_across_worker_counts() {
    let (columns, _) = dataset(4, 6_000, 3);
    let eps = Epsilon::new(2.0).unwrap();
    let serial =
        dp_mle_matrix_par(&columns, eps, PartitionStrategy::Fixed(120), 303, 1, &off()).unwrap();
    for workers in WORKER_COUNTS {
        let par = dp_mle_matrix_par(
            &columns,
            eps,
            PartitionStrategy::Fixed(120),
            303,
            workers,
            &off(),
        )
        .unwrap();
        assert_eq!(par, serial, "workers={workers}");
    }
}

#[test]
fn spearman_matrix_is_bitwise_equal_across_worker_counts() {
    let (columns, _) = dataset(5, 3_000, 4);
    let eps = Epsilon::new(1.0).unwrap();
    let serial = dp_spearman_matrix_par(&columns, eps, 404, 1, &off()).unwrap();
    for workers in WORKER_COUNTS {
        let par = dp_spearman_matrix_par(&columns, eps, 404, workers, &off()).unwrap();
        assert_eq!(par, serial, "workers={workers}");
    }
}

#[test]
fn sampled_records_are_bitwise_equal_across_worker_counts() {
    let (columns, domains) = dataset(4, 5_000, 5);
    for method in [
        CorrelationMethod::Kendall(SamplingStrategy::Auto),
        CorrelationMethod::Mle(PartitionStrategy::Fixed(100)),
        CorrelationMethod::Spearman,
    ] {
        let mut config = DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap());
        config.method = method;
        let dp = DpCopula::new(config);
        // Small chunks so several sampling tasks exist per worker.
        let mut opts = EngineOptions::with_workers(1);
        opts.sample_chunk = 512;
        let (serial, _) = dp
            .synthesize_staged(&columns, &domains, 505, &opts)
            .unwrap();
        for workers in WORKER_COUNTS {
            let mut opts = EngineOptions::with_workers(workers);
            opts.sample_chunk = 512;
            let (par, _) = dp
                .synthesize_staged(&columns, &domains, 505, &opts)
                .unwrap();
            assert_eq!(
                par.columns, serial.columns,
                "method={method:?} workers={workers}"
            );
            assert_eq!(par.correlation, serial.correlation, "method={method:?}");
        }
    }
}

#[test]
fn fitted_model_windows_are_bitwise_equal_across_worker_counts() {
    // The serving layer's contract: `sample_range` is keyed off absolute
    // row position, so rows [0, N) must equal the concatenation of
    // [0, k) and [k, N) — for every split point, at every worker count,
    // and after an artifact save/load round-trip.
    let (columns, domains) = dataset(4, 3_000, 7);
    let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));
    let mut opts = EngineOptions::with_workers(1);
    opts.sample_chunk = 512; // several chunks per window
    let (model, _) = dp.fit_staged(&columns, &domains, 606, &opts).unwrap();

    let n = 2_500;
    let whole = model.sample_range(0, n, 1);
    for k in [1, 511, 512, 513, 1_250, 2_499] {
        for &workers in &[1, 2, 7] {
            let head = model.sample_range(0, k, workers);
            let tail = model.sample_range(k, n - k, workers);
            for j in 0..model.dims() {
                let stitched: Vec<u32> = head[j].iter().chain(&tail[j]).copied().collect();
                assert_eq!(stitched, whole[j], "split k={k} workers={workers} col {j}");
            }
        }
    }

    // And the same window served from reloaded bytes.
    let dir = std::env::temp_dir().join(format!("dpcm_equiv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.dpcm");
    model.save(&path).unwrap();
    let reloaded = dpcopula::FittedModel::load(&path).unwrap();
    assert_eq!(reloaded.sample_range(0, n, 7), whole);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reference_profile_is_the_default_and_pins_todays_bytes() {
    // The two-profile contract, reference side: a config that never
    // mentions profiles and one that asks for `Reference` explicitly
    // release identical bytes at workers {1, 2, 7} — introducing the
    // knob must not move the pinned stream.
    let (columns, domains) = dataset(4, 3_000, 8);
    let implicit = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));
    let explicit = DpCopula::new(
        DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap())
            .with_profile(dpcopula::SamplingProfile::Reference),
    );
    let mut opts = EngineOptions::with_workers(1);
    opts.sample_chunk = 512;
    let (base, _) = implicit
        .synthesize_staged(&columns, &domains, 707, &opts)
        .unwrap();
    for &workers in &[1, 2, 7] {
        let mut opts = EngineOptions::with_workers(workers);
        opts.sample_chunk = 512;
        let (exp, _) = explicit
            .synthesize_staged(&columns, &domains, 707, &opts)
            .unwrap();
        assert_eq!(exp.columns, base.columns, "workers={workers}");
    }
}

#[test]
fn fast_profile_is_bitwise_equal_with_itself_across_worker_counts() {
    // The two-profile contract, fast side: same seed ⇒ same bytes at any
    // worker count, through the full engine and through serving.
    let (columns, domains) = dataset(4, 3_000, 9);
    let dp = DpCopula::new(
        DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap())
            .with_profile(dpcopula::SamplingProfile::Fast),
    );
    let mut opts = EngineOptions::with_workers(1);
    opts.sample_chunk = 512;
    let (serial, _) = dp
        .synthesize_staged(&columns, &domains, 808, &opts)
        .unwrap();
    for workers in WORKER_COUNTS {
        let mut opts = EngineOptions::with_workers(workers);
        opts.sample_chunk = 512;
        let (par, _) = dp
            .synthesize_staged(&columns, &domains, 808, &opts)
            .unwrap();
        assert_eq!(par.columns, serial.columns, "workers={workers}");
    }

    // Serving side: fast windows split seamlessly, like reference ones.
    let (model, _) = dp.fit_staged(&columns, &domains, 808, &opts).unwrap();
    let fast = dpcopula::SamplingProfile::Fast;
    let n = 2_000;
    let whole = model.sample_range_profiled(fast, 0, n, 1);
    for k in [1, 511, 512, 513, 1_999] {
        for &workers in &[1, 2, 7] {
            let head = model.sample_range_profiled(fast, 0, k, workers);
            let tail = model.sample_range_profiled(fast, k, n - k, workers);
            for j in 0..model.dims() {
                let stitched: Vec<u32> = head[j].iter().chain(&tail[j]).copied().collect();
                assert_eq!(stitched, whole[j], "split k={k} workers={workers} col {j}");
            }
        }
    }
}

#[test]
fn serial_api_reproduces_per_seed_on_any_worker_count() {
    // `synthesize` draws its base seed from the caller's rng and runs the
    // staged engine with default options — so the same caller seed must
    // reproduce even when PARKIT_WORKERS (or the core count) varies.
    let (columns, domains) = dataset(3, 2_000, 6);
    let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(1.0).unwrap()));
    let run = || {
        let mut rng = StdRng::seed_from_u64(99);
        dp.synthesize(&columns, &domains, &mut rng).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.columns, b.columns);
    assert_eq!(a.correlation, b.correlation);
    assert_eq!(bits(&a.noisy_margins), bits(&b.noisy_margins));
}
