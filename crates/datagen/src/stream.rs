//! Epoch streams with drifting dependence — the data substrate for the
//! evolving-data synthesizer (the paper's future-work item on
//! "dynamically evolving datasets").
//!
//! A [`DriftingStream`] yields one columnar batch per epoch, all sharing
//! the margins of a base [`SyntheticSpec`] while the AR(1) dependence
//! parameter follows a caller-supplied schedule (linear drift by
//! default). Generation is deterministic per epoch index.

use crate::dataset::Dataset;
use crate::synthetic::SyntheticSpec;

/// How the dependence parameter `rho` evolves over epochs.
#[derive(Debug, Clone)]
pub enum RhoSchedule {
    /// Constant dependence (a stationary stream).
    Constant(f64),
    /// Linear drift from `from` to `to` across `epochs` steps, then held.
    Linear {
        /// Initial `rho`.
        from: f64,
        /// Final `rho`.
        to: f64,
        /// Number of epochs over which to interpolate.
        epochs: usize,
    },
}

impl RhoSchedule {
    /// The `rho` for epoch `e`.
    pub fn rho_at(&self, e: usize) -> f64 {
        match *self {
            RhoSchedule::Constant(r) => r,
            RhoSchedule::Linear { from, to, epochs } => {
                if epochs <= 1 {
                    to
                } else {
                    let t = (e.min(epochs - 1)) as f64 / (epochs - 1) as f64;
                    from + (to - from) * t
                }
            }
        }
    }
}

/// A deterministic generator of per-epoch batches.
#[derive(Debug, Clone)]
pub struct DriftingStream {
    base: SyntheticSpec,
    schedule: RhoSchedule,
    next_epoch: usize,
}

impl DriftingStream {
    /// Creates a stream; `base.records` is the per-epoch batch size and
    /// `base.rho`/`base.seed` are overridden per epoch.
    pub fn new(base: SyntheticSpec, schedule: RhoSchedule) -> Self {
        Self {
            base,
            schedule,
            next_epoch: 0,
        }
    }

    /// Epochs generated so far.
    pub fn epoch(&self) -> usize {
        self.next_epoch
    }

    /// Generates the batch for a specific epoch index (idempotent).
    pub fn batch_at(&self, e: usize) -> Dataset {
        let mut spec = self.base.clone();
        spec.rho = self.schedule.rho_at(e).clamp(-0.999, 0.999);
        spec.seed = self
            .base
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(e as u64 + 1));
        spec.generate()
    }
}

impl Iterator for DriftingStream {
    type Item = Dataset;

    fn next(&mut self) -> Option<Dataset> {
        let d = self.batch_at(self.next_epoch);
        self.next_epoch += 1;
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::MarginKind;
    use mathkit::stats::pearson;

    fn base() -> SyntheticSpec {
        SyntheticSpec {
            records: 4_000,
            dims: 2,
            domain: 200,
            margin: MarginKind::Gaussian,
            rho: 0.0,
            seed: 42,
        }
    }

    fn corr(d: &Dataset) -> f64 {
        let a: Vec<f64> = d.columns()[0].iter().map(|&v| f64::from(v)).collect();
        let b: Vec<f64> = d.columns()[1].iter().map(|&v| f64::from(v)).collect();
        pearson(&a, &b)
    }

    #[test]
    fn schedule_endpoints() {
        let s = RhoSchedule::Linear {
            from: 0.1,
            to: 0.9,
            epochs: 5,
        };
        assert!((s.rho_at(0) - 0.1).abs() < 1e-12);
        assert!((s.rho_at(4) - 0.9).abs() < 1e-12);
        assert!((s.rho_at(2) - 0.5).abs() < 1e-12);
        // Held after the last scheduled epoch.
        assert!((s.rho_at(99) - 0.9).abs() < 1e-12);
        assert_eq!(RhoSchedule::Constant(0.3).rho_at(7), 0.3);
    }

    #[test]
    fn stream_is_deterministic_and_advances() {
        let mut s1 = DriftingStream::new(base(), RhoSchedule::Constant(0.5));
        let mut s2 = DriftingStream::new(base(), RhoSchedule::Constant(0.5));
        assert_eq!(s1.next().unwrap(), s2.next().unwrap());
        assert_eq!(s1.epoch(), 1);
        // Different epochs get different data.
        assert_ne!(s1.next().unwrap(), s2.batch_at(0));
    }

    #[test]
    fn drift_is_visible_in_the_data() {
        let s = DriftingStream::new(
            base(),
            RhoSchedule::Linear {
                from: 0.1,
                to: 0.85,
                epochs: 4,
            },
        );
        let first = corr(&s.batch_at(0));
        let last = corr(&s.batch_at(3));
        assert!(first < 0.3, "first-epoch correlation {first}");
        assert!(last > 0.6, "last-epoch correlation {last}");
    }

    #[test]
    fn batches_share_shape() {
        let mut s = DriftingStream::new(base(), RhoSchedule::Constant(0.2));
        let d = s.next().unwrap();
        assert_eq!(d.len(), 4_000);
        assert_eq!(d.dims(), 2);
        assert!(d.columns().iter().flatten().all(|&v| v < 200));
    }
}
