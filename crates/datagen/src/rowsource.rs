//! Streaming row ingestion: the [`RowSource`] trait and its adapters.
//!
//! A [`RowSource`] yields a dataset as a sequence of bounded columnar
//! [`Block`]s instead of one eager [`Dataset`], so a consumer can fit a
//! 100M+-row CSV while holding only one block of rows resident at a
//! time. Sources advertise a one-pass/two-pass capability through
//! [`RowSource::rewindable`]: the copula fit makes two passes over its
//! input (a counting/validation pass, then a gather pass), so a
//! rewindable source streams both passes out of core while a one-pass
//! source gets buffered in memory by the consumer (correct, but with
//! eager-sized memory).

use crate::dataset::{Attribute, Dataset};
use crate::io::CsvError;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Seek, SeekFrom};
use std::path::Path;

/// Default number of rows per block for the buffered adapters.
pub const DEFAULT_BLOCK_ROWS: usize = 8192;

/// A bounded columnar chunk of rows: `columns()[j][i]` is row `i`'s
/// value of attribute `j` within this block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    columns: Vec<Vec<u32>>,
}

impl Block {
    /// Builds a block from columnar data.
    ///
    /// # Panics
    /// Panics when `columns` is empty or ragged — a block always carries
    /// at least one attribute and the same row count per column.
    pub fn new(columns: Vec<Vec<u32>>) -> Self {
        assert!(!columns.is_empty(), "block needs at least one column");
        let rows = columns[0].len();
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "ragged block columns"
        );
        Self { columns }
    }

    /// Rows in this block.
    pub fn rows(&self) -> usize {
        self.columns[0].len()
    }

    /// The block's data, column-major.
    pub fn columns(&self) -> &[Vec<u32>] {
        &self.columns
    }
}

/// Errors arising while pulling rows from a source.
#[derive(Debug)]
pub enum SourceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the source contents.
    Malformed {
        /// 1-based line (or record) number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// [`RowSource::rewind`] was called on a one-pass source.
    NotRewindable,
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Io(e) => write!(f, "io error: {e}"),
            SourceError::Malformed { line, reason } => {
                write!(f, "malformed input at line {line}: {reason}")
            }
            SourceError::NotRewindable => {
                write!(f, "source is one-pass and cannot rewind")
            }
        }
    }
}

impl std::error::Error for SourceError {}

impl From<io::Error> for SourceError {
    fn from(e: io::Error) -> Self {
        SourceError::Io(e)
    }
}

impl From<CsvError> for SourceError {
    fn from(e: CsvError) -> Self {
        match e {
            CsvError::Io(e) => SourceError::Io(e),
            CsvError::Malformed { line, reason } => SourceError::Malformed { line, reason },
        }
    }
}

/// A stream of rows with a fixed schema, consumed block by block.
///
/// The contract:
///
/// * [`attributes`](RowSource::attributes) is constant for the life of
///   the source and every block carries exactly one column per
///   attribute, values already validated against the attribute domains;
/// * [`next_block`](RowSource::next_block) yields `Ok(Some(block))`
///   until the stream is exhausted, then `Ok(None)` (idempotently);
/// * a **two-pass** source (`rewindable() == true`) restarts from the
///   first row after [`rewind`](RowSource::rewind); a **one-pass**
///   source returns [`SourceError::NotRewindable`] instead, and
///   consumers that need two passes must buffer its blocks.
pub trait RowSource {
    /// The schema of every block this source yields.
    fn attributes(&self) -> &[Attribute];

    /// True when [`rewind`](RowSource::rewind) can restart the stream
    /// for a second pass (the two-pass capability flag).
    fn rewindable(&self) -> bool;

    /// Pulls the next block, or `Ok(None)` at end of stream.
    fn next_block(&mut self) -> Result<Option<Block>, SourceError>;

    /// Restarts the stream from the first row.
    fn rewind(&mut self) -> Result<(), SourceError>;

    /// Total row count, when the source knows it without a pass.
    fn known_rows(&self) -> Option<usize> {
        None
    }
}

/// The eager-to-streaming adapter: serves an in-memory [`Dataset`] as a
/// rewindable [`RowSource`], one bounded block at a time.
#[derive(Debug, Clone)]
pub struct DatasetSource {
    dataset: Dataset,
    cursor: usize,
    block_rows: usize,
}

impl DatasetSource {
    /// Wraps a dataset with the default block size.
    pub fn new(dataset: Dataset) -> Self {
        Self::with_block_rows(dataset, DEFAULT_BLOCK_ROWS)
    }

    /// Wraps a dataset with an explicit block size (min 1).
    pub fn with_block_rows(dataset: Dataset, block_rows: usize) -> Self {
        Self {
            dataset,
            cursor: 0,
            block_rows: block_rows.max(1),
        }
    }
}

impl RowSource for DatasetSource {
    fn attributes(&self) -> &[Attribute] {
        self.dataset.attributes()
    }

    fn rewindable(&self) -> bool {
        true
    }

    fn next_block(&mut self) -> Result<Option<Block>, SourceError> {
        let n = self.dataset.len();
        if self.cursor >= n {
            return Ok(None);
        }
        let take = self.block_rows.min(n - self.cursor);
        let columns = self
            .dataset
            .columns()
            .iter()
            .map(|c| c[self.cursor..self.cursor + take].to_vec())
            .collect();
        self.cursor += take;
        Ok(Some(Block::new(columns)))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.cursor = 0;
        Ok(())
    }

    fn known_rows(&self) -> Option<usize> {
        Some(self.dataset.len())
    }
}

/// An out-of-core CSV [`RowSource`]: reads the same format as
/// [`crate::io::read_csv`] (header `name:domain,...`, one `u32` row per
/// record, blank lines skipped) through a buffered reader, holding at
/// most one block of rows resident. Rewinds by seeking back to the
/// first data byte, so a fit's two passes never materialize the file.
///
/// Validation is identical to the eager reader, byte for byte: the same
/// malformed-input conditions are rejected with the same 1-based line
/// numbers and reasons.
#[derive(Debug)]
pub struct CsvFileSource {
    reader: BufReader<File>,
    attributes: Vec<Attribute>,
    block_rows: usize,
    data_offset: u64,
    next_line: usize,
    line_buf: String,
}

impl CsvFileSource {
    /// Opens a CSV file with the default block size.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SourceError> {
        Self::open_with_block_rows(path, DEFAULT_BLOCK_ROWS)
    }

    /// Opens a CSV file with an explicit block size (min 1).
    pub fn open_with_block_rows(
        path: impl AsRef<Path>,
        block_rows: usize,
    ) -> Result<Self, SourceError> {
        let mut reader = BufReader::new(File::open(path)?);
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(SourceError::Malformed {
                line: 1,
                reason: "empty file".into(),
            });
        }
        trim_newline(&mut header);
        let mut attributes = Vec::new();
        for field in header.split(',') {
            let (name, domain) = field
                .rsplit_once(':')
                .ok_or_else(|| SourceError::Malformed {
                    line: 1,
                    reason: format!("header field `{field}` missing `:domain`"),
                })?;
            let domain: usize = domain.parse().map_err(|_| SourceError::Malformed {
                line: 1,
                reason: format!("bad domain in `{field}`"),
            })?;
            attributes.push(Attribute::new(name, domain));
        }
        let data_offset = reader.stream_position()?;
        Ok(Self {
            reader,
            attributes,
            block_rows: block_rows.max(1),
            data_offset,
            next_line: 2,
            line_buf: String::new(),
        })
    }
}

/// Strips one trailing `\n` (and a preceding `\r`, if any) in place —
/// the same normalization `BufRead::lines` applies.
fn trim_newline(s: &mut String) {
    if s.ends_with('\n') {
        s.pop();
        if s.ends_with('\r') {
            s.pop();
        }
    }
}

impl RowSource for CsvFileSource {
    fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    fn rewindable(&self) -> bool {
        true
    }

    fn next_block(&mut self) -> Result<Option<Block>, SourceError> {
        let m = self.attributes.len();
        let mut columns: Vec<Vec<u32>> = vec![Vec::with_capacity(self.block_rows); m];
        let mut rows = 0;
        while rows < self.block_rows {
            self.line_buf.clear();
            if self.reader.read_line(&mut self.line_buf)? == 0 {
                break;
            }
            let line = self.next_line;
            self.next_line += 1;
            trim_newline(&mut self.line_buf);
            if self.line_buf.is_empty() {
                continue;
            }
            let mut count = 0;
            for (j, field) in self.line_buf.split(',').enumerate() {
                if j >= m {
                    return Err(SourceError::Malformed {
                        line,
                        reason: "too many fields".into(),
                    });
                }
                let v: u32 = field.parse().map_err(|_| SourceError::Malformed {
                    line,
                    reason: format!("bad value `{field}`"),
                })?;
                if v as usize >= self.attributes[j].domain {
                    return Err(SourceError::Malformed {
                        line,
                        reason: format!(
                            "value {v} outside domain {} of {}",
                            self.attributes[j].domain, self.attributes[j].name
                        ),
                    });
                }
                columns[j].push(v);
                count += 1;
            }
            if count != m {
                return Err(SourceError::Malformed {
                    line,
                    reason: format!("expected {m} fields, got {count}"),
                });
            }
            rows += 1;
        }
        if rows == 0 {
            return Ok(None);
        }
        Ok(Some(Block::new(columns)))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.reader.seek(SeekFrom::Start(self.data_offset))?;
        self.next_line = 2;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_csv, save_csv};

    fn toy() -> Dataset {
        Dataset::new(
            vec![Attribute::new("a", 4), Attribute::new("b", 100)],
            vec![vec![0, 1, 3, 2, 1], vec![42, 0, 99, 7, 13]],
        )
    }

    fn drain(source: &mut dyn RowSource) -> Vec<Vec<u32>> {
        let m = source.attributes().len();
        let mut columns = vec![Vec::new(); m];
        while let Some(block) = source.next_block().unwrap() {
            for (acc, col) in columns.iter_mut().zip(block.columns()) {
                acc.extend_from_slice(col);
            }
        }
        columns
    }

    #[test]
    fn dataset_source_round_trips_in_blocks() {
        let d = toy();
        let mut s = DatasetSource::with_block_rows(d.clone(), 2);
        assert!(s.rewindable());
        assert_eq!(s.known_rows(), Some(5));
        assert_eq!(s.attributes(), d.attributes());
        assert_eq!(drain(&mut s), d.columns());
        // Exhausted stream stays exhausted until rewound.
        assert!(s.next_block().unwrap().is_none());
        s.rewind().unwrap();
        assert_eq!(drain(&mut s), d.columns());
    }

    #[test]
    fn csv_source_matches_eager_reader() {
        let dir = std::env::temp_dir().join(format!("rowsource-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.csv");
        save_csv(&toy(), &path).unwrap();

        let eager = read_csv(std::fs::File::open(&path).unwrap()).unwrap();
        for block_rows in [1, 2, 64] {
            let mut s = CsvFileSource::open_with_block_rows(&path, block_rows).unwrap();
            assert!(s.rewindable());
            assert_eq!(s.attributes(), eager.attributes());
            assert_eq!(drain(&mut s), eager.columns(), "block_rows={block_rows}");
            s.rewind().unwrap();
            assert_eq!(drain(&mut s), eager.columns(), "rewound");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_source_rejects_what_the_eager_reader_rejects() {
        let dir = std::env::temp_dir().join(format!("rowsource-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // (file contents, expected line) — the same cases io.rs pins,
        // plus a blank line before the error to exercise line counting.
        let cases = [
            ("", 1usize),
            ("justaname\n", 1),
            ("a:nope\n", 1),
            ("a:4\n7\n", 2),
            ("a:4,b:4\n1,2\n\n3\n", 4),
            ("a:4\n1,2\n", 2),
            ("a:4\nx\n", 2),
        ];
        for (i, (contents, want_line)) in cases.iter().enumerate() {
            let path = dir.join(format!("bad{i}.csv"));
            std::fs::write(&path, contents).unwrap();
            let eager_err = read_csv(contents.as_bytes()).unwrap_err();
            let streamed = CsvFileSource::open(&path).and_then(|mut s| {
                while s.next_block()?.is_some() {}
                Ok(())
            });
            let err = streamed.unwrap_err();
            match (&err, &eager_err) {
                (
                    SourceError::Malformed { line, reason },
                    CsvError::Malformed {
                        line: eline,
                        reason: ereason,
                    },
                ) => {
                    assert_eq!(line, eline, "case {i}");
                    assert_eq!(reason, ereason, "case {i}");
                    assert_eq!(line, want_line, "case {i}");
                }
                other => panic!("case {i}: unexpected errors {other:?}"),
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn blank_lines_are_skipped_across_block_boundaries() {
        let dir = std::env::temp_dir().join(format!("rowsource-blank-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blank.csv");
        std::fs::write(&path, "a:4\n1\n\n2\n\n\n3\n").unwrap();
        let mut s = CsvFileSource::open_with_block_rows(&path, 1).unwrap();
        assert_eq!(drain(&mut s), vec![vec![1, 2, 3]]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn source_error_display_names_the_line() {
        let e = SourceError::Malformed {
            line: 7,
            reason: "bad value `x`".into(),
        };
        assert_eq!(e.to_string(), "malformed input at line 7: bad value `x`");
        assert!(SourceError::NotRewindable.to_string().contains("one-pass"));
    }
}
