//! Finite discrete margins defined by probability tables.
//!
//! Every generator in this crate produces records through the same recipe
//! the paper's Figure 3 illustrates: draw a Gaussian-dependence vector,
//! map each component through `Phi` onto `(0,1)`, then through the
//! margin's quantile onto the attribute domain. [`TableMargin`] is that
//! quantile: a CDF table with binary-search inversion.

use mathkit::special::norm_cdf;

/// A discrete distribution over `0..domain` given by a CDF table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMargin {
    cdf: Vec<f64>,
}

impl TableMargin {
    /// Builds a margin from unnormalised non-negative weights.
    ///
    /// # Panics
    /// Panics when `weights` is empty, contains negatives/NaN, or sums
    /// to zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "margin needs at least one value");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// A uniform margin over `domain` values.
    pub fn uniform(domain: usize) -> Self {
        Self::from_weights(&vec![1.0; domain])
    }

    /// A discretised Gaussian margin over `domain` values, centred at
    /// `domain/2` with standard deviation `domain/6` (the shape used for
    /// the paper's synthetic Gaussian margins).
    pub fn gaussian(domain: usize) -> Self {
        let mid = domain as f64 / 2.0;
        let sd = (domain as f64 / 6.0).max(0.5);
        let weights: Vec<f64> = (0..domain)
            .map(|i| {
                let z = (i as f64 - mid) / sd;
                (-0.5 * z * z).exp()
            })
            .collect();
        Self::from_weights(&weights)
    }

    /// A Zipf margin with skew `s` over `domain` values.
    pub fn zipf(domain: usize, s: f64) -> Self {
        let weights: Vec<f64> = (0..domain)
            .map(|k| 1.0 / ((k + 1) as f64).powf(s))
            .collect();
        Self::from_weights(&weights)
    }

    /// A discretised log-normal margin (income-like long tail).
    pub fn lognormal(domain: usize, mu: f64, sigma: f64) -> Self {
        // Weight of bin i = density of logN at the bin's representative
        // point (i + 1 to avoid log 0).
        let weights: Vec<f64> = (0..domain)
            .map(|i| {
                let x = (i + 1) as f64;
                let z = (x.ln() - mu) / sigma;
                (-0.5 * z * z).exp() / x
            })
            .collect();
        Self::from_weights(&weights)
    }

    /// A two-point margin: `P(1) = p`, `P(0) = 1-p`.
    pub fn bernoulli(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        Self::from_weights(&[1.0 - p, p])
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// `P(X <= k)`.
    pub fn cdf(&self, k: u32) -> f64 {
        let k = k as usize;
        if k >= self.cdf.len() {
            1.0
        } else {
            self.cdf[k]
        }
    }

    /// Smallest `k` with `cdf(k) >= u`.
    pub fn quantile(&self, u: f64) -> u32 {
        let u = u.clamp(0.0, 1.0);
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as u32
    }

    /// Maps a standard-normal score onto the domain:
    /// `quantile(Phi(z))` — the probability-integral transform used by all
    /// Gaussian-dependence generators.
    pub fn from_normal_score(&self, z: f64) -> u32 {
        self.quantile(norm_cdf(z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_quantiles_cover_domain() {
        let m = TableMargin::uniform(4);
        assert_eq!(m.quantile(0.1), 0);
        assert_eq!(m.quantile(0.3), 1);
        assert_eq!(m.quantile(0.6), 2);
        assert_eq!(m.quantile(0.9), 3);
    }

    #[test]
    fn gaussian_peaks_in_the_middle() {
        let m = TableMargin::gaussian(100);
        // Median maps near the centre; extreme quantiles near the edges.
        assert!((i64::from(m.quantile(0.5)) - 50).abs() <= 1);
        assert!(m.quantile(0.001) < 20);
        assert!(m.quantile(0.999) > 80);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let m = TableMargin::zipf(1000, 1.2);
        assert_eq!(m.quantile(0.2), 0);
        assert!(m.cdf(0) > 0.2);
        assert!(m.cdf(10) > m.cdf(0));
    }

    #[test]
    fn bernoulli_split() {
        let m = TableMargin::bernoulli(0.3);
        assert_eq!(m.quantile(0.69), 0);
        assert_eq!(m.quantile(0.71), 1);
        assert_eq!(m.domain(), 2);
    }

    #[test]
    fn lognormal_has_long_tail() {
        let m = TableMargin::lognormal(586, 4.0, 1.0);
        let median = m.quantile(0.5);
        let p99 = m.quantile(0.99);
        assert!(p99 > 3 * median, "median {median}, p99 {p99}");
    }

    #[test]
    fn normal_score_transform_matches_cdf() {
        let m = TableMargin::gaussian(50);
        assert_eq!(m.from_normal_score(0.0), m.quantile(0.5));
        assert!(m.from_normal_score(-3.0) < m.from_normal_score(3.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        let _ = TableMargin::from_weights(&[1.0, -0.5]);
    }
}
