//! Minimal CSV import/export for [`Dataset`] — enough for the examples to
//! persist synthetic releases without pulling in a CSV dependency.
//!
//! Format: a header row `name:domain,name:domain,...` followed by one
//! comma-separated row of `u32` values per record.

use crate::dataset::{Attribute, Dataset};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors arising while reading a dataset.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Malformed { line, reason } => {
                write!(f, "malformed csv at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes the dataset to a writer.
pub fn write_csv<W: Write>(dataset: &Dataset, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let header: Vec<String> = dataset
        .attributes()
        .iter()
        .map(|a| format!("{}:{}", a.name, a.domain))
        .collect();
    writeln!(w, "{}", header.join(","))?;
    let n = dataset.len();
    let cols = dataset.columns();
    let mut line = String::new();
    for row in 0..n {
        line.clear();
        for (j, col) in cols.iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            line.push_str(&col[row].to_string());
        }
        writeln!(w, "{line}")?;
    }
    w.flush()
}

/// Writes the dataset to a file path.
pub fn save_csv(dataset: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    write_csv(dataset, std::fs::File::create(path)?)
}

/// Reads a dataset from a reader.
pub fn read_csv<R: Read>(r: R) -> Result<Dataset, CsvError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or(CsvError::Malformed {
        line: 1,
        reason: "empty file".into(),
    })??;
    let mut attributes = Vec::new();
    for field in header.split(',') {
        let (name, domain) = field.rsplit_once(':').ok_or_else(|| CsvError::Malformed {
            line: 1,
            reason: format!("header field `{field}` missing `:domain`"),
        })?;
        let domain: usize = domain.parse().map_err(|_| CsvError::Malformed {
            line: 1,
            reason: format!("bad domain in `{field}`"),
        })?;
        attributes.push(Attribute::new(name, domain));
    }
    let m = attributes.len();
    let mut columns: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut count = 0;
        for (j, field) in line.split(',').enumerate() {
            if j >= m {
                return Err(CsvError::Malformed {
                    line: i + 2,
                    reason: "too many fields".into(),
                });
            }
            let v: u32 = field.parse().map_err(|_| CsvError::Malformed {
                line: i + 2,
                reason: format!("bad value `{field}`"),
            })?;
            if v as usize >= attributes[j].domain {
                return Err(CsvError::Malformed {
                    line: i + 2,
                    reason: format!(
                        "value {v} outside domain {} of {}",
                        attributes[j].domain, attributes[j].name
                    ),
                });
            }
            columns[j].push(v);
            count += 1;
        }
        if count != m {
            return Err(CsvError::Malformed {
                line: i + 2,
                reason: format!("expected {m} fields, got {count}"),
            });
        }
    }
    Ok(Dataset::new(attributes, columns))
}

/// Reads a dataset from a file path.
pub fn load_csv(path: impl AsRef<Path>) -> Result<Dataset, CsvError> {
    read_csv(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![Attribute::new("a", 4), Attribute::new("b", 100)],
            vec![vec![0, 1, 3], vec![42, 0, 99]],
        )
    }

    #[test]
    fn round_trip() {
        let d = toy();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn header_carries_domains() {
        let mut buf = Vec::new();
        write_csv(&toy(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("a:4,b:100\n"));
    }

    #[test]
    fn rejects_out_of_domain_values() {
        let csv = "a:4\n7\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 2, .. }));
    }

    #[test]
    fn rejects_ragged_rows() {
        let csv = "a:4,b:4\n1,2\n3\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 3, .. }));
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_csv("justaname\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 1, .. }));
    }

    #[test]
    fn skips_blank_lines() {
        let csv = "a:4\n1\n\n2\n";
        let d = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
    }
}
