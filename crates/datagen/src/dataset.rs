//! Columnar dataset with attribute metadata.

/// One attribute: a name and the size of its integer domain
/// (values live on `0..domain`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Human-readable attribute name.
    pub name: String,
    /// Domain size.
    pub domain: usize,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, domain: usize) -> Self {
        assert!(domain > 0, "attribute domain must be positive");
        Self {
            name: name.into(),
            domain,
        }
    }
}

/// A columnar dataset: `columns[j][i]` is record `i`'s value of
/// attribute `j`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    attributes: Vec<Attribute>,
    columns: Vec<Vec<u32>>,
}

impl Dataset {
    /// Builds a dataset, validating shape and domains.
    ///
    /// # Panics
    /// Panics on ragged columns, arity mismatch, or out-of-domain values.
    pub fn new(attributes: Vec<Attribute>, columns: Vec<Vec<u32>>) -> Self {
        assert_eq!(attributes.len(), columns.len(), "one column per attribute");
        assert!(!attributes.is_empty(), "dataset needs attributes");
        let n = columns[0].len();
        for (attr, col) in attributes.iter().zip(&columns) {
            assert_eq!(col.len(), n, "ragged column for {}", attr.name);
            if let Some(&bad) = col.iter().find(|&&v| v as usize >= attr.domain) {
                panic!(
                    "value {bad} outside domain {} of attribute {}",
                    attr.domain, attr.name
                );
            }
        }
        Self {
            attributes,
            columns,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.columns[0].len()
    }

    /// True when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute metadata.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Per-attribute domain sizes.
    pub fn domains(&self) -> Vec<usize> {
        self.attributes.iter().map(|a| a.domain).collect()
    }

    /// The data, column-major.
    pub fn columns(&self) -> &[Vec<u32>] {
        &self.columns
    }

    /// Consumes the dataset into its columns.
    pub fn into_columns(self) -> Vec<Vec<u32>> {
        self.columns
    }

    /// A sub-dataset with only the first `n` records (or all, if fewer).
    pub fn truncated(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            attributes: self.attributes.clone(),
            columns: self.columns.iter().map(|c| c[..n].to_vec()).collect(),
        }
    }

    /// The product of attribute domains — the histogram cell count the
    /// paper calls the "domain space".
    pub fn domain_space(&self) -> f64 {
        self.attributes.iter().map(|a| a.domain as f64).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![Attribute::new("a", 4), Attribute::new("b", 10)],
            vec![vec![0, 1, 2, 3], vec![9, 8, 7, 6]],
        )
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dims(), 2);
        assert_eq!(d.domains(), vec![4, 10]);
        assert_eq!(d.domain_space(), 40.0);
        assert!(!d.is_empty());
    }

    #[test]
    fn truncation() {
        let d = toy().truncated(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.columns()[1], vec![9, 8]);
        // Truncating beyond the length is a no-op.
        assert_eq!(toy().truncated(100).len(), 4);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_out_of_domain() {
        let _ = Dataset::new(vec![Attribute::new("a", 2)], vec![vec![0, 5]]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged() {
        let _ = Dataset::new(
            vec![Attribute::new("a", 4), Attribute::new("b", 4)],
            vec![vec![0, 1], vec![0]],
        );
    }
}
