//! Synthetic datasets with Gaussian dependence — the data of §5.4.
//!
//! The paper's synthetic experiments all use the same construction: an
//! `m`-dimensional Gaussian-dependence structure with configurable
//! margins (Gaussian by default, uniform and Zipf for Fig 9) over a
//! configurable per-attribute domain (default 1000) and cardinality
//! (default 50 000).

use crate::dataset::{Attribute, Dataset};
use crate::margin::TableMargin;
use mathkit::correlation::ar1_correlation;
use mathkit::dist::MultivariateNormal;
use mathkit::Matrix;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// Marginal family for synthetic data (Fig 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MarginKind {
    /// Discretised Gaussian centred on the domain.
    Gaussian,
    /// Uniform over the domain.
    Uniform,
    /// Zipf with the given skew exponent.
    Zipf(f64),
}

impl MarginKind {
    fn build(self, domain: usize) -> TableMargin {
        match self {
            MarginKind::Gaussian => TableMargin::gaussian(domain),
            MarginKind::Uniform => TableMargin::uniform(domain),
            MarginKind::Zipf(s) => TableMargin::zipf(domain, s),
        }
    }
}

/// Specification of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of records (Table 3 default: 50 000).
    pub records: usize,
    /// Number of attributes (Table 3 default: 8).
    pub dims: usize,
    /// Per-attribute domain size (Table 3 default: 1000).
    pub domain: usize,
    /// Marginal family.
    pub margin: MarginKind,
    /// Dependence: AR(1) correlation `P_ij = rho^|i-j|`, positive definite
    /// for any `|rho| < 1`.
    pub rho: f64,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        Self {
            records: 50_000,
            dims: 8,
            domain: 1000,
            margin: MarginKind::Gaussian,
            rho: 0.6,
            seed: 0x5eed,
        }
    }
}

impl SyntheticSpec {
    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics when `dims == 0`, `domain == 0` or `|rho| >= 1`.
    pub fn generate(&self) -> Dataset {
        assert!(self.dims > 0, "need at least one dimension");
        assert!(self.domain > 0, "need a positive domain");
        assert!(
            self.rho.abs() < 1.0,
            "AR(1) correlation must satisfy |rho| < 1"
        );
        let p = self.correlation();
        let mvn = MultivariateNormal::new(&p).expect("AR(1) matrix is positive definite");
        let margin = self.margin.build(self.domain);
        let mut rng = StdRng::seed_from_u64(self.seed);

        let z_cols = mvn.sample_columns(&mut rng, self.records);
        let columns: Vec<Vec<u32>> = z_cols
            .into_iter()
            .map(|zc| {
                zc.into_iter()
                    .map(|z| margin.from_normal_score(z))
                    .collect()
            })
            .collect();
        let attributes = (0..self.dims)
            .map(|j| Attribute::new(format!("x{j}"), self.domain))
            .collect();
        Dataset::new(attributes, columns)
    }

    /// The dependence matrix this spec uses.
    pub fn correlation(&self) -> Matrix {
        ar1_correlation(self.dims, self.rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::stats::pearson;

    #[test]
    fn default_spec_matches_table_3() {
        let s = SyntheticSpec::default();
        assert_eq!(s.records, 50_000);
        assert_eq!(s.dims, 8);
        assert_eq!(s.domain, 1000);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec {
            records: 100,
            dims: 2,
            ..Default::default()
        };
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn respects_domain_and_shape() {
        let spec = SyntheticSpec {
            records: 5_000,
            dims: 3,
            domain: 77,
            ..Default::default()
        };
        let d = spec.generate();
        assert_eq!(d.len(), 5_000);
        assert_eq!(d.dims(), 3);
        assert!(d.columns().iter().flatten().all(|&v| v < 77));
    }

    #[test]
    fn adjacent_attributes_are_correlated() {
        let spec = SyntheticSpec {
            records: 20_000,
            dims: 3,
            rho: 0.7,
            ..Default::default()
        };
        let d = spec.generate();
        let as_f = |c: &[u32]| c.iter().map(|&v| f64::from(v)).collect::<Vec<_>>();
        let r01 = pearson(&as_f(&d.columns()[0]), &as_f(&d.columns()[1]));
        let r02 = pearson(&as_f(&d.columns()[0]), &as_f(&d.columns()[2]));
        assert!(r01 > 0.55, "r01 {r01}");
        // AR(1): the 0-2 correlation is rho^2 < rho.
        assert!(r02 < r01, "r02 {r02} should trail r01 {r01}");
    }

    #[test]
    fn zipf_margin_is_skewed_uniform_is_flat() {
        let base = SyntheticSpec {
            records: 20_000,
            dims: 2,
            domain: 100,
            ..Default::default()
        };
        let zipf = SyntheticSpec {
            margin: MarginKind::Zipf(1.2),
            ..base.clone()
        }
        .generate();
        let unif = SyntheticSpec {
            margin: MarginKind::Uniform,
            ..base
        }
        .generate();
        let head = |d: &Dataset| {
            d.columns()[0].iter().filter(|&&v| v == 0).count() as f64 / d.len() as f64
        };
        assert!(head(&zipf) > 0.2, "zipf head {}", head(&zipf));
        assert!(head(&unif) < 0.03, "uniform head {}", head(&unif));
    }
}
