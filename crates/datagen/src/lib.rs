//! # datagen — dataset substrate for the DPCopula evaluation
//!
//! * [`dataset`] — a columnar table type with attribute metadata;
//! * [`margin`] — finite discrete margins defined by probability tables,
//!   the building block of every generator here;
//! * [`synthetic`] — the synthetic data of §5.4: Gaussian *dependence*
//!   combined with Gaussian / uniform / Zipf *margins* over configurable
//!   domains and dimensionalities;
//! * [`census`] — simulated stand-ins for the paper's IPUMS US and Brazil
//!   census extracts, matching Table 2's attribute domains and realistic
//!   marginal shapes (see DESIGN.md §2 for the substitution rationale);
//! * [`io`] — CSV import/export;
//! * [`rowsource`] — streaming block-at-a-time ingestion ([`RowSource`])
//!   with eager-dataset and out-of-core CSV adapters.

#![warn(missing_docs)]

pub mod census;
pub mod dataset;
pub mod io;
pub mod margin;
pub mod rowsource;
pub mod stream;
pub mod synthetic;

pub use dataset::{Attribute, Dataset};
pub use rowsource::{Block, CsvFileSource, DatasetSource, RowSource, SourceError};
