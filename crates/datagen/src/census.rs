//! Simulated census datasets — stand-ins for the paper's IPUMS extracts.
//!
//! The real evaluation used a 100 000-record US census extract and a
//! 188 846-record Brazil census extract (Table 2). IPUMS data cannot be
//! redistributed, so these generators produce synthetic records whose
//! *attribute domains match Table 2 exactly* and whose marginal shapes and
//! cross-attribute dependence are chosen to be demographically plausible
//! (age/income/education correlations, heavy-tailed income, Zipf-ish
//! occupation codes, binary gender/disability/nativity). DPCopula's
//! behaviour depends only on these structural properties, so method
//! ordering and trends are preserved (DESIGN.md §2).

use crate::dataset::{Attribute, Dataset};
use crate::margin::TableMargin;
use mathkit::correlation::{correlation_from_upper_triangle, repair_positive_definite};
use mathkit::dist::MultivariateNormal;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;

/// Number of records in the paper's Brazil census extract.
pub const BRAZIL_CENSUS_RECORDS: usize = 188_846;

/// Number of records in the paper's US census sample.
pub const US_CENSUS_RECORDS: usize = 100_000;

/// Age margin: plausible population pyramid (piecewise linear density
/// peaking in the 20s-40s, thinning towards `domain`).
fn age_margin(domain: usize) -> TableMargin {
    let weights: Vec<f64> = (0..domain)
        .map(|a| {
            let a = a as f64;
            if a < 20.0 {
                0.9 + a * 0.01
            } else if a < 45.0 {
                1.2
            } else if a < 65.0 {
                1.0 - (a - 45.0) * 0.015
            } else {
                (0.7 - (a - 65.0) * 0.02).max(0.02)
            }
        })
        .collect();
    TableMargin::from_weights(&weights)
}

/// Weekly working-hours margin: mass at 0 (not working), a dominant spike
/// around 40, and a thin overtime tail.
fn hours_margin(domain: usize) -> TableMargin {
    let weights: Vec<f64> = (0..domain)
        .map(|h| {
            let h = h as f64;
            let spike = (-0.5 * ((h - 40.0) / 4.0).powi(2)).exp() * 8.0;
            let part_time = (-0.5 * ((h - 20.0) / 8.0).powi(2)).exp() * 1.5;
            let zero = if h < 1.0 { 6.0 } else { 0.0 };
            0.05 + spike + part_time + zero
        })
        .collect();
    TableMargin::from_weights(&weights)
}

/// Education margin over `domain` ordered codes: most mass in the middle
/// codes (completed school), thinning at both extremes.
fn education_margin(domain: usize) -> TableMargin {
    let mid = domain as f64 * 0.45;
    let sd = domain as f64 * 0.22;
    let weights: Vec<f64> = (0..domain)
        .map(|e| {
            let z = (e as f64 - mid) / sd;
            0.02 + (-0.5 * z * z).exp()
        })
        .collect();
    TableMargin::from_weights(&weights)
}

/// Years residing at the current location: geometric-ish decay.
fn residence_margin(domain: usize) -> TableMargin {
    let weights: Vec<f64> = (0..domain).map(|y| 0.92_f64.powi(y as i32)).collect();
    TableMargin::from_weights(&weights)
}

/// The simulated US census: 4 attributes with Table 2(a) domains —
/// age 96, income 1020, occupation 511, gender 2.
pub fn us_census(records: usize, seed: u64) -> Dataset {
    let attributes = vec![
        Attribute::new("age", 96),
        Attribute::new("income", 1020),
        Attribute::new("occupation", 511),
        Attribute::new("gender", 2),
    ];
    let margins = vec![
        age_margin(96),
        TableMargin::lognormal(1020, 5.2, 0.9),
        TableMargin::zipf(511, 0.8),
        TableMargin::bernoulli(0.49),
    ];
    // Gaussian-dependence correlations (age, income, occupation, gender):
    // age-income 0.35, age-occupation 0.10, age-gender 0.02,
    // income-occupation -0.30 (low codes = common jobs, lower pay),
    // income-gender -0.10, occupation-gender 0.05.
    let p = correlation_from_upper_triangle(4, &[0.35, 0.10, 0.02, -0.30, -0.10, 0.05]);
    generate(
        attributes,
        margins,
        repair_positive_definite(&p),
        records,
        seed,
    )
}

/// The simulated Brazil census: 8 attributes with Table 2(b) domains —
/// age 95, gender 2, disability 2, nativity 2, years-residing 31,
/// education 140, weekly hours 95, annual income 586.
pub fn brazil_census(records: usize, seed: u64) -> Dataset {
    let attributes = vec![
        Attribute::new("age", 95),
        Attribute::new("gender", 2),
        Attribute::new("disability", 2),
        Attribute::new("nativity", 2),
        Attribute::new("years_residing", 31),
        Attribute::new("education", 140),
        Attribute::new("working_hours", 95),
        Attribute::new("annual_income", 586),
    ];
    let margins = vec![
        age_margin(95),
        TableMargin::bernoulli(0.51),
        TableMargin::bernoulli(0.08),
        TableMargin::bernoulli(0.05),
        residence_margin(31),
        education_margin(140),
        hours_margin(95),
        TableMargin::lognormal(586, 4.6, 1.0),
    ];
    // Upper triangle in pair order (0,1),(0,2),...,(6,7); attributes:
    // 0 age, 1 gender, 2 disability, 3 nativity, 4 residence,
    // 5 education, 6 hours, 7 income.
    let p = correlation_from_upper_triangle(
        8,
        &[
            0.02, 0.25, 0.05, 0.45, -0.15, -0.10, 0.30, // age vs rest
            0.00, 0.00, 0.00, -0.05, -0.15, -0.10, // gender vs rest
            0.00, 0.05, -0.10, -0.25, -0.15, // disability vs rest
            0.05, 0.02, 0.00, 0.00, // nativity vs rest
            -0.10, -0.05, 0.05, // residence vs rest
            0.10, 0.50, // education vs hours, income
            0.35, // hours vs income
        ],
    );
    generate(
        attributes,
        margins,
        repair_positive_definite(&p),
        records,
        seed,
    )
}

fn generate(
    attributes: Vec<Attribute>,
    margins: Vec<TableMargin>,
    p: mathkit::Matrix,
    records: usize,
    seed: u64,
) -> Dataset {
    let mvn = MultivariateNormal::new(&p).expect("repaired matrix is positive definite");
    let mut rng = StdRng::seed_from_u64(seed);
    let z_cols = mvn.sample_columns(&mut rng, records);
    let columns: Vec<Vec<u32>> = z_cols
        .into_iter()
        .zip(&margins)
        .map(|(zc, margin)| {
            zc.into_iter()
                .map(|z| margin.from_normal_score(z))
                .collect()
        })
        .collect();
    Dataset::new(attributes, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::stats::pearson;

    fn as_f(c: &[u32]) -> Vec<f64> {
        c.iter().map(|&v| f64::from(v)).collect()
    }

    #[test]
    fn us_census_matches_table_2a() {
        let d = us_census(5_000, 1);
        assert_eq!(d.len(), 5_000);
        let doms = d.domains();
        assert_eq!(doms, vec![96, 1020, 511, 2]);
        for (col, &dom) in d.columns().iter().zip(&doms) {
            assert!(col.iter().all(|&v| (v as usize) < dom));
        }
    }

    #[test]
    fn brazil_census_matches_table_2b() {
        let d = brazil_census(5_000, 2);
        assert_eq!(d.domains(), vec![95, 2, 2, 2, 31, 140, 95, 586]);
        assert_eq!(d.attributes()[7].name, "annual_income");
    }

    #[test]
    fn us_age_income_positively_correlated() {
        let d = us_census(30_000, 3);
        let r = pearson(&as_f(&d.columns()[0]), &as_f(&d.columns()[1]));
        assert!(r > 0.15, "age-income correlation {r}");
    }

    #[test]
    fn brazil_education_income_positively_correlated() {
        let d = brazil_census(30_000, 4);
        let r = pearson(&as_f(&d.columns()[5]), &as_f(&d.columns()[7]));
        assert!(r > 0.25, "education-income correlation {r}");
    }

    #[test]
    fn binary_attributes_have_expected_rates() {
        let d = brazil_census(50_000, 5);
        let rate =
            |j: usize| d.columns()[j].iter().filter(|&&v| v == 1).count() as f64 / d.len() as f64;
        assert!((rate(1) - 0.51).abs() < 0.02, "gender rate {}", rate(1));
        assert!((rate(2) - 0.08).abs() < 0.01, "disability rate {}", rate(2));
        assert!((rate(3) - 0.05).abs() < 0.01, "nativity rate {}", rate(3));
    }

    #[test]
    fn income_margin_is_heavy_tailed() {
        let d = us_census(30_000, 6);
        let incomes = as_f(&d.columns()[1]);
        let mean = mathkit::stats::mean(&incomes);
        let median = mathkit::stats::quantile(&incomes, 0.5);
        assert!(mean > median, "mean {mean} should exceed median {median}");
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(us_census(500, 7), us_census(500, 7));
        assert_ne!(us_census(500, 7), us_census(500, 8));
    }
}
