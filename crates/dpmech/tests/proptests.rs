//! Property-based tests for the DP mechanism layer: budget arithmetic
//! invariants, Laplace distribution identities, and mechanism scaling
//! laws that must hold for arbitrary parameters.
//!
//! Runs on `testkit::prop`: every failure prints the seed that
//! regenerates the counterexample (`TESTKIT_SEED=<seed> cargo test ...`).

use dpmech::{BudgetAccountant, Epsilon, GeometricMechanism, Laplace, LaplaceMechanism};
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use testkit::prop::vec;
use testkit::{prop_assert, prop_assert_eq, property_tests};

property_tests! {
    fn split_ratio_conserves_budget(total in 1e-6f64..100.0, k in 1e-3f64..1e3) {
        let eps = Epsilon::new(total).unwrap();
        let (e1, e2) = eps.split_ratio(k);
        prop_assert!((e1.value() + e2.value() - total).abs() < 1e-9 * total);
        prop_assert!((e1.value() / e2.value() - k).abs() / k < 1e-6);
        prop_assert!(e1.value() > 0.0 && e2.value() > 0.0);
    }

    fn divide_partitions_exactly(total in 1e-6f64..10.0, parts in 1usize..1000) {
        let eps = Epsilon::new(total).unwrap();
        let each = eps.divide(parts);
        prop_assert!((each.value() * parts as f64 - total).abs() < 1e-9 * total);
    }

    fn accountant_never_overspends(
        total in 0.1f64..10.0,
        spends in vec(0.001f64..1.0, 1..50),
    ) {
        let mut acc = BudgetAccountant::new(Epsilon::new(total).unwrap());
        for &s in &spends {
            let before = acc.spent();
            match acc.spend(Epsilon::new(s).unwrap()) {
                Ok(()) => prop_assert!(acc.spent() <= acc.total() * (1.0 + 1e-9) + 1e-12),
                Err(_) => prop_assert!(acc.spent() == before), // rejected spends change nothing
            }
        }
        prop_assert!(acc.remaining() >= 0.0);
        prop_assert!((acc.spent() + acc.remaining() - total).abs() < 1e-9);
    }

    fn laplace_quantile_inverts_cdf(mu in -100.0f64..100.0, b in 1e-3f64..100.0, p in 0.001f64..0.999) {
        let l = Laplace::new(mu, b).unwrap();
        prop_assert!((l.cdf(l.quantile(p)) - p).abs() < 1e-9);
    }

    fn laplace_pdf_is_symmetric_and_positive(mu in -10.0f64..10.0, b in 0.01f64..10.0, dx in 0.0f64..20.0) {
        let l = Laplace::new(mu, b).unwrap();
        prop_assert!(l.pdf(mu + dx) > 0.0);
        prop_assert!((l.pdf(mu + dx) - l.pdf(mu - dx)).abs() < 1e-12);
    }

    fn mechanism_scale_is_sensitivity_over_epsilon(eps in 1e-3f64..100.0, sens in 1e-3f64..100.0) {
        let m = LaplaceMechanism::new(Epsilon::new(eps).unwrap(), sens);
        prop_assert!((m.noise_scale() - sens / eps).abs() < 1e-12);
    }

    fn geometric_release_is_integer_valued(eps in 0.01f64..10.0, count in -1000i64..1000, seed in 0u64..100) {
        let g = GeometricMechanism::new(Epsilon::new(eps).unwrap(), 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = g.release(count, &mut rng);
        // i64 output by construction; alpha in (0,1).
        prop_assert!(g.alpha() > 0.0 && g.alpha() < 1.0);
        let _ = out;
    }

    fn laplace_mechanism_release_vec_preserves_length(
        values in vec(-1e6f64..1e6, 0..64),
        seed in 0u64..50,
    ) {
        let m = LaplaceMechanism::new(Epsilon::new(1.0).unwrap(), 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = m.release_vec(&values, &mut rng);
        prop_assert_eq!(out.len(), values.len());
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }
}
