//! The Laplace distribution and the Laplace mechanism.
//!
//! To release a function `f` with L1 sensitivity `Delta` under
//! `epsilon`-DP, publish `f(D) + X` with `X ~ Lap(Delta / epsilon)`
//! (Definition 3.2 of the paper). This module provides both the raw
//! distribution and a convenience mechanism wrapper.

use crate::budget::Epsilon;
use rngkit::Rng;

/// Laplace distribution with location `mu` and scale `b` (variance
/// `2 b^2`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    mu: f64,
    b: f64,
}

impl Laplace {
    /// Creates `Lap(mu, b)`. Returns `None` unless `b > 0` and both
    /// parameters are finite.
    pub fn new(mu: f64, b: f64) -> Option<Self> {
        (b > 0.0 && b.is_finite() && mu.is_finite()).then_some(Self { mu, b })
    }

    /// Location parameter.
    pub fn location(&self) -> f64 {
        self.mu
    }

    /// Scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.b
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-((x - self.mu).abs()) / self.b).exp() / (2.0 * self.b)
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.b;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    /// Quantile (inverse CDF) at `p in (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        if p < 0.5 {
            self.mu + self.b * (2.0 * p).ln()
        } else {
            self.mu - self.b * (2.0 - 2.0 * p).max(f64::MIN_POSITIVE).ln()
        }
    }

    /// Draws one sample by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::draws::note_laplace();
        // u in (-0.5, 0.5]; avoid u = -0.5 exactly.
        let u: f64 = rng.gen::<f64>() - 0.5;
        let u = if u == -0.5 { -0.5 + f64::EPSILON } else { u };
        self.mu - self.b * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }
}

/// Draws zero-mean Laplace noise with the given scale.
///
/// # Panics
/// Panics when `scale <= 0` or is non-finite.
pub fn laplace_noise<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    Laplace::new(0.0, scale)
        .expect("laplace_noise requires a positive finite scale")
        .sample(rng)
}

/// The Laplace mechanism for a numeric function with known L1 sensitivity.
#[derive(Debug, Clone, Copy)]
pub struct LaplaceMechanism {
    epsilon: Epsilon,
    sensitivity: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism spending `epsilon` on a function with L1
    /// sensitivity `sensitivity`.
    ///
    /// # Panics
    /// Panics when the sensitivity is non-positive or non-finite.
    pub fn new(epsilon: Epsilon, sensitivity: f64) -> Self {
        assert!(
            sensitivity > 0.0 && sensitivity.is_finite(),
            "sensitivity must be positive and finite, got {sensitivity}"
        );
        Self {
            epsilon,
            sensitivity,
        }
    }

    /// The noise scale `b = Delta / epsilon`.
    pub fn noise_scale(&self) -> f64 {
        self.sensitivity / self.epsilon.value()
    }

    /// The budget this mechanism spends per invocation.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Releases a single scalar.
    pub fn release<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        value + laplace_noise(rng, self.noise_scale())
    }

    /// Releases a vector whose **joint** L1 sensitivity is
    /// `self.sensitivity` (e.g. a histogram, where one record moves one
    /// count by 1, so the whole vector has sensitivity 1 under
    /// add/remove-one neighbouring).
    pub fn release_vec<R: Rng + ?Sized>(&self, values: &[f64], rng: &mut R) -> Vec<f64> {
        let b = self.noise_scale();
        values.iter().map(|&v| v + laplace_noise(rng, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn laplace_validation() {
        assert!(Laplace::new(0.0, 0.0).is_none());
        assert!(Laplace::new(0.0, -1.0).is_none());
        assert!(Laplace::new(f64::NAN, 1.0).is_none());
        assert!(Laplace::new(1.0, 2.0).is_some());
    }

    #[test]
    fn pdf_cdf_quantile_consistency() {
        let l = Laplace::new(1.0, 2.0).unwrap();
        assert!((l.cdf(1.0) - 0.5).abs() < 1e-15);
        for &p in &[0.01, 0.3, 0.5, 0.7, 0.99] {
            assert!((l.cdf(l.quantile(p)) - p).abs() < 1e-12);
        }
        // Symmetry of the pdf around mu.
        assert!((l.pdf(1.0 + 0.7) - l.pdf(1.0 - 0.7)).abs() < 1e-15);
    }

    #[test]
    fn sample_moments() {
        let l = Laplace::new(0.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| l.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        // Var = 2 b^2 = 4.5.
        assert!((var - 4.5).abs() < 0.15, "var {var}");
    }

    #[test]
    fn mechanism_scale_follows_budget() {
        let m = LaplaceMechanism::new(Epsilon::new(0.5).unwrap(), 2.0);
        assert!((m.noise_scale() - 4.0).abs() < 1e-12);
        // Smaller epsilon => larger noise.
        let tighter = LaplaceMechanism::new(Epsilon::new(0.1).unwrap(), 2.0);
        assert!(tighter.noise_scale() > m.noise_scale());
    }

    #[test]
    fn release_vec_perturbs_independently() {
        let m = LaplaceMechanism::new(Epsilon::new(1.0).unwrap(), 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let out = m.release_vec(&[10.0, 20.0, 30.0], &mut rng);
        assert_eq!(out.len(), 3);
        // With scale 1 noise, outputs should be near but not equal.
        assert!(out
            .iter()
            .zip([10.0, 20.0, 30.0])
            .all(|(o, v)| (o - v).abs() < 30.0));
        assert!(out
            .iter()
            .zip([10.0, 20.0, 30.0])
            .any(|(o, v)| (o - v).abs() > 1e-9));
    }

    #[test]
    #[should_panic(expected = "sensitivity")]
    fn rejects_bad_sensitivity() {
        let _ = LaplaceMechanism::new(Epsilon::new(1.0).unwrap(), 0.0);
    }

    #[test]
    fn noise_scale_distribution_sanity() {
        // Empirical check that released values concentrate at the right
        // scale: the mean absolute deviation of Lap(b) is b.
        let m = LaplaceMechanism::new(Epsilon::new(2.0).unwrap(), 1.0);
        let mut rng = StdRng::seed_from_u64(77);
        let n = 50_000;
        let mad: f64 = (0..n)
            .map(|_| (m.release(0.0, &mut rng)).abs())
            .sum::<f64>()
            / f64::from(n);
        assert!((mad - 0.5).abs() < 0.02, "mad {mad}");
    }
}
