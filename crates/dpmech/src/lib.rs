//! # dpmech — differential-privacy primitives
//!
//! The mechanisms and accounting that every DP algorithm in this workspace
//! builds on:
//!
//! * [`budget`] — a validated privacy-budget type ([`Epsilon`]) and an
//!   accountant enforcing sequential composition (Theorem 3.1 of the
//!   DPCopula paper);
//! * [`laplace`] — the Laplace distribution and the Laplace mechanism
//!   (Dwork et al., the workhorse of Definition 3.2 / the noisy counts in
//!   Algorithms 2, 5 and 6);
//! * [`exponential`] — the exponential mechanism (McSherry–Talwar), needed
//!   by the EFPA coefficient selection and the private splits of PSD and
//!   P-HP;
//! * [`geometric`] — the two-sided geometric ("discrete Laplace")
//!   mechanism, an integer-valued alternative for count queries;
//! * [`draws`] — per-thread tallies of primitive noise draws, harvested
//!   by the observability layer into `noise_draws_total{stage,mech}`.
//!
//! All mechanisms are generic over `rngkit::Rng` so experiments can be made
//! deterministic with a seeded generator.

#![warn(missing_docs)]

pub mod budget;
pub mod draws;
pub mod exponential;
pub mod geometric;
pub mod laplace;

pub use budget::{nano_eps, BudgetAccountant, BudgetError, Epsilon, ShardLedger};
pub use draws::DrawCounts;
pub use exponential::exponential_mechanism;
pub use geometric::GeometricMechanism;
pub use laplace::{laplace_noise, Laplace, LaplaceMechanism};
