//! The two-sided geometric mechanism ("discrete Laplace").
//!
//! For integer-valued count queries it is sometimes preferable to add
//! integer noise: `P(k) = (1 - a)/(1 + a) * a^{|k|}` with
//! `a = exp(-epsilon / Delta)`. The released count is then an integer and
//! needs no rounding. Included for completeness next to the Laplace
//! mechanism; the DPCopula hybrid partition counts (Algorithm 6) can use
//! either.

use crate::budget::Epsilon;
use rngkit::Rng;

/// Two-sided geometric mechanism for integer counts.
#[derive(Debug, Clone, Copy)]
pub struct GeometricMechanism {
    alpha: f64,
}

impl GeometricMechanism {
    /// Creates the mechanism for an integer query with L1 sensitivity
    /// `sensitivity` (usually 1 for counts).
    ///
    /// # Panics
    /// Panics if the sensitivity is non-positive or non-finite.
    pub fn new(epsilon: Epsilon, sensitivity: f64) -> Self {
        assert!(
            sensitivity > 0.0 && sensitivity.is_finite(),
            "sensitivity must be positive and finite"
        );
        Self {
            alpha: (-epsilon.value() / sensitivity).exp(),
        }
    }

    /// The decay parameter `a = exp(-epsilon/Delta)`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one two-sided geometric noise value.
    pub fn noise<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        crate::draws::note_geometric();
        // Difference of two one-sided geometrics is two-sided geometric.
        let g1 = one_sided_geometric(rng, self.alpha);
        let g2 = one_sided_geometric(rng, self.alpha);
        g1 - g2
    }

    /// Releases a noisy count.
    pub fn release<R: Rng + ?Sized>(&self, count: i64, rng: &mut R) -> i64 {
        count + self.noise(rng)
    }
}

/// Samples `G ~ Geom(1 - a)` supported on `{0, 1, 2, ...}` by inversion.
fn one_sided_geometric<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> i64 {
    if alpha <= 0.0 {
        return 0;
    }
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / alpha.ln()).floor() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn noise_is_symmetric_and_centered() {
        let m = GeometricMechanism::new(Epsilon::new(1.0).unwrap(), 1.0);
        let mut rng = StdRng::seed_from_u64(21);
        let n = 100_000;
        let sum: i64 = (0..n).map(|_| m.noise(&mut rng)).sum();
        let mean = sum as f64 / f64::from(n);
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn variance_matches_theory() {
        // Var = 2a / (1-a)^2.
        let eps = Epsilon::new(0.5).unwrap();
        let m = GeometricMechanism::new(eps, 1.0);
        let a = m.alpha();
        let theory = 2.0 * a / (1.0 - a).powi(2);
        let mut rng = StdRng::seed_from_u64(22);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| m.noise(&mut rng) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(
            (var - theory).abs() / theory < 0.05,
            "var {var} vs theory {theory}"
        );
    }

    #[test]
    fn release_shifts_count() {
        let m = GeometricMechanism::new(Epsilon::new(10.0).unwrap(), 1.0);
        let mut rng = StdRng::seed_from_u64(23);
        // Huge epsilon => almost no noise.
        for _ in 0..100 {
            let r = m.release(42, &mut rng);
            assert!((r - 42).abs() <= 3);
        }
    }

    #[test]
    fn tighter_budget_means_wider_noise() {
        let loose = GeometricMechanism::new(Epsilon::new(2.0).unwrap(), 1.0);
        let tight = GeometricMechanism::new(Epsilon::new(0.1).unwrap(), 1.0);
        assert!(tight.alpha() > loose.alpha());
    }
}
