//! The exponential mechanism (McSherry & Talwar, FOCS 2007).
//!
//! Selects an index `i` with probability proportional to
//! `exp(epsilon * u_i / (2 * Delta_u))` where `u_i` is a utility score
//! with sensitivity `Delta_u`. Used here by EFPA (choosing how many Fourier
//! coefficients to keep), PSD (private medians) and P-HP (private bisection
//! points).

use crate::budget::Epsilon;
use rngkit::Rng;

/// Samples an index from `scores` under the exponential mechanism.
///
/// Higher scores are preferred. Uses the log-sum-exp trick so widely spread
/// scores cannot overflow.
///
/// # Panics
/// Panics when `scores` is empty, contains non-finite values, or
/// `utility_sensitivity <= 0`.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    rng: &mut R,
    scores: &[f64],
    epsilon: Epsilon,
    utility_sensitivity: f64,
) -> usize {
    assert!(
        !scores.is_empty(),
        "exponential mechanism over empty choices"
    );
    assert!(
        utility_sensitivity > 0.0 && utility_sensitivity.is_finite(),
        "utility sensitivity must be positive and finite"
    );
    assert!(
        scores.iter().all(|s| s.is_finite()),
        "scores must be finite"
    );
    crate::draws::note_exponential();
    let factor = epsilon.value() / (2.0 * utility_sensitivity);
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    // Unnormalised weights, stabilised by the max score.
    let weights: Vec<f64> = scores.iter().map(|&s| ((s - max) * factor).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn prefers_high_scores() {
        let mut rng = StdRng::seed_from_u64(1);
        let scores = [0.0, 0.0, 10.0];
        let eps = Epsilon::new(2.0).unwrap();
        let n = 5_000;
        let picks_best = (0..n)
            .filter(|_| exponential_mechanism(&mut rng, &scores, eps, 1.0) == 2)
            .count();
        // exp(10) dominance: virtually always picks the best.
        assert!(picks_best as f64 / f64::from(n) > 0.98);
    }

    #[test]
    fn uniform_when_scores_equal() {
        let mut rng = StdRng::seed_from_u64(2);
        let scores = [1.0, 1.0, 1.0, 1.0];
        let eps = Epsilon::new(1.0).unwrap();
        let mut counts = [0usize; 4];
        let n = 20_000;
        for _ in 0..n {
            counts[exponential_mechanism(&mut rng, &scores, eps, 1.0)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / f64::from(n);
            assert!((f - 0.25).abs() < 0.02, "frequency {f}");
        }
    }

    #[test]
    fn small_epsilon_flattens_choice() {
        let mut rng = StdRng::seed_from_u64(3);
        let scores = [0.0, 1.0];
        let tight = Epsilon::new(1e-6).unwrap();
        let n = 20_000;
        let best = (0..n)
            .filter(|_| exponential_mechanism(&mut rng, &scores, tight, 1.0) == 1)
            .count();
        let f = best as f64 / f64::from(n);
        assert!((f - 0.5).abs() < 0.02, "frequency {f}");
    }

    #[test]
    fn extreme_scores_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(4);
        let scores = [1e8, -1e8, 0.0];
        let eps = Epsilon::new(1.0).unwrap();
        let i = exponential_mechanism(&mut rng, &scores, eps, 1.0);
        assert_eq!(i, 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_scores_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = exponential_mechanism(&mut rng, &[], Epsilon::new(1.0).unwrap(), 1.0);
    }
}
