//! Privacy-budget types and sequential-composition accounting.
//!
//! The DPCopula algorithms split one total budget `epsilon` into a margin
//! share `epsilon_1` and a correlation share `epsilon_2 = epsilon -
//! epsilon_1`, controlled by the ratio `k = epsilon_1 / epsilon_2`
//! (Table 3 defaults to `k = 8`). [`Epsilon`] keeps budgets validated and
//! [`BudgetAccountant`] enforces that a sequence of mechanisms never spends
//! more than the total (Theorem 3.1, sequential composition).

/// A validated, strictly positive, finite privacy budget.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Creates a budget; fails unless `value` is finite and `> 0`.
    pub fn new(value: f64) -> Result<Self, BudgetError> {
        if value.is_finite() && value > 0.0 {
            Ok(Self(value))
        } else {
            Err(BudgetError::InvalidEpsilon(value))
        }
    }

    /// The raw `f64` value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Splits this budget into `(self * k/(k+1), self * 1/(k+1))` — the
    /// paper's `(epsilon_1, epsilon_2)` given the ratio `k = eps1/eps2`.
    ///
    /// # Panics
    /// Panics if `k` is not finite and positive.
    pub fn split_ratio(self, k: f64) -> (Epsilon, Epsilon) {
        assert!(
            k.is_finite() && k > 0.0,
            "ratio k must be positive, got {k}"
        );
        let e2 = self.0 / (k + 1.0);
        let e1 = self.0 - e2;
        (Epsilon(e1), Epsilon(e2))
    }

    /// Divides the budget evenly over `parts` sub-mechanisms
    /// (e.g. `epsilon_1 / m` per margin).
    ///
    /// # Panics
    /// Panics if `parts == 0`.
    pub fn divide(self, parts: usize) -> Epsilon {
        assert!(parts > 0, "cannot divide a budget into zero parts");
        Epsilon(self.0 / parts as f64)
    }

    /// Scales the budget by a factor in `(0, 1]`.
    ///
    /// # Panics
    /// Panics for factors outside `(0, 1]`.
    pub fn fraction(self, f: f64) -> Epsilon {
        assert!(f > 0.0 && f <= 1.0, "fraction must be in (0,1], got {f}");
        Epsilon(self.0 * f)
    }
}

impl std::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "eps={}", self.0)
    }
}

/// Errors from budget validation or accounting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BudgetError {
    /// The epsilon value was non-finite or non-positive.
    InvalidEpsilon(f64),
    /// A `spend` would exceed the remaining budget.
    Exhausted {
        /// Amount requested.
        requested: f64,
        /// Amount still available.
        remaining: f64,
    },
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::InvalidEpsilon(v) => {
                write!(f, "invalid epsilon {v}: must be finite and > 0")
            }
            BudgetError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested {requested}, remaining {remaining}"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

/// Tracks spending against a total budget under sequential composition.
///
/// Mechanisms running on *disjoint* partitions of the data compose in
/// parallel (Theorem 3.2) and should share a single `spend` — see
/// [`BudgetAccountant::spend_parallel`].
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    total: f64,
    spent: f64,
}

impl BudgetAccountant {
    /// Creates an accountant over `total`.
    pub fn new(total: Epsilon) -> Self {
        Self {
            total: total.value(),
            spent: 0.0,
        }
    }

    /// Total budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Records a sequential spend of `eps`, failing if it would exceed the
    /// total (with a tiny tolerance for accumulated floating-point error).
    pub fn spend(&mut self, eps: Epsilon) -> Result<(), BudgetError> {
        let e = eps.value();
        if self.spent + e > self.total * (1.0 + 1e-12) + 1e-15 {
            return Err(BudgetError::Exhausted {
                requested: e,
                remaining: self.remaining(),
            });
        }
        self.spent += e;
        Ok(())
    }

    /// Records a parallel-composition spend: `count` mechanisms each using
    /// `eps` on **disjoint** data cost only `eps` in total (Theorem 3.2).
    pub fn spend_parallel(&mut self, eps: Epsilon, count: usize) -> Result<(), BudgetError> {
        let _ = count; // parallel composition: cost independent of count
        self.spend(eps)
    }

    /// [`BudgetAccountant::spend`] that also publishes the debit to the
    /// observability sink: one `budget_spends_total{stage}` event and
    /// the amount in `budget_eps_spent_neps{stage}`, quantised to
    /// integer nano-ε (`round(ε · 1e9)`) so parallel pipelines
    /// accumulate the ledger with order-independent integer adds.
    /// Nothing is published when the spend fails.
    pub fn spend_tracked(
        &mut self,
        eps: Epsilon,
        stage: &str,
        sink: &obskit::MetricsSink,
    ) -> Result<(), BudgetError> {
        self.spend(eps)?;
        if sink.enabled() {
            let labels = [("stage", stage)];
            sink.add_labeled(
                obskit::names::BUDGET_SPENDS_TOTAL,
                &labels,
                obskit::Unit::Count,
                1,
            );
            sink.add_labeled(
                obskit::names::BUDGET_EPS_SPENT_NEPS,
                &labels,
                obskit::Unit::NanoEps,
                nano_eps(eps),
            );
        }
        Ok(())
    }
}

/// Quantises a budget to integer nano-ε for metric accumulation.
pub fn nano_eps(eps: Epsilon) -> u64 {
    (eps.value() * 1e9).round() as u64
}

/// A per-shard budget sub-ledger: labeled debits kept in integer nano-ε
/// so that merging across shards is exact, order-independent integer
/// arithmetic (no float accumulation drift between merge orders).
///
/// Each shard of a sharded fit records what *its* mechanisms spent per
/// stage label; [`ShardLedger::merge_parallel`] then folds the shard
/// ledgers into the combined cost under parallel composition
/// (Theorem 3.2): mechanisms with the same label run on **disjoint**
/// row shards, so the pooled release costs the *maximum* any single
/// shard spent on that label — not the sum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardLedger {
    /// Insertion-ordered `(label, nano-ε)` entries.
    entries: Vec<(String, u64)>,
}

impl ShardLedger {
    /// An empty sub-ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates a debit of `eps` (quantised to nano-ε) under `label`.
    pub fn spend(&mut self, label: &str, eps: Epsilon) {
        self.spend_neps(label, nano_eps(eps));
    }

    /// Accumulates a raw nano-ε debit under `label`.
    pub fn spend_neps(&mut self, label: &str, neps: u64) {
        if let Some(entry) = self.entries.iter_mut().find(|(l, _)| l == label) {
            entry.1 += neps;
        } else {
            self.entries.push((label.to_string(), neps));
        }
    }

    /// Nano-ε spent under `label` (0 for unknown labels).
    pub fn spent_neps(&self, label: &str) -> u64 {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |(_, n)| *n)
    }

    /// Total nano-ε across all labels (sequential composition within the
    /// shard).
    pub fn total_neps(&self) -> u64 {
        self.entries.iter().map(|(_, n)| n).sum()
    }

    /// The `(label, nano-ε)` entries in insertion order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Folds per-shard sub-ledgers into the combined ledger under
    /// parallel composition (Theorem 3.2): for every label, the merged
    /// cost is the **maximum** nano-ε any single shard spent on it,
    /// because same-label mechanisms act on disjoint row shards. Labels
    /// keep their first-appearance order across the shard sequence.
    pub fn merge_parallel(shards: &[ShardLedger]) -> ShardLedger {
        let mut merged = ShardLedger::new();
        for shard in shards {
            for (label, neps) in &shard.entries {
                if let Some(entry) = merged.entries.iter_mut().find(|(l, _)| l == label) {
                    entry.1 = entry.1.max(*neps);
                } else {
                    merged.entries.push((label.clone(), *neps));
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(1.0).is_ok());
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-0.5).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
    }

    #[test]
    fn split_ratio_matches_paper_k() {
        let e = Epsilon::new(1.0).unwrap();
        let (e1, e2) = e.split_ratio(8.0);
        assert!((e1.value() - 8.0 / 9.0).abs() < 1e-12);
        assert!((e2.value() - 1.0 / 9.0).abs() < 1e-12);
        assert!((e1.value() + e2.value() - 1.0).abs() < 1e-12);
        // k = eps1/eps2 recovered.
        assert!((e1.value() / e2.value() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn divide_and_fraction() {
        let e = Epsilon::new(0.9).unwrap();
        assert!((e.divide(3).value() - 0.3).abs() < 1e-12);
        assert!((e.fraction(0.5).value() - 0.45).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn divide_by_zero_panics() {
        let _ = Epsilon::new(1.0).unwrap().divide(0);
    }

    #[test]
    fn accountant_enforces_total() {
        let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
        acc.spend(Epsilon::new(0.6).unwrap()).unwrap();
        assert!((acc.remaining() - 0.4).abs() < 1e-12);
        acc.spend(Epsilon::new(0.4).unwrap()).unwrap();
        assert!(acc.spend(Epsilon::new(0.01).unwrap()).is_err());
    }

    #[test]
    fn accountant_allows_exact_split() {
        // The exact k-split plus per-part divisions must sum to the total
        // without tripping the tolerance.
        let total = Epsilon::new(1.0).unwrap();
        let (e1, e2) = total.split_ratio(8.0);
        let mut acc = BudgetAccountant::new(total);
        let m = 8;
        for _ in 0..m {
            acc.spend(e1.divide(m)).unwrap();
        }
        let pairs = m * (m - 1) / 2;
        for _ in 0..pairs {
            acc.spend(e2.divide(pairs)).unwrap();
        }
        assert!(acc.remaining() < 1e-9);
    }

    #[test]
    fn parallel_spend_counts_once() {
        let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
        acc.spend_parallel(Epsilon::new(0.9).unwrap(), 1000)
            .unwrap();
        assert!((acc.spent() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn spend_tracked_publishes_ledger_series() {
        use std::sync::Arc;
        let registry = Arc::new(obskit::MetricsRegistry::new());
        let sink = obskit::MetricsSink::to_registry(registry.clone());
        let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
        acc.spend_tracked(Epsilon::new(0.25).unwrap(), "margins", &sink)
            .unwrap();
        acc.spend_tracked(Epsilon::new(0.25).unwrap(), "margins", &sink)
            .unwrap();
        acc.spend_tracked(Epsilon::new(0.5).unwrap(), "correlation", &sink)
            .unwrap();
        // A failing spend publishes nothing.
        assert!(acc
            .spend_tracked(Epsilon::new(0.5).unwrap(), "correlation", &sink)
            .is_err());
        let snap = registry.snapshot();
        let get = |id: &str| snap.get(id).and_then(|e| e.value.as_u64());
        assert_eq!(get(r#"budget_spends_total{stage="margins"}"#), Some(2));
        assert_eq!(
            get(r#"budget_eps_spent_neps{stage="margins"}"#),
            Some(500_000_000)
        );
        assert_eq!(get(r#"budget_spends_total{stage="correlation"}"#), Some(1));
        assert_eq!(
            get(r#"budget_eps_spent_neps{stage="correlation"}"#),
            Some(500_000_000)
        );
    }

    #[test]
    fn nano_eps_quantisation() {
        assert_eq!(nano_eps(Epsilon::new(1.0).unwrap()), 1_000_000_000);
        assert_eq!(nano_eps(Epsilon::new(0.1).unwrap()), 100_000_000);
        assert_eq!(nano_eps(Epsilon::new(1e-9).unwrap()), 1);
    }

    #[test]
    fn shard_ledger_accumulates_in_nano_eps() {
        let mut ledger = ShardLedger::new();
        ledger.spend("margins", Epsilon::new(0.25).unwrap());
        ledger.spend("margins", Epsilon::new(0.25).unwrap());
        ledger.spend("correlation", Epsilon::new(0.1).unwrap());
        assert_eq!(ledger.spent_neps("margins"), 500_000_000);
        assert_eq!(ledger.spent_neps("correlation"), 100_000_000);
        assert_eq!(ledger.spent_neps("unknown"), 0);
        assert_eq!(ledger.total_neps(), 600_000_000);
        assert_eq!(ledger.entries().len(), 2);
    }

    #[test]
    fn parallel_merge_takes_per_label_maximum() {
        // Theorem 3.2: same-label mechanisms on disjoint shards cost the
        // max over shards, never the sum.
        let mut a = ShardLedger::new();
        a.spend("margins", Epsilon::new(0.5).unwrap());
        a.spend("correlation", Epsilon::new(0.1).unwrap());
        let mut b = ShardLedger::new();
        b.spend("margins", Epsilon::new(0.5).unwrap());
        b.spend("correlation", Epsilon::new(0.2).unwrap());
        b.spend("extra", Epsilon::new(0.05).unwrap());
        let merged = ShardLedger::merge_parallel(&[a.clone(), b.clone()]);
        assert_eq!(merged.spent_neps("margins"), 500_000_000);
        assert_eq!(merged.spent_neps("correlation"), 200_000_000);
        assert_eq!(merged.spent_neps("extra"), 50_000_000);
        assert_eq!(merged.total_neps(), 750_000_000);
        // Merging is order-independent and idempotent for one shard.
        assert_eq!(merged, ShardLedger::merge_parallel(&[b, a.clone()]));
        assert_eq!(ShardLedger::merge_parallel(&[a.clone()]), a);
        assert_eq!(ShardLedger::merge_parallel(&[]), ShardLedger::new());
    }

    #[test]
    fn shard_ledger_merge_is_exact_integer_arithmetic() {
        // 10 shards each spending an epsilon that does not sum cleanly in
        // f64 still merge to the exact per-label nano-ε maximum.
        let shards: Vec<ShardLedger> = (1..=10u64)
            .map(|i| {
                let mut l = ShardLedger::new();
                l.spend_neps("margins", i * 111_111_111);
                l
            })
            .collect();
        let merged = ShardLedger::merge_parallel(&shards);
        assert_eq!(merged.spent_neps("margins"), 1_111_111_110);
    }
}
