//! Per-thread tallies of primitive noise draws, for the observability
//! layer's `noise_draws_total{stage,mech}` counters.
//!
//! Every mechanism in this crate bumps a thread-local counter on each
//! draw (a `Cell` increment — cheap enough to leave always-on, so the
//! mechanisms stay free of sink plumbing). Instrumented callers
//! bracket a logical unit of work with [`snapshot`] before and after
//! and publish the difference with [`DrawCounts::record_into`].
//!
//! Because the tally is harvested *per logical task* and the published
//! counters are integer sums, the totals are independent of worker
//! count and scheduling — a parallel pipeline reports the same draw
//! counts as a serial one, which is what keeps these series inside the
//! deterministic snapshot.

use obskit::names::NOISE_DRAWS_TOTAL;
use obskit::{MetricsSink, Unit};
use std::cell::Cell;

/// Counts of primitive noise draws, by mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrawCounts {
    /// Laplace samples drawn (via [`crate::Laplace::sample`] or
    /// [`crate::laplace_noise`]).
    pub laplace: u64,
    /// Two-sided geometric noise values drawn.
    pub geometric: u64,
    /// Exponential-mechanism selections made.
    pub exponential: u64,
}

impl DrawCounts {
    /// Draws made since `earlier` (an earlier [`snapshot`] on the same
    /// thread). Saturates rather than wrapping if misused across
    /// threads.
    pub fn since(&self, earlier: &DrawCounts) -> DrawCounts {
        DrawCounts {
            laplace: self.laplace.saturating_sub(earlier.laplace),
            geometric: self.geometric.saturating_sub(earlier.geometric),
            exponential: self.exponential.saturating_sub(earlier.exponential),
        }
    }

    /// Total draws across all mechanisms.
    pub fn total(&self) -> u64 {
        self.laplace + self.geometric + self.exponential
    }

    /// Adds these counts to `noise_draws_total{stage,mech}` in `sink`
    /// (skipping zero mechanisms so untouched series stay at their
    /// taxonomy-registered zero).
    pub fn record_into(&self, sink: &MetricsSink, stage: &str) {
        if !sink.enabled() {
            return;
        }
        for (mech, n) in [
            ("laplace", self.laplace),
            ("geometric", self.geometric),
            ("exponential", self.exponential),
        ] {
            if n > 0 {
                sink.add_labeled(
                    NOISE_DRAWS_TOTAL,
                    &[("stage", stage), ("mech", mech)],
                    Unit::Count,
                    n,
                );
            }
        }
    }
}

thread_local! {
    static TALLY: Cell<DrawCounts> = const { Cell::new(DrawCounts {
        laplace: 0,
        geometric: 0,
        exponential: 0,
    }) };
}

/// The calling thread's cumulative draw counts.
pub fn snapshot() -> DrawCounts {
    TALLY.with(Cell::get)
}

pub(crate) fn note_laplace() {
    TALLY.with(|t| {
        let mut c = t.get();
        c.laplace += 1;
        t.set(c);
    });
}

pub(crate) fn note_geometric() {
    TALLY.with(|t| {
        let mut c = t.get();
        c.geometric += 1;
        t.set(c);
    });
}

pub(crate) fn note_exponential() {
    TALLY.with(|t| {
        let mut c = t.get();
        c.exponential += 1;
        t.set(c);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Epsilon;
    use crate::{exponential_mechanism, laplace_noise, GeometricMechanism, Laplace};
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn draws_are_tallied_per_mechanism() {
        let mut rng = StdRng::seed_from_u64(9);
        let before = snapshot();
        let lap = Laplace::new(0.0, 1.0).unwrap();
        for _ in 0..3 {
            lap.sample(&mut rng);
        }
        laplace_noise(&mut rng, 2.0);
        let geo = GeometricMechanism::new(Epsilon::new(1.0).unwrap(), 1.0);
        for _ in 0..2 {
            geo.noise(&mut rng);
        }
        exponential_mechanism(&mut rng, &[0.0, 1.0], Epsilon::new(1.0).unwrap(), 1.0);
        let d = snapshot().since(&before);
        assert_eq!(d.laplace, 4);
        assert_eq!(d.geometric, 2);
        assert_eq!(d.exponential, 1);
        assert_eq!(d.total(), 7);
    }

    #[test]
    fn record_into_publishes_nonzero_mechs_only() {
        use std::sync::Arc;
        let registry = Arc::new(obskit::MetricsRegistry::new());
        let sink = MetricsSink::to_registry(registry.clone());
        DrawCounts {
            laplace: 5,
            geometric: 0,
            exponential: 2,
        }
        .record_into(&sink, "margins");
        let snap = registry.snapshot();
        assert_eq!(
            snap.get(r#"noise_draws_total{stage="margins",mech="laplace"}"#)
                .and_then(|e| e.value.as_u64()),
            Some(5)
        );
        assert!(snap
            .get(r#"noise_draws_total{stage="margins",mech="geometric"}"#)
            .is_none());
        assert_eq!(
            snap.get(r#"noise_draws_total{stage="margins",mech="exponential"}"#)
                .and_then(|e| e.value.as_u64()),
            Some(2)
        );
    }
}
