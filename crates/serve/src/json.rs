//! A minimal JSON value codec for the wire protocol — the workspace
//! takes no dependencies, so request bodies are parsed by this
//! recursive-descent reader and responses are rendered by hand with
//! [`escape_into`]. Coverage is deliberately the JSON the protocol
//! actually speaks: objects, arrays, strings (with the standard escapes
//! and `\uXXXX`), finite numbers, booleans and null. Parse depth is
//! bounded so hostile nesting cannot overflow the stack.

/// Maximum nesting depth accepted from untrusted request bodies.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order (duplicate keys rejected).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset into the document plus what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing content rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing content after document"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for absent fields and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer, if this is
    /// a number holding one (rejects fractions, negatives, and
    /// magnitudes beyond 2^53 where `f64` loses integer exactness).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&v) {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(JsonError {
                offset: start,
                reason: format!("invalid number `{text}`"),
            }),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("non-hex \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the protocol's strings are ids and CSV text,
                            // all inside the BMP.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf-8 input");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

/// Appends `s` to `out` as a JSON string body (no surrounding quotes),
/// escaping everything the grammar requires.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` as a quoted, escaped JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Json::parse(
            r#"{"model":"census","rows":1000,"offset":0,"profile":"fast","flag":true,"x":null,"arr":[1,2.5,-3e2]}"#,
        )
        .unwrap();
        assert_eq!(v.get("model").and_then(Json::as_str), Some("census"));
        assert_eq!(v.get("rows").and_then(Json::as_u64), Some(1000));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        match v.get("arr") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let doc = format!("{{\"s\":{}}}", quote(original));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some(original));
        let v = Json::parse(r#""\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1} trailing",
            "{\"a\":1,\"a\":2}",
            "\"unterminated",
            "nul",
            "1e999",
            "NaN",
            "{\"a\"}",
            "\"bad \\q escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.reason.contains("nesting"), "{err}");
    }

    #[test]
    fn u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
        assert_eq!(Json::Num(1e18).as_u64(), None, "beyond exact range");
    }
}
