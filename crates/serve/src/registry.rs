//! The hot-loading model registry: `.dpcm` artifacts in a watched
//! directory, decoded on demand and LRU-cached by content checksum.
//!
//! The cache key is the FNV-1a 64 hash of the artifact's bytes on disk
//! — for canonically written files exactly [`ModelArtifact::checksum`]
//! of the decoded model. (Not the whole-file CRC-32: per-section CRCs
//! make that constant across same-shape artifacts — see
//! [`fnv1a64`].) So overwriting `{id}.dpcm` with new content is
//! picked up on the next request without any notification machinery:
//! every `get` re-reads the (small) file, and only *decoding and
//! validating* is skipped on a checksum hit. Capacity is bounded; the
//! least-recently-used entry is evicted when a decode would exceed it,
//! with evictions and residency published through the metrics sink.
//!
//! [`ModelArtifact::checksum`]: modelstore::ModelArtifact::checksum

use dpcopula::{DpCopulaError, FittedModel};
use modelstore::crc32::fnv1a64;
use modelstore::format::StoreError;
use obskit::{names, MetricsSink, Unit};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Weak};

/// Everything `get`/`list` can fail with, each mapped to one HTTP
/// status by the server.
#[derive(Debug)]
pub enum RegistryError {
    /// The model id contains characters outside `[A-Za-z0-9_-]` (which
    /// would allow path traversal out of the model directory). → 400.
    InvalidModelId {
        /// The offending id.
        id: String,
    },
    /// No `{id}.dpcm` exists in the model directory. → 404.
    UnknownModel {
        /// The id that was requested.
        id: String,
    },
    /// The file exists but failed to decode or validate; the reason
    /// names the damaged `.dpcm` section. → 500.
    Corrupt {
        /// Path of the damaged artifact.
        path: String,
        /// Decoder / validator failure, section name included.
        source: DpCopulaError,
    },
    /// The file or directory could not be read. → 500.
    Io {
        /// Path that failed.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::InvalidModelId { id } => {
                write!(f, "invalid model id `{id}`: expected [A-Za-z0-9_-]+")
            }
            RegistryError::UnknownModel { id } => write!(f, "unknown model `{id}`"),
            RegistryError::Corrupt { path, source } => {
                write!(f, "corrupt model artifact {path}: {source}")
            }
            RegistryError::Io { path, source } => write!(f, "reading {path}: {source}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One row of [`ModelRegistry::list`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Model id (file stem).
    pub id: String,
    /// Artifact size on disk.
    pub bytes: u64,
    /// FNV-1a 64 of the artifact bytes (the cache key).
    pub checksum: u64,
    /// Whether a decoded copy is currently resident in the cache.
    pub cached: bool,
    /// For entries that could not be read: the
    /// [`StoreError::DirEntry`]-wrapped failure, rendered. Healthy
    /// entries carry `None`.
    pub error: Option<String>,
}

struct CacheEntry {
    id: String,
    key: u64,
    model: Arc<FittedModel>,
    stamp: u64,
}

struct CacheState {
    entries: Vec<CacheEntry>,
    clock: u64,
    /// Ids whose artifact is being (or failed to finish being) removed
    /// from disk: `get` answers 404 for these even if the file is still
    /// present, and decode results are not re-cached. Cleared once the
    /// file is confirmed gone, or by `insert` (a refit revives the id).
    tombstones: HashSet<String>,
}

/// Checksum-keyed LRU of decoded models over a watched directory.
pub struct ModelRegistry {
    dir: PathBuf,
    capacity: usize,
    sink: MetricsSink,
    cache: Mutex<CacheState>,
    /// Per-id single-flight guards: concurrent `get`s for the same id
    /// decode once, the losers wait and then take the cache hit. Weak
    /// so an entry dies with its last in-flight request.
    flights: Mutex<HashMap<String, Weak<Mutex<()>>>>,
}

/// Whether `id` is safe to splice into a filename (also the charset
/// tenant names use, keeping ids usable as metric label values).
pub fn valid_model_id(id: &str) -> bool {
    !id.is_empty()
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

impl ModelRegistry {
    /// A registry over `dir`, caching at most `capacity` decoded models
    /// (clamped to at least 1) and publishing through `sink`.
    pub fn new(dir: impl Into<PathBuf>, capacity: usize, sink: MetricsSink) -> Self {
        Self {
            dir: dir.into(),
            capacity: capacity.max(1),
            sink,
            cache: Mutex::new(CacheState {
                entries: Vec::new(),
                clock: 0,
                tombstones: HashSet::new(),
            }),
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// The watched directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path the artifact for `id` lives at.
    pub fn path_for(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.dpcm"))
    }

    /// Returns the decoded model for `id`, from cache when the on-disk
    /// bytes still match the cached checksum, decoding (and possibly
    /// evicting) otherwise.
    pub fn get(&self, id: &str) -> Result<Arc<FittedModel>, RegistryError> {
        if !valid_model_id(id) {
            return Err(RegistryError::InvalidModelId { id: id.into() });
        }
        let path = self.path_for(id);
        if self.lookup(id, None).is_err() {
            // Tombstoned: the artifact is being deleted. 404 even if
            // the file still lingers on disk.
            return Err(RegistryError::UnknownModel { id: id.into() });
        }
        // Single-flight per id: one decode, concurrent callers wait
        // and then take the cache hit. The guard covers the file read
        // too, so delete-then-get interleavings stay deterministic.
        let flight = self.flight_for(id);
        let _decode_guard = flight.lock().expect("registry flight poisoned");
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Confirmed gone: drop any stale cache entry (and
                // tombstone) so the registry converges to "absent".
                self.forget(id);
                return Err(RegistryError::UnknownModel { id: id.into() });
            }
            Err(e) => {
                return Err(RegistryError::Io {
                    path: path.display().to_string(),
                    source: e,
                })
            }
        };
        let key = fnv1a64(&bytes);
        match self.lookup(id, Some(key)) {
            Ok(Some(model)) => return Ok(model),
            Ok(None) => {}
            Err(()) => return Err(RegistryError::UnknownModel { id: id.into() }),
        }
        // Decode outside the cache lock: a slow decode must not stall
        // cache hits for other models.
        let artifact = modelstore::decode_observed(&bytes, &self.sink).map_err(|e| {
            RegistryError::Corrupt {
                path: path.display().to_string(),
                source: DpCopulaError::from(StoreError::DirEntry {
                    path: path.display().to_string(),
                    source: Box::new(e),
                }),
            }
        })?;
        let mut model =
            FittedModel::from_artifact(artifact).map_err(|e| RegistryError::Corrupt {
                path: path.display().to_string(),
                source: e,
            })?;
        model.set_metrics_sink(self.sink.clone());
        let model = Arc::new(model);
        self.insert_cached(id, key, Arc::clone(&model), false);
        Ok(model)
    }

    /// Deletes `{id}.dpcm` and invalidates the cache. The entry is
    /// tombstoned (served as 404) from the moment the call starts until
    /// the file is confirmed gone; in-flight samples holding the old
    /// `Arc` finish safely on their own copy. Returns `UnknownModel`
    /// when there was nothing to delete.
    pub fn delete(&self, id: &str) -> Result<(), RegistryError> {
        if !valid_model_id(id) {
            return Err(RegistryError::InvalidModelId { id: id.into() });
        }
        {
            let mut cache = self.cache.lock().expect("registry cache poisoned");
            cache.entries.retain(|e| e.id != id);
            cache.tombstones.insert(id.to_string());
            self.sink.gauge_set(
                names::REGISTRY_MODELS_LOADED,
                Unit::Count,
                cache.entries.len() as u64,
            );
        }
        let path = self.path_for(id);
        match std::fs::remove_file(&path) {
            Ok(()) => {
                self.forget(id);
                self.sink.add(names::REGISTRY_DELETES_TOTAL, Unit::Count, 1);
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.forget(id);
                Err(RegistryError::UnknownModel { id: id.into() })
            }
            // Removal unconfirmed: the tombstone stays, so the id keeps
            // answering 404 until a retry or a refit resolves it.
            Err(e) => Err(RegistryError::Io {
                path: path.display().to_string(),
                source: e,
            }),
        }
    }

    /// Cache probe under one lock: `Err(())` if tombstoned, a hit when
    /// `key` matches, `Ok(None)` otherwise (also when `key` is `None`,
    /// which only checks the tombstone).
    #[allow(clippy::result_unit_err)]
    fn lookup(&self, id: &str, key: Option<u64>) -> Result<Option<Arc<FittedModel>>, ()> {
        let mut cache = self.cache.lock().expect("registry cache poisoned");
        if cache.tombstones.contains(id) {
            return Err(());
        }
        let Some(key) = key else { return Ok(None) };
        let clock = cache.clock + 1;
        cache.clock = clock;
        if let Some(entry) = cache
            .entries
            .iter_mut()
            .find(|e| e.id == id && e.key == key)
        {
            entry.stamp = clock;
            return Ok(Some(Arc::clone(&entry.model)));
        }
        Ok(None)
    }

    /// Clears the tombstone and any cache entry for `id`: the artifact
    /// is confirmed absent from disk.
    fn forget(&self, id: &str) {
        let mut cache = self.cache.lock().expect("registry cache poisoned");
        cache.tombstones.remove(id);
        cache.entries.retain(|e| e.id != id);
        self.sink.gauge_set(
            names::REGISTRY_MODELS_LOADED,
            Unit::Count,
            cache.entries.len() as u64,
        );
    }

    /// The single-flight guard for `id`, creating (and pruning dead)
    /// entries as needed.
    fn flight_for(&self, id: &str) -> Arc<Mutex<()>> {
        let mut flights = self.flights.lock().expect("registry flights poisoned");
        if let Some(flight) = flights.get(id).and_then(Weak::upgrade) {
            return flight;
        }
        flights.retain(|_, w| w.strong_count() > 0);
        let flight = Arc::new(Mutex::new(()));
        flights.insert(id.to_string(), Arc::downgrade(&flight));
        flight
    }

    /// Caches a freshly fitted model under its canonical checksum
    /// ([`modelstore::ModelArtifact::checksum`]), as `POST /v1/fit`
    /// does right after writing `{id}.dpcm`.
    pub fn insert(&self, id: &str, model: Arc<FittedModel>) {
        let key = model.artifact().checksum();
        // A refit revives a tombstoned id: the new artifact was just
        // written, so the pending deletion is superseded.
        self.insert_cached(id, key, model, true);
    }

    fn insert_cached(&self, id: &str, key: u64, model: Arc<FittedModel>, revive: bool) {
        let mut cache = self.cache.lock().expect("registry cache poisoned");
        if revive {
            cache.tombstones.remove(id);
        } else if cache.tombstones.contains(id) {
            // Deleted while we were decoding: hand the model to the
            // caller (it already holds the Arc) but don't resurrect it
            // in the cache.
            return;
        }
        let clock = cache.clock + 1;
        cache.clock = clock;
        // A same-id entry with a stale checksum is replaced, not kept
        // alongside: ids are unique in the cache.
        cache.entries.retain(|e| e.id != id);
        cache.entries.push(CacheEntry {
            id: id.to_string(),
            key,
            model,
            stamp: clock,
        });
        while cache.entries.len() > self.capacity {
            let (oldest, _) = cache
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .expect("non-empty cache");
            cache.entries.remove(oldest);
            self.sink
                .add(names::REGISTRY_CACHE_EVICTIONS_TOTAL, Unit::Count, 1);
        }
        self.sink.gauge_set(
            names::REGISTRY_MODELS_LOADED,
            Unit::Count,
            cache.entries.len() as u64,
        );
    }

    /// Number of decoded models currently resident.
    pub fn cached_models(&self) -> usize {
        self.cache
            .lock()
            .expect("registry cache poisoned")
            .entries
            .len()
    }

    /// Scans the watched directory: every `*.dpcm` entry, sorted by id,
    /// with unreadable entries reported in-line (as the rendered
    /// [`StoreError::DirEntry`]) rather than failing the whole listing.
    pub fn list(&self) -> Result<Vec<ModelInfo>, RegistryError> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| RegistryError::Io {
            path: self.dir.display().to_string(),
            source: e,
        })?;
        let cached: Vec<(String, u64)> = {
            let cache = self.cache.lock().expect("registry cache poisoned");
            cache
                .entries
                .iter()
                .map(|e| (e.id.clone(), e.key))
                .collect()
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| RegistryError::Io {
                path: self.dir.display().to_string(),
                source: e,
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("dpcm") {
                continue;
            }
            let Some(id) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
                continue;
            };
            match std::fs::read(&path) {
                Ok(bytes) => {
                    let checksum = fnv1a64(&bytes);
                    out.push(ModelInfo {
                        cached: cached.iter().any(|(i, k)| *i == id && *k == checksum),
                        id,
                        bytes: bytes.len() as u64,
                        checksum,
                        error: None,
                    });
                }
                Err(e) => {
                    let wrapped = StoreError::DirEntry {
                        path: path.display().to_string(),
                        source: Box::new(StoreError::from(e)),
                    };
                    out.push(ModelInfo {
                        id,
                        bytes: 0,
                        checksum: 0,
                        cached: false,
                        error: Some(wrapped.to_string()),
                    });
                }
            }
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcopula::SynthesisRequest;
    use dpmech::Epsilon;

    fn fit_tiny(seed: u64) -> FittedModel {
        let columns = vec![
            (0..40u32).map(|i| i % 4).collect::<Vec<u32>>(),
            (0..40u32).map(|i| (i / 2) % 3).collect(),
        ];
        let domains = vec![4usize, 3];
        let (model, _) = SynthesisRequest::new(&columns, &domains, Epsilon::new(2.0).unwrap())
            .seed(seed)
            .fit()
            .unwrap();
        model
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dpcopula-serve-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn get_decodes_once_and_rereads_after_overwrite() {
        let dir = temp_dir("reload");
        let reg = ModelRegistry::new(&dir, 4, MetricsSink::off());
        fit_tiny(1).save(reg.path_for("m")).unwrap();
        let first = reg.get("m").unwrap();
        let again = reg.get("m").unwrap();
        assert!(Arc::ptr_eq(&first, &again), "same bytes must hit the cache");

        // Overwriting the artifact is picked up without restart. (Same
        // section lengths, different seed — the case whole-file CRC-32
        // cannot distinguish, which is why the key is FNV-1a 64.)
        fit_tiny(2).save(reg.path_for("m")).unwrap();
        let reloaded = reg.get("m").unwrap();
        assert!(!Arc::ptr_eq(&first, &reloaded));
        assert_eq!(reg.cached_models(), 1, "stale entry replaced, not kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let dir = temp_dir("lru");
        let registry = Arc::new(obskit::MetricsRegistry::new());
        let sink = MetricsSink::to_registry(Arc::clone(&registry));
        let reg = ModelRegistry::new(&dir, 2, sink);
        for (i, id) in ["a", "b", "c"].iter().enumerate() {
            fit_tiny(i as u64).save(reg.path_for(id)).unwrap();
        }
        reg.get("a").unwrap();
        reg.get("b").unwrap();
        reg.get("a").unwrap(); // refresh a: b is now the LRU entry
        reg.get("c").unwrap(); // evicts b
        assert_eq!(reg.cached_models(), 2);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("registry_cache_evictions_total")
                .and_then(|e| e.value.as_u64()),
            Some(1)
        );
        assert_eq!(
            snap.get("registry_models_loaded")
                .and_then(|e| e.value.as_u64()),
            Some(2)
        );
        let listed = reg.list().unwrap();
        let cached: Vec<&str> = listed
            .iter()
            .filter(|m| m.cached)
            .map(|m| m.id.as_str())
            .collect();
        assert_eq!(cached, ["a", "c"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_named() {
        let dir = temp_dir("errors");
        let reg = ModelRegistry::new(&dir, 4, MetricsSink::off());
        assert!(matches!(
            reg.get("no-such-model"),
            Err(RegistryError::UnknownModel { .. })
        ));
        assert!(matches!(
            reg.get("../escape"),
            Err(RegistryError::InvalidModelId { .. })
        ));
        std::fs::write(reg.path_for("bad"), b"not a dpcm artifact").unwrap();
        match reg.get("bad") {
            Err(RegistryError::Corrupt { path, source }) => {
                assert!(path.ends_with("bad.dpcm"));
                let reason = source.to_string();
                assert!(reason.contains("model directory entry"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn insert_uses_the_canonical_checksum() {
        let dir = temp_dir("insert");
        let reg = ModelRegistry::new(&dir, 4, MetricsSink::off());
        let model = fit_tiny(7);
        model.save(reg.path_for("fresh")).unwrap();
        reg.insert("fresh", Arc::new(model));
        // The cached entry's key equals the on-disk bytes' CRC, so the
        // next get is a hit, not a decode.
        let hit = reg.get("fresh").unwrap();
        assert_eq!(reg.cached_models(), 1);
        assert_eq!(hit.artifact().checksum(), fnv1a64(&model_bytes(&reg)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn model_bytes(reg: &ModelRegistry) -> Vec<u8> {
        std::fs::read(reg.path_for("fresh")).unwrap()
    }

    #[test]
    fn delete_evicts_removes_the_file_and_404s_afterwards() {
        let dir = temp_dir("delete");
        let registry = Arc::new(obskit::MetricsRegistry::new());
        let sink = MetricsSink::to_registry(Arc::clone(&registry));
        let reg = ModelRegistry::new(&dir, 4, sink);
        fit_tiny(3).save(reg.path_for("gone")).unwrap();
        let held = reg.get("gone").unwrap();
        assert_eq!(reg.cached_models(), 1);

        reg.delete("gone").unwrap();
        assert!(!reg.path_for("gone").exists());
        assert_eq!(reg.cached_models(), 0);
        assert!(matches!(
            reg.get("gone"),
            Err(RegistryError::UnknownModel { .. })
        ));
        // A second delete has nothing to remove.
        assert!(matches!(
            reg.delete("gone"),
            Err(RegistryError::UnknownModel { .. })
        ));
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("registry_deletes_total")
                .and_then(|e| e.value.as_u64()),
            Some(1)
        );
        // The Arc handed out before the delete still samples fine.
        assert!(held.artifact().checksum() != 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refit_revives_a_tombstoned_id() {
        let dir = temp_dir("revive");
        let reg = ModelRegistry::new(&dir, 4, MetricsSink::off());
        fit_tiny(4).save(reg.path_for("m")).unwrap();
        reg.get("m").unwrap();
        reg.delete("m").unwrap();
        assert!(matches!(
            reg.get("m"),
            Err(RegistryError::UnknownModel { .. })
        ));
        // A refit (fit handler path: save then insert) brings it back.
        let model = fit_tiny(5);
        model.save(reg.path_for("m")).unwrap();
        reg.insert("m", Arc::new(model));
        assert!(reg.get("m").is_ok());
        assert_eq!(reg.cached_models(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
