//! The hot-loading model registry: `.dpcm` artifacts in a watched
//! directory, decoded on demand and LRU-cached by content checksum.
//!
//! The cache key is the FNV-1a 64 hash of the artifact's bytes on disk
//! — for canonically written files exactly [`ModelArtifact::checksum`]
//! of the decoded model. (Not the whole-file CRC-32: per-section CRCs
//! make that constant across same-shape artifacts — see
//! [`fnv1a64`].) So overwriting `{id}.dpcm` with new content is
//! picked up on the next request without any notification machinery:
//! every `get` re-reads the (small) file, and only *decoding and
//! validating* is skipped on a checksum hit. Capacity is bounded; the
//! least-recently-used entry is evicted when a decode would exceed it,
//! with evictions and residency published through the metrics sink.
//!
//! [`ModelArtifact::checksum`]: modelstore::ModelArtifact::checksum

use dpcopula::{DpCopulaError, FittedModel};
use modelstore::crc32::fnv1a64;
use modelstore::format::StoreError;
use obskit::{names, MetricsSink, Unit};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Everything `get`/`list` can fail with, each mapped to one HTTP
/// status by the server.
#[derive(Debug)]
pub enum RegistryError {
    /// The model id contains characters outside `[A-Za-z0-9_-]` (which
    /// would allow path traversal out of the model directory). → 400.
    InvalidModelId {
        /// The offending id.
        id: String,
    },
    /// No `{id}.dpcm` exists in the model directory. → 404.
    UnknownModel {
        /// The id that was requested.
        id: String,
    },
    /// The file exists but failed to decode or validate; the reason
    /// names the damaged `.dpcm` section. → 500.
    Corrupt {
        /// Path of the damaged artifact.
        path: String,
        /// Decoder / validator failure, section name included.
        source: DpCopulaError,
    },
    /// The file or directory could not be read. → 500.
    Io {
        /// Path that failed.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::InvalidModelId { id } => {
                write!(f, "invalid model id `{id}`: expected [A-Za-z0-9_-]+")
            }
            RegistryError::UnknownModel { id } => write!(f, "unknown model `{id}`"),
            RegistryError::Corrupt { path, source } => {
                write!(f, "corrupt model artifact {path}: {source}")
            }
            RegistryError::Io { path, source } => write!(f, "reading {path}: {source}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One row of [`ModelRegistry::list`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Model id (file stem).
    pub id: String,
    /// Artifact size on disk.
    pub bytes: u64,
    /// FNV-1a 64 of the artifact bytes (the cache key).
    pub checksum: u64,
    /// Whether a decoded copy is currently resident in the cache.
    pub cached: bool,
    /// For entries that could not be read: the
    /// [`StoreError::DirEntry`]-wrapped failure, rendered. Healthy
    /// entries carry `None`.
    pub error: Option<String>,
}

struct CacheEntry {
    id: String,
    key: u64,
    model: Arc<FittedModel>,
    stamp: u64,
}

struct CacheState {
    entries: Vec<CacheEntry>,
    clock: u64,
}

/// Checksum-keyed LRU of decoded models over a watched directory.
pub struct ModelRegistry {
    dir: PathBuf,
    capacity: usize,
    sink: MetricsSink,
    cache: Mutex<CacheState>,
}

/// Whether `id` is safe to splice into a filename (also the charset
/// tenant names use, keeping ids usable as metric label values).
pub fn valid_model_id(id: &str) -> bool {
    !id.is_empty()
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

impl ModelRegistry {
    /// A registry over `dir`, caching at most `capacity` decoded models
    /// (clamped to at least 1) and publishing through `sink`.
    pub fn new(dir: impl Into<PathBuf>, capacity: usize, sink: MetricsSink) -> Self {
        Self {
            dir: dir.into(),
            capacity: capacity.max(1),
            sink,
            cache: Mutex::new(CacheState {
                entries: Vec::new(),
                clock: 0,
            }),
        }
    }

    /// The watched directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path the artifact for `id` lives at.
    pub fn path_for(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.dpcm"))
    }

    /// Returns the decoded model for `id`, from cache when the on-disk
    /// bytes still match the cached checksum, decoding (and possibly
    /// evicting) otherwise.
    pub fn get(&self, id: &str) -> Result<Arc<FittedModel>, RegistryError> {
        if !valid_model_id(id) {
            return Err(RegistryError::InvalidModelId { id: id.into() });
        }
        let path = self.path_for(id);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(RegistryError::UnknownModel { id: id.into() })
            }
            Err(e) => {
                return Err(RegistryError::Io {
                    path: path.display().to_string(),
                    source: e,
                })
            }
        };
        let key = fnv1a64(&bytes);
        {
            let mut cache = self.cache.lock().expect("registry cache poisoned");
            let clock = cache.clock + 1;
            cache.clock = clock;
            if let Some(entry) = cache
                .entries
                .iter_mut()
                .find(|e| e.id == id && e.key == key)
            {
                entry.stamp = clock;
                return Ok(Arc::clone(&entry.model));
            }
        }
        // Decode outside the cache lock: a slow decode must not stall
        // cache hits for other models.
        let artifact = modelstore::decode_observed(&bytes, &self.sink).map_err(|e| {
            RegistryError::Corrupt {
                path: path.display().to_string(),
                source: DpCopulaError::from(StoreError::DirEntry {
                    path: path.display().to_string(),
                    source: Box::new(e),
                }),
            }
        })?;
        let mut model =
            FittedModel::from_artifact(artifact).map_err(|e| RegistryError::Corrupt {
                path: path.display().to_string(),
                source: e,
            })?;
        model.set_metrics_sink(self.sink.clone());
        let model = Arc::new(model);
        self.insert_cached(id, key, Arc::clone(&model));
        Ok(model)
    }

    /// Caches a freshly fitted model under its canonical checksum
    /// ([`modelstore::ModelArtifact::checksum`]), as `POST /v1/fit`
    /// does right after writing `{id}.dpcm`.
    pub fn insert(&self, id: &str, model: Arc<FittedModel>) {
        let key = model.artifact().checksum();
        self.insert_cached(id, key, model);
    }

    fn insert_cached(&self, id: &str, key: u64, model: Arc<FittedModel>) {
        let mut cache = self.cache.lock().expect("registry cache poisoned");
        let clock = cache.clock + 1;
        cache.clock = clock;
        // A same-id entry with a stale checksum is replaced, not kept
        // alongside: ids are unique in the cache.
        cache.entries.retain(|e| e.id != id);
        cache.entries.push(CacheEntry {
            id: id.to_string(),
            key,
            model,
            stamp: clock,
        });
        while cache.entries.len() > self.capacity {
            let (oldest, _) = cache
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .expect("non-empty cache");
            cache.entries.remove(oldest);
            self.sink
                .add(names::REGISTRY_CACHE_EVICTIONS_TOTAL, Unit::Count, 1);
        }
        self.sink.gauge_set(
            names::REGISTRY_MODELS_LOADED,
            Unit::Count,
            cache.entries.len() as u64,
        );
    }

    /// Number of decoded models currently resident.
    pub fn cached_models(&self) -> usize {
        self.cache
            .lock()
            .expect("registry cache poisoned")
            .entries
            .len()
    }

    /// Scans the watched directory: every `*.dpcm` entry, sorted by id,
    /// with unreadable entries reported in-line (as the rendered
    /// [`StoreError::DirEntry`]) rather than failing the whole listing.
    pub fn list(&self) -> Result<Vec<ModelInfo>, RegistryError> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| RegistryError::Io {
            path: self.dir.display().to_string(),
            source: e,
        })?;
        let cached: Vec<(String, u64)> = {
            let cache = self.cache.lock().expect("registry cache poisoned");
            cache
                .entries
                .iter()
                .map(|e| (e.id.clone(), e.key))
                .collect()
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| RegistryError::Io {
                path: self.dir.display().to_string(),
                source: e,
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("dpcm") {
                continue;
            }
            let Some(id) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
                continue;
            };
            match std::fs::read(&path) {
                Ok(bytes) => {
                    let checksum = fnv1a64(&bytes);
                    out.push(ModelInfo {
                        cached: cached.iter().any(|(i, k)| *i == id && *k == checksum),
                        id,
                        bytes: bytes.len() as u64,
                        checksum,
                        error: None,
                    });
                }
                Err(e) => {
                    let wrapped = StoreError::DirEntry {
                        path: path.display().to_string(),
                        source: Box::new(StoreError::from(e)),
                    };
                    out.push(ModelInfo {
                        id,
                        bytes: 0,
                        checksum: 0,
                        cached: false,
                        error: Some(wrapped.to_string()),
                    });
                }
            }
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcopula::SynthesisRequest;
    use dpmech::Epsilon;

    fn fit_tiny(seed: u64) -> FittedModel {
        let columns = vec![
            (0..40u32).map(|i| i % 4).collect::<Vec<u32>>(),
            (0..40u32).map(|i| (i / 2) % 3).collect(),
        ];
        let domains = vec![4usize, 3];
        let (model, _) = SynthesisRequest::new(&columns, &domains, Epsilon::new(2.0).unwrap())
            .seed(seed)
            .fit()
            .unwrap();
        model
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dpcopula-serve-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn get_decodes_once_and_rereads_after_overwrite() {
        let dir = temp_dir("reload");
        let reg = ModelRegistry::new(&dir, 4, MetricsSink::off());
        fit_tiny(1).save(reg.path_for("m")).unwrap();
        let first = reg.get("m").unwrap();
        let again = reg.get("m").unwrap();
        assert!(Arc::ptr_eq(&first, &again), "same bytes must hit the cache");

        // Overwriting the artifact is picked up without restart. (Same
        // section lengths, different seed — the case whole-file CRC-32
        // cannot distinguish, which is why the key is FNV-1a 64.)
        fit_tiny(2).save(reg.path_for("m")).unwrap();
        let reloaded = reg.get("m").unwrap();
        assert!(!Arc::ptr_eq(&first, &reloaded));
        assert_eq!(reg.cached_models(), 1, "stale entry replaced, not kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let dir = temp_dir("lru");
        let registry = Arc::new(obskit::MetricsRegistry::new());
        let sink = MetricsSink::to_registry(Arc::clone(&registry));
        let reg = ModelRegistry::new(&dir, 2, sink);
        for (i, id) in ["a", "b", "c"].iter().enumerate() {
            fit_tiny(i as u64).save(reg.path_for(id)).unwrap();
        }
        reg.get("a").unwrap();
        reg.get("b").unwrap();
        reg.get("a").unwrap(); // refresh a: b is now the LRU entry
        reg.get("c").unwrap(); // evicts b
        assert_eq!(reg.cached_models(), 2);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("registry_cache_evictions_total")
                .and_then(|e| e.value.as_u64()),
            Some(1)
        );
        assert_eq!(
            snap.get("registry_models_loaded")
                .and_then(|e| e.value.as_u64()),
            Some(2)
        );
        let listed = reg.list().unwrap();
        let cached: Vec<&str> = listed
            .iter()
            .filter(|m| m.cached)
            .map(|m| m.id.as_str())
            .collect();
        assert_eq!(cached, ["a", "c"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_named() {
        let dir = temp_dir("errors");
        let reg = ModelRegistry::new(&dir, 4, MetricsSink::off());
        assert!(matches!(
            reg.get("no-such-model"),
            Err(RegistryError::UnknownModel { .. })
        ));
        assert!(matches!(
            reg.get("../escape"),
            Err(RegistryError::InvalidModelId { .. })
        ));
        std::fs::write(reg.path_for("bad"), b"not a dpcm artifact").unwrap();
        match reg.get("bad") {
            Err(RegistryError::Corrupt { path, source }) => {
                assert!(path.ends_with("bad.dpcm"));
                let reason = source.to_string();
                assert!(reason.contains("model directory entry"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn insert_uses_the_canonical_checksum() {
        let dir = temp_dir("insert");
        let reg = ModelRegistry::new(&dir, 4, MetricsSink::off());
        let model = fit_tiny(7);
        model.save(reg.path_for("fresh")).unwrap();
        reg.insert("fresh", Arc::new(model));
        // The cached entry's key equals the on-disk bytes' CRC, so the
        // next get is a hit, not a decode.
        let hit = reg.get("fresh").unwrap();
        assert_eq!(reg.cached_models(), 1);
        assert_eq!(hit.artifact().checksum(), fnv1a64(&model_bytes(&reg)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn model_bytes(reg: &ModelRegistry) -> Vec<u8> {
        std::fs::read(reg.path_for("fresh")).unwrap()
    }
}
