//! The daemon: a thread-per-connection HTTP/1.1 server over
//! [`std::net::TcpListener`], connections dispatched onto a
//! [`parkit::TaskPool`], routing six endpoints:
//!
//! | route                     | what it does                                     |
//! |---------------------------|--------------------------------------------------|
//! | `GET /healthz`            | liveness: `ok\n`                                 |
//! | `GET /metrics`            | the full metric taxonomy, Prometheus text        |
//! | `GET /v1/models`          | watched-directory listing with cache state       |
//! | `POST /v1/sample`         | row window from a registry model, CSV or JSON    |
//! | `POST /v1/fit`            | ε-metered fit: CSV in, `.dpcm` + cache entry out |
//! | `DELETE /v1/models/{id}`  | removes the artifact and invalidates the cache   |
//!
//! ## Overload behavior
//!
//! Admission is bounded at two levels, and excess load is shed fast
//! with `503` + `Retry-After` instead of queueing unboundedly (the
//! `server_shed_total{route}` counter records every shed):
//!
//! - **Connections**: accepted connections occupy pool slots reserved
//!   via [`parkit::TaskPool::try_reserve`]; past
//!   [`ServeConfig::max_connections`] the accept thread writes the 503
//!   itself and closes.
//! - **Requests**: `/v1/sample` and `/v1/fit` each pass a per-route
//!   in-flight gate capped at [`ServeConfig::max_inflight`].
//!
//! Slow clients cannot pin workers: sockets carry read/write timeouts,
//! and the request head and body each have a wall-clock deadline —
//! exceeding one yields a named `408` (counted in
//! `serve_timeouts_total{phase}`) and the connection closes.
//!
//! ## ε admission
//!
//! Only `/v1/fit` passes the [`BudgetGate`]: fitting releases new noisy
//! statistics and spends the tenant's ε. `/v1/sample` draws rows from
//! statistics that were already released, which is post-processing and
//! ε-free — so sampling keeps serving (and stays unmetered) even for a
//! tenant whose fit budget is exhausted. Admission happens *after*
//! input validation (parsing a request body releases nothing) and
//! *before* the fit; a fit that fails after admission keeps its debit,
//! because partial pipelines may already have released noisy margins.
//!
//! ## Determinism
//!
//! Sampling goes through `FittedModel::try_sample_range_profiled`, so a
//! window fetched over HTTP is byte-identical (as CSV) to the same
//! window sampled in-process, at any worker count.

use crate::budget::{BudgetGate, GateError, DEFAULT_TENANT};
use crate::http::{read_request_spooled, HttpError, ReadLimits, Request, Response, SpoolPolicy};
use crate::json::{quote, Json};
use crate::registry::{valid_model_id, ModelRegistry, RegistryError};
use datagen::RowSource;
use dpcopula::{DpCopulaConfig, DpCopulaError, SamplingProfile, SynthesisRequest};
use dpmech::Epsilon;
use obskit::{names, MetricsRegistry, MetricsSink, Stopwatch, Unit};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8787`. Port 0 binds an ephemeral
    /// port (query it back via [`Server::local_addr`]).
    pub addr: String,
    /// Directory of `.dpcm` artifacts the registry watches.
    pub model_dir: PathBuf,
    /// Tenant budget file (`name = epsilon` per line); `None` runs a
    /// single `default` tenant with [`ServeConfig::default_epsilon`].
    pub tenant_file: Option<PathBuf>,
    /// Budget of the implicit `default` tenant when no tenant file is
    /// given.
    pub default_epsilon: f64,
    /// Decoded models the registry keeps resident.
    pub cache_capacity: usize,
    /// Hard cap on request body size.
    pub max_body_bytes: usize,
    /// When larger than `max_body_bytes`, a `POST /v1/fit` CSV body up
    /// to this size is spooled to a temp file and fed through the
    /// out-of-core streaming fit instead of being refused with `413` —
    /// peak memory stays bounded by the ingestion block size, not the
    /// body. `0` (the default) disables spooling; every other route
    /// keeps the `max_body_bytes` cap either way.
    pub max_fit_body_bytes: usize,
    /// Connection-handling threads.
    pub pool_workers: usize,
    /// Worker threads per sampling request (any value yields identical
    /// bytes; it only changes parallelism).
    pub sample_workers: usize,
    /// Hard cap on rows per sample request.
    pub max_rows: usize,
    /// Connections admitted at once (queued + running); excess is shed
    /// with `503` + `Retry-After` from the accept thread.
    pub max_connections: usize,
    /// In-flight requests per gated route (`sample`, `fit`); excess is
    /// shed with `503` + `Retry-After`.
    pub max_inflight: usize,
    /// Socket read timeout — how long one blocking read may wait. Also
    /// how long an idle keep-alive connection may sit between requests.
    pub read_timeout: Duration,
    /// Socket write timeout — a client that stops reading its response
    /// loses the connection after this long.
    pub write_timeout: Duration,
    /// Wall-clock deadline for receiving a complete request head once
    /// its first byte has arrived (slowloris defense).
    pub head_timeout: Duration,
    /// Wall-clock deadline for receiving a complete declared body.
    pub body_timeout: Duration,
    /// How long shutdown waits for in-flight connections to finish
    /// before abandoning them.
    pub drain_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8787".into(),
            model_dir: PathBuf::from("."),
            tenant_file: None,
            default_epsilon: 10.0,
            cache_capacity: 8,
            max_body_bytes: 8 * 1024 * 1024,
            max_fit_body_bytes: 0,
            pool_workers: 4,
            sample_workers: 1,
            max_rows: 10_000_000,
            max_connections: 256,
            max_inflight: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            head_timeout: Duration::from_secs(10),
            body_timeout: Duration::from_secs(60),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// Startup failures, each naming what was wrong.
#[derive(Debug)]
pub enum ServeError {
    /// The listen address did not parse as `host:port`.
    BadAddr {
        /// The address as given.
        addr: String,
    },
    /// The model directory does not exist or is not a directory.
    ModelDirMissing {
        /// The path as given.
        path: String,
    },
    /// The tenant budget file could not be read.
    TenantFileIo {
        /// The path as given.
        path: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The tenant budget file did not parse.
    TenantConfig(crate::budget::TenantConfigError),
    /// The default tenant's epsilon was invalid.
    BadEpsilon(f64),
    /// Binding or accepting on the socket failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadAddr { addr } => {
                write!(f, "invalid listen address `{addr}`: expected host:port")
            }
            ServeError::ModelDirMissing { path } => {
                write!(f, "model directory `{path}` does not exist")
            }
            ServeError::TenantFileIo { path, source } => {
                write!(f, "reading tenant budget file {path}: {source}")
            }
            ServeError::TenantConfig(e) => write!(f, "{e}"),
            ServeError::BadEpsilon(v) => {
                write!(f, "invalid default epsilon {v}: must be finite and > 0")
            }
            ServeError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

struct ServerState {
    registry: ModelRegistry,
    gate: BudgetGate,
    metrics: Arc<MetricsRegistry>,
    sink: MetricsSink,
    max_body_bytes: usize,
    max_fit_body_bytes: usize,
    sample_workers: usize,
    max_rows: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    head_timeout: Duration,
    body_timeout: Duration,
    sample_gate: InflightGate,
    fit_gate: InflightGate,
    stop: Arc<AtomicBool>,
}

/// A CAS-bounded in-flight counter: one per shed-gated route.
struct InflightGate {
    inflight: AtomicUsize,
    cap: usize,
}

/// RAII slot in an [`InflightGate`], released on drop.
struct InflightPermit<'a>(&'a InflightGate);

impl InflightGate {
    fn new(cap: usize) -> Self {
        Self {
            inflight: AtomicUsize::new(0),
            cap: cap.max(1),
        }
    }

    fn try_acquire(&self) -> Option<InflightPermit<'_>> {
        let mut current = self.inflight.load(Ordering::Acquire);
        loop {
            if current >= self.cap {
                return None;
            }
            match self.inflight.compare_exchange(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(InflightPermit(self)),
                Err(seen) => current = seen,
            }
        }
    }
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks; use
/// [`Server::shutdown_handle`] from another thread to stop it.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool_workers: usize,
    max_connections: usize,
    drain_deadline: Duration,
}

/// Stops a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Flags the accept loop to stop and pokes the listener so it
    /// notices immediately.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on wakeup; a throwaway
        // connection provides one. Failure is fine — the listener may
        // already be gone.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Validates the config, binds the socket, builds the registry and
    /// gate, and pre-registers the full metric taxonomy (so `/metrics`
    /// always carries every series name).
    pub fn bind(config: ServeConfig) -> Result<Self, ServeError> {
        let addr: SocketAddr = config.addr.parse().map_err(|_| ServeError::BadAddr {
            addr: config.addr.clone(),
        })?;
        if !config.model_dir.is_dir() {
            return Err(ServeError::ModelDirMissing {
                path: config.model_dir.display().to_string(),
            });
        }
        let gate = match &config.tenant_file {
            Some(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| ServeError::TenantFileIo {
                    path: path.display().to_string(),
                    source: e,
                })?;
                BudgetGate::from_config(&text).map_err(ServeError::TenantConfig)?
            }
            None => BudgetGate::single_tenant(
                Epsilon::new(config.default_epsilon)
                    .map_err(|_| ServeError::BadEpsilon(config.default_epsilon))?,
            ),
        };
        let metrics = Arc::new(MetricsRegistry::new());
        names::register_taxonomy(&metrics);
        let sink = MetricsSink::to_registry(Arc::clone(&metrics));
        let listener = TcpListener::bind(addr).map_err(ServeError::Io)?;
        let state = Arc::new(ServerState {
            registry: ModelRegistry::new(
                config.model_dir.clone(),
                config.cache_capacity,
                sink.clone(),
            ),
            gate,
            metrics,
            sink,
            max_body_bytes: config.max_body_bytes,
            max_fit_body_bytes: config.max_fit_body_bytes,
            sample_workers: config.sample_workers.max(1),
            max_rows: config.max_rows,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            head_timeout: config.head_timeout,
            body_timeout: config.body_timeout,
            sample_gate: InflightGate::new(config.max_inflight),
            fit_gate: InflightGate::new(config.max_inflight),
            stop: Arc::new(AtomicBool::new(false)),
        });
        Ok(Self {
            listener,
            state,
            pool_workers: config.pool_workers.max(1),
            max_connections: config.max_connections.max(1),
            drain_deadline: config.drain_deadline,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(ServeError::Io)
    }

    /// A handle that stops [`Server::run`] from another thread.
    pub fn shutdown_handle(&self) -> Result<ShutdownHandle, ServeError> {
        Ok(ShutdownHandle {
            addr: self.local_addr()?,
            stop: Arc::clone(&self.state.stop),
        })
    }

    /// Accepts connections until shut down, dispatching each onto the
    /// pool. Blocks the calling thread. Admission is bounded: past
    /// `max_connections` in flight, new connections get a direct `503`
    /// from the accept thread instead of a pool slot.
    pub fn run(self) -> Result<(), ServeError> {
        let pool = parkit::TaskPool::new(self.pool_workers);
        for conn in self.listener.incoming() {
            if self.state.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // A single failed accept (peer gone before we got to
                // it) must not take the daemon down.
                Err(_) => continue,
            };
            match pool.try_reserve(self.max_connections) {
                Ok(permit) => {
                    let state = Arc::clone(&self.state);
                    permit.submit(move || handle_connection(stream, &state));
                }
                Err(_) => shed_connection(stream, &self.state),
            }
        }
        // Graceful drain: the listener stops accepting (it is dropped
        // with `self`), in-flight connections finish, and past the
        // deadline the pool is abandoned rather than joined — a pinned
        // worker must not wedge shutdown.
        let watch = Stopwatch::start();
        let deadline_ns = self.drain_deadline.as_nanos() as u64;
        while pool.pending() > 0 && watch.elapsed_ns() < deadline_ns {
            std::thread::sleep(Duration::from_millis(2));
        }
        if pool.pending() > 0 {
            std::mem::forget(pool);
        }
        Ok(())
    }
}

/// Writes the connection-level shed response directly on the accept
/// thread (bounded by the write timeout) and closes.
fn shed_connection(mut stream: TcpStream, state: &ServerState) {
    state.sink.add_labeled(
        names::SERVER_SHED_TOTAL,
        &[("route", "connection")],
        Unit::Count,
        1,
    );
    let _ = stream.set_write_timeout(Some(state.write_timeout));
    let _ = stream.set_nodelay(true);
    let _ = Response::error(503, "server at connection capacity", &[])
        .with_header("Retry-After", "1")
        .write_to(&mut stream, false);
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(state.read_timeout));
    let _ = stream.set_write_timeout(Some(state.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let limits = ReadLimits {
        max_body: state.max_body_bytes,
        head_deadline: Some(state.head_timeout),
        body_deadline: Some(state.body_timeout),
    };
    // Fit bodies past the in-memory cap spool to a temp file when the
    // operator opted in with a larger `max_fit_body_bytes`.
    let spool = (state.max_fit_body_bytes > state.max_body_bytes).then(|| SpoolPolicy {
        path: "/v1/fit".to_string(),
        max_body: state.max_fit_body_bytes,
        dir: std::env::temp_dir(),
    });
    loop {
        let watch = Stopwatch::start();
        let request = read_request_spooled(&mut reader, &mut writer, limits, spool.as_ref());
        let (endpoint, response, permit, keep_alive) = match &request {
            Ok(req) => {
                let (endpoint, response, permit) = route(req, state);
                (endpoint, response, permit, req.keep_alive())
            }
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
            Err(e @ HttpError::PayloadTooLarge { .. }) => {
                // Drain (a bounded amount of) the refused body before
                // closing: closing with unread bytes in the receive
                // buffer sends a TCP RST, which discards the 413 the
                // client is about to read.
                if let HttpError::PayloadTooLarge { declared, .. } = e {
                    drain(&mut reader, *declared);
                }
                (
                    "other",
                    Response::error(413, &e.to_string(), &[]),
                    None,
                    false,
                )
            }
            Err(e @ (HttpError::BadRequest { .. } | HttpError::TruncatedBody { .. })) => (
                "other",
                Response::error(400, &e.to_string(), &[]),
                None,
                false,
            ),
            Err(e @ (HttpError::HeadTimeout { .. } | HttpError::BodyTimeout { .. })) => {
                let phase = match e {
                    HttpError::HeadTimeout { .. } => "head",
                    _ => "body",
                };
                state.sink.add_labeled(
                    names::SERVE_TIMEOUTS_TOTAL,
                    &[("phase", phase)],
                    Unit::Count,
                    1,
                );
                (
                    "other",
                    Response::error(408, &e.to_string(), &[]),
                    None,
                    false,
                )
            }
        };
        // The in-flight permit (if the route took one) is held across
        // the response write: a slow-reading client keeps occupying its
        // slot until its bytes are actually delivered.
        let ok = response.write_to(&mut writer, keep_alive).is_ok();
        drop(permit);
        record_request(state, endpoint, response.status, &watch);
        // A draining server closes keep-alive connections at the next
        // request boundary.
        if !ok || !keep_alive || state.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Reads and discards up to `declared` bytes (capped at 1 MiB — a body
/// claiming gigabytes is not worth draining; those clients lose the
/// response to the reset, which is acceptable).
fn drain<R: std::io::Read>(reader: &mut R, declared: usize) {
    let mut remaining = declared.min(1 << 20);
    let mut scratch = [0u8; 8192];
    while remaining > 0 {
        let want = remaining.min(scratch.len());
        match reader.read(&mut scratch[..want]) {
            Ok(0) | Err(_) => return,
            Ok(n) => remaining -= n,
        }
    }
}

fn record_request(state: &ServerState, endpoint: &str, status: u16, watch: &Stopwatch) {
    let status = status.to_string();
    state.sink.add_labeled(
        names::SERVE_REQUESTS_TOTAL,
        &[("endpoint", endpoint), ("status", status.as_str())],
        Unit::Count,
        1,
    );
    state.sink.observe_labeled(
        names::SERVE_REQUEST_NS,
        &[("endpoint", endpoint)],
        Unit::Nanos,
        watch.elapsed_ns(),
    );
}

/// Dispatches one request; returns the endpoint label (for metrics),
/// the response, and — for gated routes — the in-flight permit, which
/// the caller holds until the response bytes are written.
fn route<'a>(
    req: &Request,
    state: &'a ServerState,
) -> (&'static str, Response, Option<InflightPermit<'a>>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("healthz", Response::text(200, "ok\n".into()), None),
        ("GET", "/metrics") => (
            "metrics",
            Response::text(200, state.metrics.snapshot().to_prometheus()),
            None,
        ),
        ("GET", "/v1/models") => ("models", handle_models(state), None),
        ("POST", "/v1/sample") => {
            let (response, permit) = gated(state, "sample", &state.sample_gate, || {
                handle_sample(req, state)
            });
            ("sample", response, permit)
        }
        ("POST", "/v1/fit") => {
            let (response, permit) =
                gated(state, "fit", &state.fit_gate, || handle_fit(req, state));
            ("fit", response, permit)
        }
        (method, path) if path.starts_with("/v1/models/") => {
            let id = &path["/v1/models/".len()..];
            if method == "DELETE" {
                ("delete", handle_delete(id, state), None)
            } else {
                (
                    "delete",
                    Response::error(405, &format!("method {method} not allowed"), &[]),
                    None,
                )
            }
        }
        (_, "/healthz" | "/metrics" | "/v1/models" | "/v1/sample" | "/v1/fit") => {
            let endpoint = match req.path.as_str() {
                "/healthz" => "healthz",
                "/metrics" => "metrics",
                "/v1/models" => "models",
                "/v1/sample" => "sample",
                _ => "fit",
            };
            (
                endpoint,
                Response::error(405, &format!("method {} not allowed", req.method), &[]),
                None,
            )
        }
        _ => (
            "other",
            Response::error(404, &format!("no route for {}", req.path), &[]),
            None,
        ),
    }
}

/// Runs `f` under a route's in-flight gate, or sheds with `503` +
/// `Retry-After` when the gate is full. On admission the permit is
/// returned alongside the response so the slot stays occupied through
/// response delivery, not just handler execution.
fn gated<'a, F: FnOnce() -> Response>(
    state: &ServerState,
    route: &'static str,
    gate: &'a InflightGate,
    f: F,
) -> (Response, Option<InflightPermit<'a>>) {
    match gate.try_acquire() {
        Some(permit) => (f(), Some(permit)),
        None => {
            state.sink.add_labeled(
                names::SERVER_SHED_TOTAL,
                &[("route", route)],
                Unit::Count,
                1,
            );
            (
                Response::error(
                    503,
                    &format!("`{route}` at capacity: {} requests in flight", gate.cap),
                    &[],
                )
                .with_header("Retry-After", "1"),
                None,
            )
        }
    }
}

fn handle_delete(id: &str, state: &ServerState) -> Response {
    match state.registry.delete(id) {
        Ok(()) => Response::json(200, format!("{{\"deleted\":{}}}\n", quote(id))),
        Err(e) => registry_error_response(&e),
    }
}

fn handle_models(state: &ServerState) -> Response {
    let listing = match state.registry.list() {
        Ok(l) => l,
        Err(e) => return Response::error(500, &e.to_string(), &[]),
    };
    let mut body = String::from("{\"models\":[");
    for (i, m) in listing.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        // 64-bit checksums exceed JSON's exact-integer range; hex string.
        body.push_str(&format!(
            "{{\"id\":{},\"bytes\":{},\"checksum\":\"{:016x}\",\"cached\":{}",
            quote(&m.id),
            m.bytes,
            m.checksum,
            m.cached
        ));
        if let Some(err) = &m.error {
            body.push_str(&format!(",\"error\":{}", quote(err)));
        }
        body.push('}');
    }
    body.push_str("]}\n");
    Response::json(200, body)
}

/// Parses the request body as a JSON object, or explains why not.
fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "request body is not utf-8", &[]))?;
    match Json::parse(text) {
        Ok(doc @ Json::Obj(_)) => Ok(doc),
        Ok(_) => Err(Response::error(
            400,
            "request body must be a JSON object",
            &[],
        )),
        Err(e) => Err(Response::error(
            400,
            &format!("invalid JSON body: {e}"),
            &[],
        )),
    }
}

fn registry_error_response(e: &RegistryError) -> Response {
    let status = match e {
        RegistryError::InvalidModelId { .. } => 400,
        RegistryError::UnknownModel { .. } => 404,
        RegistryError::Corrupt { .. } | RegistryError::Io { .. } => 500,
    };
    Response::error(status, &e.to_string(), &[])
}

fn handle_sample(req: &Request, state: &ServerState) -> Response {
    let doc = match parse_body(req) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let Some(model_id) = doc.get("model").and_then(Json::as_str) else {
        return Response::error(400, "missing required string field `model`", &[]);
    };
    let Some(rows) = doc.get("rows").and_then(Json::as_u64) else {
        return Response::error(400, "missing required integer field `rows`", &[]);
    };
    let offset = match doc.get("offset") {
        None => 0,
        Some(v) => match v.as_u64() {
            Some(o) => o,
            None => return Response::error(400, "`offset` must be a non-negative integer", &[]),
        },
    };
    if rows as usize > state.max_rows {
        return Response::error(
            400,
            &format!(
                "`rows` {} exceeds the per-request cap {}",
                rows, state.max_rows
            ),
            &[],
        );
    }
    let profile = match doc.get("profile").map(|p| p.as_str()) {
        None => SamplingProfile::Reference,
        Some(Some("reference")) => SamplingProfile::Reference,
        Some(Some("fast")) => SamplingProfile::Fast,
        Some(other) => {
            return Response::error(
                400,
                &format!(
                    "`profile` must be \"reference\" or \"fast\", got {:?}",
                    other.unwrap_or("<non-string>")
                ),
                &[],
            )
        }
    };
    let format = match doc.get("format").map(|f| f.as_str()) {
        None | Some(Some("csv")) => "csv",
        Some(Some("json")) => "json",
        Some(other) => {
            return Response::error(
                400,
                &format!(
                    "`format` must be \"csv\" or \"json\", got {:?}",
                    other.unwrap_or("<non-string>")
                ),
                &[],
            )
        }
    };

    let model = match state.registry.get(model_id) {
        Ok(m) => m,
        Err(e) => return registry_error_response(&e),
    };
    let columns = match model.try_sample_range_profiled(
        profile,
        offset as usize,
        rows as usize,
        state.sample_workers,
    ) {
        Ok(c) => c,
        Err(e @ DpCopulaError::RowWindowOverflow { .. }) => {
            return Response::error(400, &e.to_string(), &[])
        }
        Err(e) => return Response::error(500, &e.to_string(), &[]),
    };

    let attributes: Vec<datagen::Attribute> = model
        .artifact()
        .schema
        .iter()
        .map(|a| datagen::Attribute::new(a.name.clone(), a.domain))
        .collect();
    if format == "csv" {
        // The exact bytes `datagen::io::write_csv` emits in-process —
        // the byte-identity contract the integration tests pin.
        let dataset = datagen::Dataset::new(attributes, columns);
        let mut bytes = Vec::new();
        if let Err(e) = datagen::io::write_csv(&dataset, &mut bytes) {
            return Response::error(500, &format!("encoding csv: {e}"), &[]);
        }
        Response::csv(bytes)
    } else {
        let mut body = String::from("{\"columns\":[");
        for (i, a) in attributes.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&quote(&a.name));
        }
        body.push_str("],\"rows\":[");
        for r in 0..rows as usize {
            if r > 0 {
                body.push(',');
            }
            body.push('[');
            for (j, col) in columns.iter().enumerate() {
                if j > 0 {
                    body.push(',');
                }
                body.push_str(&col[r].to_string());
            }
            body.push(']');
        }
        body.push_str("]}\n");
        Response::json(200, body)
    }
}

fn handle_fit(req: &Request, state: &ServerState) -> Response {
    // Two request shapes: the JSON envelope (CSV embedded as a string
    // field), and a raw CSV body — spooled to disk past the in-memory
    // cap, or sent directly with `Content-Type: text/csv` — with the
    // fit parameters in the query string.
    let raw_csv = req.spooled.is_some()
        || req.header("content-type").is_some_and(|v| {
            v.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .eq_ignore_ascii_case("text/csv")
        });
    if raw_csv {
        return handle_fit_csv(req, state);
    }
    let doc = match parse_body(req) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let Some(id) = doc.get("id").and_then(Json::as_str) else {
        return Response::error(400, "missing required string field `id`", &[]);
    };
    if !valid_model_id(id) {
        return Response::error(
            400,
            &format!("invalid model id `{id}`: expected [A-Za-z0-9_-]+"),
            &[],
        );
    }
    let Some(csv) = doc.get("csv").and_then(Json::as_str) else {
        return Response::error(400, "missing required string field `csv`", &[]);
    };
    let Some(eps_value) = doc.get("epsilon").and_then(Json::as_f64) else {
        return Response::error(400, "missing required number field `epsilon`", &[]);
    };
    let tenant = match doc.get("tenant") {
        None => DEFAULT_TENANT,
        Some(t) => match t.as_str() {
            Some(t) => t,
            None => return Response::error(400, "`tenant` must be a string", &[]),
        },
    };
    let seed = match doc.get("seed") {
        None => 0,
        Some(s) => match s.as_u64() {
            Some(s) => s,
            None => return Response::error(400, "`seed` must be a non-negative integer", &[]),
        },
    };
    let k_ratio = match doc.get("k") {
        None => None,
        Some(k) => match k.as_f64() {
            Some(k) if k.is_finite() && k > 0.0 => Some(k),
            _ => return Response::error(400, "`k` must be a positive number", &[]),
        },
    };
    let epsilon = match Epsilon::new(eps_value) {
        Ok(e) => e,
        Err(e) => return Response::error(400, &e.to_string(), &[]),
    };

    // Pure input validation first: parsing the CSV touches no ledger
    // and releases nothing, so a malformed body costs the tenant no ε.
    let dataset = match datagen::io::read_csv(csv.as_bytes()) {
        Ok(d) => d,
        Err(e) => return Response::error(400, &format!("invalid csv body: {e}"), &[]),
    };
    fit_dataset(state, id, tenant, epsilon, seed, k_ratio, dataset)
}

/// One `key=value` out of a query string. Fit parameters are plain
/// identifiers and numbers, so no percent-decoding is applied.
fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then_some(v)
    })
}

/// The raw-CSV fit: parameters from the query string, training data as
/// the body — in memory under the cap, spooled to disk above it.
fn handle_fit_csv(req: &Request, state: &ServerState) -> Response {
    let q = req.query.as_str();
    let Some(id) = query_param(q, "id") else {
        return Response::error(400, "missing required query parameter `id`", &[]);
    };
    if !valid_model_id(id) {
        return Response::error(
            400,
            &format!("invalid model id `{id}`: expected [A-Za-z0-9_-]+"),
            &[],
        );
    }
    let Some(eps_str) = query_param(q, "epsilon") else {
        return Response::error(400, "missing required query parameter `epsilon`", &[]);
    };
    let Ok(eps_value) = eps_str.parse::<f64>() else {
        return Response::error(400, "`epsilon` must be a number", &[]);
    };
    let tenant = query_param(q, "tenant").unwrap_or(DEFAULT_TENANT);
    let seed = match query_param(q, "seed") {
        None => 0,
        Some(s) => match s.parse::<u64>() {
            Ok(s) => s,
            Err(_) => return Response::error(400, "`seed` must be a non-negative integer", &[]),
        },
    };
    let k_ratio = match query_param(q, "k") {
        None => None,
        Some(k) => match k.parse::<f64>() {
            Ok(k) if k.is_finite() && k > 0.0 => Some(k),
            _ => return Response::error(400, "`k` must be a positive number", &[]),
        },
    };
    let epsilon = match Epsilon::new(eps_value) {
        Ok(e) => e,
        Err(e) => return Response::error(400, &e.to_string(), &[]),
    };

    let Some(spooled) = &req.spooled else {
        // Small enough for memory: parse eagerly, exactly like the JSON
        // envelope's embedded CSV.
        let dataset = match datagen::io::read_csv(&req.body[..]) {
            Ok(d) => d,
            Err(e) => return Response::error(400, &format!("invalid csv body: {e}"), &[]),
        };
        return fit_dataset(state, id, tenant, epsilon, seed, k_ratio, dataset);
    };

    // Spooled: stream the file once to validate it and count rows — a
    // malformed body must cost the tenant no ε, same as the eager path —
    // then rewind and fit out-of-core.
    let mut source = match datagen::CsvFileSource::open(spooled.path()) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &format!("invalid csv body: {e}"), &[]),
    };
    let mut rows = 0usize;
    loop {
        match source.next_block() {
            Ok(Some(block)) => rows += block.rows(),
            Ok(None) => break,
            Err(e) => return Response::error(400, &format!("invalid csv body: {e}"), &[]),
        }
    }
    if let Err(e) = source.rewind() {
        return Response::error(500, &format!("rewinding spooled body: {e}"), &[]);
    }

    if let Err(r) = admit_tenant(state, tenant, epsilon) {
        return r;
    }
    let mut config = DpCopulaConfig::kendall(epsilon);
    if let Some(k) = k_ratio {
        config = config.with_k_ratio(k);
    }
    let fitted = SynthesisRequest::from_source_config(source, config)
        .seed(seed)
        .metrics(state.sink.clone())
        .fit();
    let (model, _report) = match fitted {
        Ok(f) => f,
        Err(e) => return Response::error(400, &format!("fit failed: {e}"), &[]),
    };
    // The streaming fit names the schema from the source's CSV header;
    // no rename needed.
    let attributes = model.dims();
    respond_fitted(state, id, tenant, model, rows, attributes)
}

/// Debits `tenant` before fitting, or renders the refusal. The debit is
/// kept even if the fit fails — a pipeline that dies halfway may
/// already have released noisy margins.
fn admit_tenant(state: &ServerState, tenant: &str, epsilon: Epsilon) -> Result<(), Response> {
    state.gate.admit(tenant, epsilon).map_err(|e| match e {
        GateError::UnknownTenant { .. } => Response::error(403, &e.to_string(), &[]),
        GateError::Exhausted { remaining_neps, .. } => {
            state.sink.add_labeled(
                names::BUDGET_REJECTIONS_TOTAL,
                &[("tenant", tenant)],
                Unit::Count,
                1,
            );
            Response::error(
                429,
                &e.to_string(),
                &[format!("\"remaining_eps\":{}", remaining_neps as f64 / 1e9)],
            )
        }
    })
}

/// The eager fit path shared by the JSON envelope and small raw-CSV
/// bodies: admit, fit the resident columns, name the schema, respond.
fn fit_dataset(
    state: &ServerState,
    id: &str,
    tenant: &str,
    epsilon: Epsilon,
    seed: u64,
    k_ratio: Option<f64>,
    dataset: datagen::Dataset,
) -> Response {
    if let Err(r) = admit_tenant(state, tenant, epsilon) {
        return r;
    }
    let domains = dataset.domains();
    let mut config = DpCopulaConfig::kendall(epsilon);
    if let Some(k) = k_ratio {
        config = config.with_k_ratio(k);
    }
    let fitted = SynthesisRequest::from_config(dataset.columns(), &domains, config)
        .seed(seed)
        .metrics(state.sink.clone())
        .fit();
    let (mut model, _report) = match fitted {
        Ok(f) => f,
        Err(e) => return Response::error(400, &format!("fit failed: {e}"), &[]),
    };
    let attr_names: Vec<&str> = dataset
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    model.set_attribute_names(&attr_names);
    let attributes = attr_names.len();
    respond_fitted(state, id, tenant, model, dataset.len(), attributes)
}

/// Persists the fitted model, registers it, and renders the fit
/// response.
fn respond_fitted(
    state: &ServerState,
    id: &str,
    tenant: &str,
    model: dpcopula::FittedModel,
    rows: usize,
    attributes: usize,
) -> Response {
    let path = state.registry.path_for(id);
    if let Err(e) = model.save(&path) {
        return Response::error(500, &format!("writing {}: {e}", path.display()), &[]);
    }
    let checksum = model.artifact().checksum();
    let spent = model.artifact().ledger.spent();
    state.registry.insert(id, Arc::new(model));

    let remaining = state
        .gate
        .remaining_neps(tenant)
        .map_or(0.0, |n| n as f64 / 1e9);
    Response::json(
        200,
        format!(
            "{{\"id\":{},\"checksum\":\"{checksum:016x}\",\"epsilon_spent\":{},\"remaining_eps\":{},\"rows\":{},\"attributes\":{}}}\n",
            quote(id),
            spent,
            remaining,
            rows,
            attributes,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_validates_config_with_named_errors() {
        let bad_addr = ServeConfig {
            addr: "not-an-address".into(),
            model_dir: std::env::temp_dir(),
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::bind(bad_addr),
            Err(ServeError::BadAddr { .. })
        ));

        let bad_dir = ServeConfig {
            addr: "127.0.0.1:0".into(),
            model_dir: PathBuf::from("/no/such/model/dir"),
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::bind(bad_dir),
            Err(ServeError::ModelDirMissing { .. })
        ));

        let bad_eps = ServeConfig {
            addr: "127.0.0.1:0".into(),
            model_dir: std::env::temp_dir(),
            default_epsilon: -1.0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::bind(bad_eps),
            Err(ServeError::BadEpsilon(_))
        ));
    }

    #[test]
    fn bind_on_port_zero_reports_the_real_port() {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            model_dir: std::env::temp_dir(),
            ..ServeConfig::default()
        })
        .unwrap();
        assert_ne!(server.local_addr().unwrap().port(), 0);
    }
}
