//! `dpcopula-serve` — the synthesis-as-a-service daemon.
//!
//! ```text
//! dpcopula-serve --model-dir models/ [--addr 127.0.0.1:8787]
//!                [--tenants budgets.conf] [--default-epsilon 10]
//!                [--cache-cap 8] [--max-body-bytes 8388608]
//!                [--pool 4] [--workers 1] [--max-rows 10000000]
//!                [--max-connections 256] [--max-inflight 64]
//!                [--read-timeout-ms 5000] [--write-timeout-ms 10000]
//!                [--head-timeout-ms 10000] [--body-timeout-ms 60000]
//! ```
//!
//! Prints one `listening on http://ADDR` line once the socket is bound
//! (what `scripts/ci.sh` and the load bench wait for), then serves
//! until killed. All startup failures exit 2 with a named error on
//! stderr; the daemon never panics on bad input.

use dpcopula_serve::{ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    match parse_flags(&args).and_then(serve) {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    println!(
        "usage: dpcopula-serve --model-dir DIR [--addr HOST:PORT] [--tenants FILE]\n\
         \x20                     [--default-epsilon EPS] [--cache-cap N] [--max-body-bytes N]\n\
         \x20                     [--pool N] [--workers N] [--max-rows N]\n\
         \x20                     [--max-connections N] [--max-inflight N]\n\
         \x20                     [--read-timeout-ms N] [--write-timeout-ms N]\n\
         \x20                     [--head-timeout-ms N] [--body-timeout-ms N]"
    );
}

fn parse_flags(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut model_dir = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?.clone(),
            "--model-dir" => model_dir = Some(value("--model-dir")?.clone()),
            "--tenants" => config.tenant_file = Some(value("--tenants")?.into()),
            "--default-epsilon" => {
                let raw = value("--default-epsilon")?;
                config.default_epsilon = raw
                    .parse()
                    .map_err(|_| format!("unparseable --default-epsilon `{raw}`"))?;
            }
            "--cache-cap" => {
                config.cache_capacity = parse_usize(value("--cache-cap")?, "--cache-cap")?
            }
            "--max-body-bytes" => {
                config.max_body_bytes = parse_usize(value("--max-body-bytes")?, "--max-body-bytes")?
            }
            "--pool" => config.pool_workers = parse_usize(value("--pool")?, "--pool")?,
            "--workers" => config.sample_workers = parse_usize(value("--workers")?, "--workers")?,
            "--max-rows" => config.max_rows = parse_usize(value("--max-rows")?, "--max-rows")?,
            "--max-connections" => {
                config.max_connections =
                    parse_usize(value("--max-connections")?, "--max-connections")?
            }
            "--max-inflight" => {
                config.max_inflight = parse_usize(value("--max-inflight")?, "--max-inflight")?
            }
            "--read-timeout-ms" => {
                config.read_timeout = parse_ms(value("--read-timeout-ms")?, "--read-timeout-ms")?
            }
            "--write-timeout-ms" => {
                config.write_timeout = parse_ms(value("--write-timeout-ms")?, "--write-timeout-ms")?
            }
            "--head-timeout-ms" => {
                config.head_timeout = parse_ms(value("--head-timeout-ms")?, "--head-timeout-ms")?
            }
            "--body-timeout-ms" => {
                config.body_timeout = parse_ms(value("--body-timeout-ms")?, "--body-timeout-ms")?
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    config.model_dir = model_dir.ok_or("missing required flag --model-dir")?.into();
    Ok(config)
}

fn parse_usize(raw: &str, flag: &str) -> Result<usize, String> {
    raw.parse()
        .map_err(|_| format!("unparseable {flag} `{raw}`"))
}

fn parse_ms(raw: &str, flag: &str) -> Result<std::time::Duration, String> {
    let ms: u64 = raw
        .parse()
        .map_err(|_| format!("unparseable {flag} `{raw}`"))?;
    if ms == 0 {
        return Err(format!("{flag} must be at least 1 millisecond"));
    }
    Ok(std::time::Duration::from_millis(ms))
}

fn serve(config: ServeConfig) -> Result<(), String> {
    let server = Server::bind(config).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on http://{addr}");
    server.run().map_err(|e| e.to_string())
}
