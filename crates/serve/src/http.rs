//! Hand-rolled HTTP/1.1 framing over [`std::net::TcpStream`] — just
//! enough of RFC 9112 for a JSON API daemon: request-line + header
//! parsing, `Content-Length` bodies with hard size limits, `Expect:
//! 100-continue`, and keep-alive. Anything outside that subset (chunked
//! transfer encoding, upgrades, multiple `Content-Length`s) is refused
//! with a named error rather than guessed at.
//!
//! Limits are enforced *before* allocation: a request declaring a body
//! beyond the configured cap is rejected with
//! [`HttpError::PayloadTooLarge`] without reading it, and header blocks
//! are capped at [`MAX_HEAD_BYTES`].
//!
//! Time limits defend the workers: [`ReadLimits`] carries a wall-clock
//! deadline for the head and one for the body, so a slowloris client
//! trickling header bytes — or a body that stops arriving — is cut off
//! with a named `408`-mapped error ([`HttpError::HeadTimeout`] /
//! [`HttpError::BodyTimeout`]) instead of pinning a pool worker. The
//! deadlines compose with the socket read timeout: a fully silent peer
//! is noticed by the socket timeout, a trickling one by the deadline.

use obskit::Stopwatch;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum bytes of request line + headers accepted per request.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Size and time limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Hard cap on the declared body size.
    pub max_body: usize,
    /// Wall-clock budget for the head (request line + headers),
    /// measured from the first head byte. `None` disables the check.
    pub head_deadline: Option<Duration>,
    /// Wall-clock budget for the body, measured from the end of the
    /// head. `None` disables the check.
    pub body_deadline: Option<Duration>,
}

impl ReadLimits {
    /// Limits with only the body-size cap (no wall-clock deadlines) —
    /// what in-memory parsing tests use.
    pub fn size_only(max_body: usize) -> Self {
        Self {
            max_body,
            head_deadline: None,
            body_deadline: None,
        }
    }
}

/// Spooling policy for one route: bodies too large for the in-memory
/// cap are streamed to a temp file instead of refused, up to a larger
/// cap. Used by `POST /v1/fit` for out-of-core CSV ingestion.
#[derive(Debug, Clone)]
pub struct SpoolPolicy {
    /// The only request path eligible for spooling.
    pub path: String,
    /// Hard cap on a spooled body (bytes on disk, not in memory).
    pub max_body: usize,
    /// Directory the spool files are created in.
    pub dir: PathBuf,
}

/// A request body spooled to disk. The file is deleted when the last
/// clone of the owning [`Request`] drops.
#[derive(Debug)]
pub struct SpooledBody {
    path: PathBuf,
}

/// Distinguishes concurrent spool files within one process.
static SPOOL_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpooledBody {
    fn create(dir: &Path) -> std::io::Result<(std::fs::File, Self)> {
        let seq = SPOOL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("dpcopula-spool-{}-{seq}.csv", std::process::id()));
        let file = std::fs::File::create(&path)?;
        Ok((file, Self { path }))
    }

    /// Where the body bytes landed.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpooledBody {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// The raw query string (after `?`, empty when none was sent).
    pub query: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent, or
    /// when the body was spooled to disk).
    pub body: Vec<u8>,
    /// A body too large for memory, spooled to disk under a
    /// [`SpoolPolicy`]. Mutually exclusive with a non-empty `body`.
    pub spooled: Option<Arc<SpooledBody>>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open after the
    /// response (HTTP/1.1 default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Everything that can go wrong reading one request off a connection.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending any request byte —
    /// the clean end of a keep-alive session, not a protocol error.
    Closed,
    /// Socket-level failure (includes read timeouts on idle keep-alive
    /// connections).
    Io(std::io::Error),
    /// The request violates the supported HTTP subset; the reason names
    /// the violation.
    BadRequest {
        /// What was malformed.
        reason: String,
    },
    /// The declared body exceeds the configured cap. Detected before
    /// the body is read, so oversized uploads cost no memory.
    PayloadTooLarge {
        /// `Content-Length` the client declared.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The connection ended mid-body: fewer bytes arrived than
    /// `Content-Length` declared.
    TruncatedBody {
        /// Bytes the client declared.
        declared: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// The request head (line + headers) did not complete within the
    /// head deadline — the slowloris signature. → `408`.
    HeadTimeout {
        /// Head bytes that had arrived when the deadline fired.
        got: usize,
    },
    /// The declared body stopped arriving (socket read timed out or
    /// the body deadline fired before `Content-Length` bytes). → `408`.
    BodyTimeout {
        /// Bytes the client declared.
        declared: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            HttpError::PayloadTooLarge { declared, limit } => write!(
                f,
                "request body of {declared} bytes exceeds the {limit}-byte limit"
            ),
            HttpError::TruncatedBody { declared, got } => write!(
                f,
                "request body truncated: Content-Length {declared}, got {got} bytes"
            ),
            HttpError::HeadTimeout { got } => write!(
                f,
                "request head timed out after {got} bytes (slow or stalled client)"
            ),
            HttpError::BodyTimeout { declared, got } => write!(
                f,
                "request body timed out: Content-Length {declared}, got {got} bytes"
            ),
        }
    }
}

impl std::error::Error for HttpError {}

/// Whether an I/O error is a socket read timeout (`set_read_timeout`
/// surfaces as `WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from `stream` under `limits`. `reply` is the write
/// half, used only to acknowledge `Expect: 100-continue` before the
/// body is read.
///
/// The head deadline is measured from the start of the read, but only
/// enforced once head bytes have arrived — an idle keep-alive
/// connection that sends nothing is closed by the socket read timeout
/// (surfaced as [`HttpError::Closed`]), not blamed with a timeout.
/// Configure the socket read timeout at or below the head deadline so
/// idle and stalled connections are told apart correctly.
pub fn read_request<R: BufRead, W: Write>(
    stream: &mut R,
    reply: &mut W,
    limits: ReadLimits,
) -> Result<Request, HttpError> {
    read_request_spooled(stream, reply, limits, None)
}

/// [`read_request`] with an optional [`SpoolPolicy`]: a body that
/// exceeds `limits.max_body` on the policy's path is streamed to a
/// temp file (never held in memory) up to the policy's own cap, and
/// surfaced via [`Request::spooled`]. Everything else is unchanged —
/// in particular, oversized bodies on other paths (or past the spool
/// cap) are still refused with [`HttpError::PayloadTooLarge`] before
/// any byte of the body is read.
pub fn read_request_spooled<R: BufRead, W: Write>(
    stream: &mut R,
    reply: &mut W,
    limits: ReadLimits,
    spool: Option<&SpoolPolicy>,
) -> Result<Request, HttpError> {
    let max_body = limits.max_body;
    let watch = Stopwatch::start();
    let request_line = read_head_line(stream, 0, &watch, limits.head_deadline, true)?;
    if request_line.is_empty() {
        return Err(HttpError::Closed);
    }
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest {
                reason: format!("malformed request line `{request_line}`"),
            })
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest {
            reason: format!("unsupported protocol version `{version}`"),
        });
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_head_line(stream, head_bytes, &watch, limits.head_deadline, false)?;
        head_bytes += line.len() + 2;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest {
                reason: format!("header line without `:` — `{line}`"),
            });
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest {
            reason: "chunked transfer encoding is not supported".into(),
        });
    }
    let lengths: Vec<&str> = headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str())
        .collect();
    let declared = match lengths.as_slice() {
        [] => 0usize,
        [one] => one.parse().map_err(|_| HttpError::BadRequest {
            reason: format!("unparseable Content-Length `{one}`"),
        })?,
        _ => {
            return Err(HttpError::BadRequest {
                reason: "multiple Content-Length headers".into(),
            })
        }
    };
    // A body past the in-memory cap either spools (eligible path, under
    // the spool cap) or is refused before any byte of it is read.
    let spool_to = if declared <= max_body {
        None
    } else {
        match spool {
            Some(p) if path == p.path && declared <= p.max_body => Some(p),
            _ => {
                let limit = match spool {
                    Some(p) if path == p.path => p.max_body.max(max_body),
                    _ => max_body,
                };
                return Err(HttpError::PayloadTooLarge { declared, limit });
            }
        }
    };

    let request = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
        spooled: None,
    };
    if declared == 0 {
        return Ok(request);
    }
    if request
        .header("expect")
        .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    {
        reply
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .and_then(|()| reply.flush())
            .map_err(HttpError::Io)?;
    }
    let body_watch = Stopwatch::start();
    match spool_to {
        None => {
            let mut body = vec![0u8; declared];
            let mut got = 0;
            while got < declared {
                match stream.read(&mut body[got..]) {
                    Ok(0) => return Err(HttpError::TruncatedBody { declared, got }),
                    Ok(n) => {
                        got += n;
                        // A body that keeps trickling still has to finish
                        // within the body deadline.
                        if let Some(d) = limits.body_deadline {
                            if got < declared && body_watch.elapsed() >= d {
                                return Err(HttpError::BodyTimeout { declared, got });
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    // A read timeout mid-body: the declared bytes stopped
                    // arriving — the peer is stalled, not idle.
                    Err(e) if is_timeout(&e) => {
                        return Err(HttpError::BodyTimeout { declared, got })
                    }
                    Err(e) => return Err(HttpError::Io(e)),
                }
            }
            Ok(Request { body, ..request })
        }
        Some(policy) => {
            // Stream to disk chunk by chunk: peak memory is one scratch
            // buffer regardless of the declared size. The SpooledBody
            // guard deletes the file on every exit path.
            let (mut file, spooled) = SpooledBody::create(&policy.dir).map_err(HttpError::Io)?;
            let mut scratch = [0u8; 64 * 1024];
            let mut got = 0;
            while got < declared {
                let want = scratch.len().min(declared - got);
                match stream.read(&mut scratch[..want]) {
                    Ok(0) => return Err(HttpError::TruncatedBody { declared, got }),
                    Ok(n) => {
                        file.write_all(&scratch[..n]).map_err(HttpError::Io)?;
                        got += n;
                        if let Some(d) = limits.body_deadline {
                            if got < declared && body_watch.elapsed() >= d {
                                return Err(HttpError::BodyTimeout { declared, got });
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) if is_timeout(&e) => {
                        return Err(HttpError::BodyTimeout { declared, got })
                    }
                    Err(e) => return Err(HttpError::Io(e)),
                }
            }
            file.flush().map_err(HttpError::Io)?;
            drop(file);
            Ok(Request {
                spooled: Some(Arc::new(spooled)),
                ..request
            })
        }
    }
}

/// Reads one CRLF-terminated head line (request line or header),
/// rejecting heads that exceed [`MAX_HEAD_BYTES`] in total or stall
/// past `deadline` on `watch`. `first` marks the request line: a
/// socket timeout before any byte of it is an idle keep-alive
/// connection ([`HttpError::Closed`]), not a stalled head.
fn read_head_line<R: BufRead>(
    stream: &mut R,
    already: usize,
    watch: &Stopwatch,
    deadline: Option<Duration>,
    first: bool,
) -> Result<String, HttpError> {
    use std::io::Read as _;
    let budget = MAX_HEAD_BYTES.saturating_sub(already);
    let mut line = Vec::new();
    // Byte-at-a-time via BufRead is buffered; heads are tiny.
    for byte in stream.bytes() {
        let b = match byte {
            Ok(b) => b,
            Err(e) if is_timeout(&e) => {
                if first && already == 0 && line.is_empty() {
                    // Nothing of the request arrived: idle, not slow.
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::HeadTimeout {
                    got: already + line.len(),
                });
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if b == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| HttpError::BadRequest {
                reason: "non-utf8 bytes in request head".into(),
            });
        }
        line.push(b);
        if line.len() > budget {
            return Err(HttpError::BadRequest {
                reason: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            });
        }
        // Enforced only once bytes have arrived: the deadline cuts off
        // trickling (slowloris) heads, never a quiet keep-alive wait.
        if let Some(d) = deadline {
            if watch.elapsed() >= d {
                return Err(HttpError::HeadTimeout {
                    got: already + line.len(),
                });
            }
        }
    }
    if line.is_empty() {
        // EOF between requests: clean close, signalled as empty line.
        Ok(String::new())
    } else {
        Err(HttpError::BadRequest {
            reason: "connection closed mid-line".into(),
        })
    }
}

/// One response, framed and written by [`Response::write_to`].
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (name, value), written verbatim after
    /// the standard set — `Retry-After` on shed responses.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A CSV response (the exact bytes `datagen::io::write_csv` emits).
    pub fn csv(body: Vec<u8>) -> Self {
        Self {
            status: 200,
            content_type: "text/csv",
            headers: Vec::new(),
            body,
        }
    }

    /// Adds an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// A JSON error body `{"error": reason}` with extra fields appended
    /// verbatim (each already rendered as `"key":value`).
    pub fn error(status: u16, reason: &str, extra: &[String]) -> Self {
        let mut body = String::from("{\"error\":");
        body.push_str(&crate::json::quote(reason));
        for field in extra {
            body.push(',');
            body.push_str(field);
        }
        body.push_str("}\n");
        Self::json(status, body)
    }

    /// Writes the framed response. `keep_alive` picks the `Connection`
    /// header; the caller closes the stream when it is `false`.
    pub fn write_to<W: Write>(&self, stream: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The reason phrase for every status the daemon emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let mut sink = Vec::new();
        read_request(
            &mut BufReader::new(raw),
            &mut sink,
            ReadLimits::size_only(1024),
        )
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/sample?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 11\r\n\r\nhello world";
        let r = parse(raw).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/sample");
        assert_eq!(r.header("host"), Some("localhost"));
        assert_eq!(r.header("HOST"), Some("localhost"));
        assert_eq!(r.body, b"hello world");
        assert!(r.keep_alive());
    }

    #[test]
    fn connection_close_is_honoured() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!parse(raw).unwrap().keep_alive());
    }

    #[test]
    fn empty_stream_reports_clean_close() {
        assert!(matches!(parse(b"").unwrap_err(), HttpError::Closed));
    }

    #[test]
    fn oversized_declared_body_is_rejected_without_reading() {
        let raw = b"POST /v1/fit HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
        match parse(raw).unwrap_err() {
            HttpError::PayloadTooLarge { declared, limit } => {
                assert_eq!(declared, 4096);
                assert_eq!(limit, 1024);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_named() {
        let raw = b"POST /v1/fit HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-this";
        match parse(raw).unwrap_err() {
            HttpError::TruncatedBody { declared, got } => {
                assert_eq!(declared, 100);
                assert_eq!(got, 9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_heads_are_bad_requests() {
        for raw in [
            b"GARBAGE\r\n\r\n".to_vec(),
            b"GET /x HTTP/2\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\nContent-Length: many\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nab".to_vec(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
        ] {
            assert!(
                matches!(parse(&raw), Err(HttpError::BadRequest { .. })),
                "accepted {:?}",
                String::from_utf8_lossy(&raw)
            );
        }
    }

    #[test]
    fn expect_100_continue_is_acknowledged() {
        let raw = b"POST /v1/fit HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\nok";
        let mut ack = Vec::new();
        let r = read_request(
            &mut BufReader::new(&raw[..]),
            &mut ack,
            ReadLimits::size_only(1024),
        )
        .unwrap();
        assert_eq!(r.body, b"ok");
        assert_eq!(ack, b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    #[test]
    fn extra_headers_are_emitted_before_the_blank_line() {
        let mut out = Vec::new();
        Response::error(503, "shed", &[])
            .with_header("Retry-After", "1")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        let head = text.split("\r\n\r\n").next().unwrap();
        assert!(head.contains("\r\nRetry-After: 1"), "{text}");
    }

    #[test]
    fn responses_are_framed_with_length_and_connection() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");

        let mut out = Vec::new();
        Response::error(429, "budget exhausted", &["\"remaining_eps\":0.25".into()])
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(
            text.ends_with("{\"error\":\"budget exhausted\",\"remaining_eps\":0.25}\n"),
            "{text}"
        );
    }
}
