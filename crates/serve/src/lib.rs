//! # dpcopula-serve — synthesis as a service
//!
//! The serving layer over the DPCopula fit-once/sample-many split: a
//! dependency-free HTTP/1.1 daemon that keeps `.dpcm` model artifacts
//! hot in an LRU registry, meters fit requests against per-tenant
//! privacy budgets, and streams deterministic synthetic row windows.
//!
//! The crate is layered bottom-up:
//!
//! * [`json`] — a strict, bounded-depth JSON parser and string escaper
//!   (the workspace takes no dependencies, so the wire format is
//!   handled in-repo like modelstore's codec);
//! * [`http`] — request/response framing over `std::net` with hard
//!   head/body limits and `Expect: 100-continue` support;
//! * [`registry`] — checksum-keyed LRU cache of decoded
//!   [`FittedModel`]s over a watched artifact directory;
//! * [`budget`] — per-tenant ε admission control on dpmech's integer
//!   nano-ε ledger (fits are metered; sampling is ε-free
//!   post-processing and never gated);
//! * [`server`] — the routing daemon tying it together, with every
//!   request counted and timed through obskit.
//!
//! Wire protocol and concurrency model are documented in DESIGN.md §13.
//!
//! [`FittedModel`]: dpcopula::FittedModel

#![warn(missing_docs)]

pub mod budget;
pub mod http;
pub mod json;
pub mod registry;
pub mod server;

pub use budget::{BudgetGate, GateError, TenantConfigError, DEFAULT_TENANT};
pub use registry::{ModelInfo, ModelRegistry, RegistryError};
pub use server::{ServeConfig, ServeError, Server, ShutdownHandle};
