//! Per-tenant ε admission control for `POST /v1/fit`.
//!
//! Every fit releases differentially private statistics and therefore
//! consumes privacy budget; the gate holds one integer nano-ε ledger
//! ([`dpmech::ShardLedger`]) per tenant and refuses fits that would
//! overdraw the tenant's configured total. Sampling is never routed
//! through the gate: rows drawn from an already-fitted model are
//! post-processing of the released statistics and cost no ε (DP's
//! closure under post-processing), so `/v1/sample` stays unmetered by
//! construction.
//!
//! Admission is conservative: the debit happens *before* the fit runs,
//! and a fit that subsequently fails does **not** refund it. Refunding
//! would make the ledger depend on failure timing — a fit that crashed
//! after releasing noisy margins has already spent real budget — so the
//! gate always charges the full requested ε at admission.

use dpmech::{nano_eps, Epsilon};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Tenant name used when a request carries no `tenant` field and when
/// the daemon runs without a tenant file.
pub const DEFAULT_TENANT: &str = "default";

/// A parse failure in the tenant budget file.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfigError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for TenantConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant budget file line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TenantConfigError {}

/// An admission refusal.
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// The request named a tenant the budget file does not define.
    UnknownTenant {
        /// The unrecognised tenant name.
        tenant: String,
    },
    /// The debit would overdraw the tenant's budget.
    Exhausted {
        /// Tenant whose budget ran out.
        tenant: String,
        /// Nano-ε the request asked for.
        requested_neps: u64,
        /// Nano-ε the tenant still has.
        remaining_neps: u64,
    },
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::UnknownTenant { tenant } => write!(f, "unknown tenant `{tenant}`"),
            GateError::Exhausted {
                tenant,
                requested_neps,
                remaining_neps,
            } => write!(
                f,
                "tenant `{tenant}` budget exhausted: requested {requested_neps} nano-eps, \
                 {remaining_neps} nano-eps remaining"
            ),
        }
    }
}

impl std::error::Error for GateError {}

#[derive(Debug)]
struct TenantLedger {
    total_neps: u64,
    ledger: ShardLedgerCell,
}

type ShardLedgerCell = Mutex<dpmech::ShardLedger>;

/// The admission gate: per-tenant totals plus spend ledgers.
#[derive(Debug)]
pub struct BudgetGate {
    tenants: BTreeMap<String, TenantLedger>,
}

impl BudgetGate {
    /// A gate with a single `default` tenant holding `total` ε.
    pub fn single_tenant(total: Epsilon) -> Self {
        let mut tenants = BTreeMap::new();
        tenants.insert(
            DEFAULT_TENANT.to_string(),
            TenantLedger {
                total_neps: nano_eps(total),
                ledger: Mutex::new(dpmech::ShardLedger::new()),
            },
        );
        Self { tenants }
    }

    /// Parses an ini-like tenant budget file: one `name = epsilon` pair
    /// per line, `#` comments and blank lines ignored. Tenant names are
    /// restricted to `[A-Za-z0-9_-]` so they can appear verbatim as
    /// metric label values.
    pub fn from_config(text: &str) -> Result<Self, TenantConfigError> {
        let mut tenants = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let stripped = raw.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                continue;
            }
            let Some((name, value)) = stripped.split_once('=') else {
                return Err(TenantConfigError {
                    line,
                    reason: format!("expected `tenant = epsilon`, got `{stripped}`"),
                });
            };
            let name = name.trim();
            if name.is_empty()
                || !name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
            {
                return Err(TenantConfigError {
                    line,
                    reason: format!("tenant name `{name}` must be non-empty [A-Za-z0-9_-]"),
                });
            }
            let eps: f64 = value.trim().parse().map_err(|_| TenantConfigError {
                line,
                reason: format!("unparseable epsilon `{}`", value.trim()),
            })?;
            let eps = Epsilon::new(eps).map_err(|e| TenantConfigError {
                line,
                reason: e.to_string(),
            })?;
            if tenants
                .insert(
                    name.to_string(),
                    TenantLedger {
                        total_neps: nano_eps(eps),
                        ledger: Mutex::new(dpmech::ShardLedger::new()),
                    },
                )
                .is_some()
            {
                return Err(TenantConfigError {
                    line,
                    reason: format!("tenant `{name}` defined twice"),
                });
            }
        }
        if tenants.is_empty() {
            return Err(TenantConfigError {
                line: 0,
                reason: "tenant budget file defines no tenants".into(),
            });
        }
        Ok(Self { tenants })
    }

    /// Debits `eps` from `tenant`'s ledger, refusing (without debiting)
    /// when the tenant is unknown or the debit would overdraw the total.
    pub fn admit(&self, tenant: &str, eps: Epsilon) -> Result<(), GateError> {
        let entry = self
            .tenants
            .get(tenant)
            .ok_or_else(|| GateError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        let requested = nano_eps(eps);
        let mut ledger = entry.ledger.lock().expect("tenant ledger poisoned");
        let remaining = entry.total_neps.saturating_sub(ledger.total_neps());
        if requested > remaining {
            return Err(GateError::Exhausted {
                tenant: tenant.to_string(),
                requested_neps: requested,
                remaining_neps: remaining,
            });
        }
        ledger.spend_neps("fit", requested);
        Ok(())
    }

    /// Nano-ε `tenant` has left, or `None` for unknown tenants.
    pub fn remaining_neps(&self, tenant: &str) -> Option<u64> {
        let entry = self.tenants.get(tenant)?;
        let ledger = entry.ledger.lock().expect("tenant ledger poisoned");
        Some(entry.total_neps.saturating_sub(ledger.total_neps()))
    }

    /// Tenant names in sorted order.
    pub fn tenants(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn parses_ini_budget_file() {
        let gate =
            BudgetGate::from_config("# team budgets\nalpha = 1.0\n\nbeta=0.5 # trailing comment\n")
                .unwrap();
        assert_eq!(gate.tenants(), ["alpha", "beta"]);
        assert_eq!(gate.remaining_neps("alpha"), Some(1_000_000_000));
        assert_eq!(gate.remaining_neps("beta"), Some(500_000_000));
        assert_eq!(gate.remaining_neps("gamma"), None);
    }

    #[test]
    fn config_errors_carry_line_numbers() {
        for (text, line, needle) in [
            ("alpha 1.0\n", 1, "expected"),
            ("alpha = much\n", 1, "unparseable"),
            ("\na!pha = 1.0\n", 2, "must be non-empty"),
            ("alpha = -2\n", 1, "invalid epsilon"),
            ("alpha = 1\nalpha = 2\n", 2, "defined twice"),
            ("# only comments\n", 0, "no tenants"),
        ] {
            let err = BudgetGate::from_config(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}");
            assert!(err.reason.contains(needle), "{text:?} -> {}", err.reason);
        }
    }

    #[test]
    fn admission_debits_until_exhausted_then_429s() {
        let gate = BudgetGate::from_config("alpha = 1.0\n").unwrap();
        gate.admit("alpha", eps(0.4)).unwrap();
        gate.admit("alpha", eps(0.6)).unwrap();
        match gate.admit("alpha", eps(0.1)).unwrap_err() {
            GateError::Exhausted {
                tenant,
                requested_neps,
                remaining_neps,
            } => {
                assert_eq!(tenant, "alpha");
                assert_eq!(requested_neps, 100_000_000);
                assert_eq!(remaining_neps, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A refused admission debits nothing.
        assert_eq!(gate.remaining_neps("alpha"), Some(0));
    }

    #[test]
    fn unknown_tenants_are_refused_by_name() {
        let gate = BudgetGate::single_tenant(eps(1.0));
        gate.admit(DEFAULT_TENANT, eps(0.5)).unwrap();
        assert!(matches!(
            gate.admit("mallory", eps(0.1)),
            Err(GateError::UnknownTenant { tenant }) if tenant == "mallory"
        ));
    }
}
