//! In-repo test substrate for the DPCopula workspace, replacing the
//! external `proptest` and `criterion` dependencies so the tier-1 verify
//! (`cargo build --release && cargo test -q`) runs with zero registry
//! access.
//!
//! * [`prop`] — seeded property-based testing: generator combinators,
//!   halving-based shrinking, and a failure report that prints the exact
//!   seed reproducing the counterexample;
//! * [`bench`] — a micro-benchmark harness with warmup, N timed
//!   iterations and a min/median/p95 report, API-shaped like Criterion
//!   so the existing `benches/*.rs` files ported mechanically.
//!
//! Both are driven by [`rngkit`], so every randomized test in the
//! workspace inherits the same reproducibility discipline as the DP
//! mechanisms under test.

#![warn(missing_docs)]

pub mod bench;
pub mod prop;

/// Declares property tests. Each entry becomes a `#[test]` that draws
/// `TESTKIT_CASES` random inputs (default 64), checks the body on each,
/// and shrinks + reports the reproducing seed on failure.
///
/// ```
/// testkit::property_tests! {
///     fn reverse_is_involutive(v in testkit::prop::vec(0u32..100, 0..20)) {
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         testkit::prop_assert_eq!(v, w);
///     }
/// }
/// ```
#[macro_export]
macro_rules! property_tests {
    ($(
        $(#[doc = $doc:expr])*
        fn $name:ident($($arg:pat in $gen:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let cfg = $crate::prop::Config::from_env();
            let gen = $crate::prop::IntoGen::into_gen(($($gen,)+));
            $crate::prop::run(
                concat!(module_path!(), "::", stringify!($name)),
                &cfg,
                gen,
                |__input| {
                    #[allow(unused_variables)]
                    let ($($arg,)+) = __input.clone();
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Property-scoped assertion: fails the current case (triggering
/// shrinking) instead of aborting the whole test binary.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Property-scoped equality assertion; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
}

/// Declares the benchmark registration function, Criterion-style:
/// `criterion_group!(benches, bench_a, bench_b)` produces a function
/// `benches()` that runs every target against a fresh
/// [`bench::Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::bench::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
