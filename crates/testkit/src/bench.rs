//! Minimal micro-benchmark harness — the in-repo replacement for the
//! `criterion` dependency.
//!
//! Each benchmark routine is warmed up, then timed for N samples (a
//! sample is one routine call, or an adaptively sized batch when a call
//! is fast enough for timer noise to matter); the report prints min,
//! median, p95, max and, when a [`Throughput`] is set, elements per
//! second from the median.
//!
//! The API mirrors the subset of Criterion the `crates/bench/benches`
//! files use — `Criterion`, `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! plus the [`criterion_group!`](crate::criterion_group) and
//! [`criterion_main!`](crate::criterion_main) macros — so porting a
//! bench file is an import swap.
//!
//! Environment knobs: `TESTKIT_BENCH_SAMPLES` overrides every group's
//! sample count (set it to 1 for a smoke run).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark context; owns default settings.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(id.to_string(), f);
        g.finish();
    }
}

/// A named parameterised benchmark identifier, `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Work-per-iteration declaration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per call.
    Elements(u64),
    /// The routine processes this many bytes per call.
    Bytes(u64),
}

/// A group of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the work one routine call performs, enabling a rate in
    /// the report.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let samples = std::env::var("TESTKIT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.sample_size);
        let mut bencher = Bencher {
            samples,
            per_iter: Vec::new(),
        };
        f(&mut bencher);
        report(
            &self.name,
            &id.to_string(),
            &bencher.per_iter,
            self.throughput,
        );
    }

    /// Benchmarks `f` under `id`, passing `input` through — Criterion's
    /// parameterised-benchmark shape.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (reports are printed eagerly; this is for API
    /// compatibility and symmetry).
    pub fn finish(self) {}
}

/// Passed to each benchmark routine; [`iter`](Self::iter) runs and times
/// the measurement loop.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: warms up, picks a batch size so one sample takes
    /// ≥ ~1 ms (shielding fast routines from timer granularity), then
    /// records per-iteration durations for the configured sample count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup: at least one call, at most 5 calls or 200 ms.
        let warmup_start = Instant::now();
        let mut one_call = Duration::ZERO;
        for i in 0..5 {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            one_call = t0.elapsed();
            if i > 0 && warmup_start.elapsed() > Duration::from_millis(200) {
                break;
            }
        }

        let batch = if one_call < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / one_call.as_nanos().max(1)).max(1) as u32
        } else {
            1
        };

        self.per_iter.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.per_iter.push(t0.elapsed() / batch);
        }
    }
}

/// Prints one benchmark's summary line.
fn report(group: &str, id: &str, per_iter: &[Duration], throughput: Option<Throughput>) {
    if per_iter.is_empty() {
        println!("{group}/{id}: no samples recorded (routine never called iter)");
        return;
    }
    let mut sorted = per_iter.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let p95 = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)];
    let max = sorted[sorted.len() - 1];
    let rate = throughput.map(|t| {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let per_sec = n as f64 / median.as_secs_f64();
        format!("  [{per_sec:.3e} {unit}]")
    });
    println!(
        "{group}/{id}: min {min:?}  median {median:?}  p95 {p95:?}  max {max:?}{}",
        rate.unwrap_or_default()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            samples: 7,
            per_iter: Vec::new(),
        };
        b.iter(|| std::thread::sleep(Duration::from_micros(100)));
        assert_eq!(b.per_iter.len(), 7);
        assert!(b.per_iter.iter().all(|d| *d >= Duration::from_micros(50)));
    }

    #[test]
    fn fast_routines_are_batched() {
        let mut b = Bencher {
            samples: 5,
            per_iter: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.per_iter.len(), 5);
    }

    #[test]
    fn group_api_round_trips() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("id", 42), &42usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("knight", 1000).to_string(), "knight/1000");
    }
}
