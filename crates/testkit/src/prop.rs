//! Seeded property-based testing with shrinking — the in-repo
//! replacement for the `proptest` dependency.
//!
//! A property test draws random inputs from a [`Gen`], checks an
//! invariant on each, and on failure (a) shrinks the input to a smaller
//! counterexample by halving numeric values and truncating collections,
//! and (b) prints the *case seed* that regenerates the failing input, so
//! any red CI run reproduces locally with
//!
//! ```text
//! TESTKIT_SEED=<printed seed> cargo test -p <crate> <test name>
//! ```
//!
//! Tests are written with the [`property_tests!`](crate::property_tests)
//! macro and the [`prop_assert!`](crate::prop_assert) /
//! [`prop_assert_eq!`](crate::prop_assert_eq) assertion macros:
//!
//! ```
//! testkit::property_tests! {
//!     fn addition_commutes(a in -1000i64..1000, b in -1000i64..1000) {
//!         testkit::prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Environment knobs: `TESTKIT_CASES` (cases per property, default 64),
//! `TESTKIT_SEED` (run exactly one case with that seed).

use rngkit::rngs::StdRng;
use rngkit::{Rng, RngCore, SeedableRng, SplitMix64};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A shrinker: proposes smaller variants of a failing input (empty
/// `Vec` for "cannot shrink").
type Shrinker<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A generator of test inputs: a sampling function plus a shrinker that
/// proposes smaller variants of a failing input.
pub struct Gen<T> {
    sample: Rc<dyn Fn(&mut StdRng) -> T>,
    shrink: Shrinker<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Self {
            sample: Rc::clone(&self.sample),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Builds a generator from a sampling closure and a shrinking
    /// closure (return an empty `Vec` for "cannot shrink").
    pub fn new(
        sample: impl Fn(&mut StdRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Self {
            sample: Rc::new(sample),
            shrink: Rc::new(shrink),
        }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut StdRng) -> T {
        (self.sample)(rng)
    }

    /// Proposes smaller variants of `value`, most aggressive first.
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Maps generated values through `f`. Shrinking is disabled (there
    /// is no inverse to shrink through).
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let sample = self.sample;
        Gen::new(move |rng| f(sample(rng)), |_| Vec::new())
    }

    /// Makes a dependent generator: draws from `self`, then from the
    /// generator `f` builds from that value — the tool for "a domain,
    /// then columns over that domain" inputs. Shrinking is disabled.
    pub fn flat_map<U: 'static>(self, f: impl Fn(T) -> Gen<U> + 'static) -> Gen<U> {
        let sample = self.sample;
        Gen::new(move |rng| f(sample(rng)).sample(rng), |_| Vec::new())
    }
}

/// Types convertible into a [`Gen`]: ranges, tuples of convertibles, and
/// `Gen` itself. This is what the right-hand side of `x in ...` inside
/// [`property_tests!`](crate::property_tests) accepts.
pub trait IntoGen<T> {
    /// Performs the conversion.
    fn into_gen(self) -> Gen<T>;
}

impl<T> IntoGen<T> for Gen<T> {
    fn into_gen(self) -> Gen<T> {
        self
    }
}

/// A generator that always yields `value`.
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone(), |_| Vec::new())
}

macro_rules! impl_int_into_gen {
    ($($ty:ty),+ $(,)?) => {$(
        impl IntoGen<$ty> for Range<$ty> {
            fn into_gen(self) -> Gen<$ty> {
                let (lo, hi) = (self.start, self.end);
                Gen::new(
                    move |rng| rng.gen_range(lo..hi),
                    move |&v| {
                        // Halve the distance to the lower bound.
                        let mut out = Vec::new();
                        if v != lo {
                            out.push(lo);
                            let half = lo + (v - lo) / 2;
                            if half != lo && half != v {
                                out.push(half);
                            }
                            out.push(v - 1);
                        }
                        out
                    },
                )
            }
        }

        impl IntoGen<$ty> for RangeInclusive<$ty> {
            fn into_gen(self) -> Gen<$ty> {
                let (lo, hi) = (*self.start(), *self.end());
                Gen::new(
                    move |rng| rng.gen_range(lo..=hi),
                    move |&v| {
                        let mut out = Vec::new();
                        if v != lo {
                            out.push(lo);
                            let half = lo + (v - lo) / 2;
                            if half != lo && half != v {
                                out.push(half);
                            }
                            out.push(v - 1);
                        }
                        out
                    },
                )
            }
        }
    )+};
}

impl_int_into_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_into_gen {
    ($($ty:ty),+ $(,)?) => {$(
        impl IntoGen<$ty> for Range<$ty> {
            fn into_gen(self) -> Gen<$ty> {
                let (lo, hi) = (self.start, self.end);
                Gen::new(
                    move |rng| rng.gen_range(lo..hi),
                    move |&v| {
                        // Halving shrink toward the lower bound; also try
                        // zero when the range straddles it.
                        let mut out = Vec::new();
                        if lo < 0.0 && hi > 0.0 && v != 0.0 {
                            out.push(0.0);
                        }
                        if (v - lo).abs() > 1e-9 * (1.0 + lo.abs()) {
                            out.push(lo);
                            out.push(lo + (v - lo) / 2.0);
                        }
                        out
                    },
                )
            }
        }
    )+};
}

impl_float_into_gen!(f32, f64);

// Tuples of `IntoGen`s become tuple-valued generators — the entry point
// used by `property_tests!` for multi-argument properties. Shrinking is
// componentwise: each candidate changes exactly one position.
macro_rules! impl_tuple_of_intogen {
    ($(($($T:ident $G:ident . $idx:tt),+))+) => {$(
        impl<$($T: Clone + 'static, $G: IntoGen<$T>),+> IntoGen<($($T,)+)> for ($($G,)+) {
            fn into_gen(self) -> Gen<($($T,)+)> {
                let shrink_gens = ($(self.$idx.into_gen(),)+);
                let sample_gens = shrink_gens.clone();
                Gen::new(
                    move |rng| ($(sample_gens.$idx.sample(rng),)+),
                    move |v| {
                        let mut out: Vec<($($T,)+)> = Vec::new();
                        $(
                            for cand in shrink_gens.$idx.shrink(&v.$idx) {
                                let mut t = v.clone();
                                t.$idx = cand;
                                out.push(t);
                            }
                        )+
                        out
                    },
                )
            }
        }
    )+};
}

impl_tuple_of_intogen! {
    (T0 G0.0)
    (T0 G0.0, T1 G1.1)
    (T0 G0.0, T1 G1.1, T2 G2.2)
    (T0 G0.0, T1 G1.1, T2 G2.2, T3 G3.3)
    (T0 G0.0, T1 G1.1, T2 G2.2, T3 G3.3, T4 G4.4)
}

/// Length specification for [`vec`]: an exact `usize` or a range.
pub trait IntoLenRange {
    /// Returns `(min, max)` inclusive bounds.
    fn bounds(self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoLenRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range");
        (self.start, self.end - 1)
    }
}

impl IntoLenRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Generates a `Vec` whose length is drawn from `len` and whose elements
/// are drawn from `elem` — the counterpart of `proptest`'s
/// `collection::vec`. Shrinks by truncating toward the minimum length,
/// then by shrinking individual elements.
pub fn vec<T, G, L>(elem: G, len: L) -> Gen<Vec<T>>
where
    T: Clone + 'static,
    G: IntoGen<T>,
    L: IntoLenRange,
{
    let elem = elem.into_gen();
    let (min_len, max_len) = len.bounds();
    let sample_elem = elem.clone();
    Gen::new(
        move |rng| {
            let n = rng.gen_range(min_len..=max_len);
            (0..n).map(|_| sample_elem.sample(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            if v.len() / 2 >= min_len && v.len() > min_len {
                out.push(v[..v.len() / 2].to_vec());
            }
            if v.len() > min_len {
                out.push(v[..v.len() - 1].to_vec());
            }
            for (i, item) in v.iter().enumerate() {
                if let Some(cand) = elem.shrink(item).into_iter().next() {
                    let mut smaller = v.clone();
                    smaller[i] = cand;
                    out.push(smaller);
                }
            }
            out
        },
    )
}

/// Runner configuration, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases per property (`TESTKIT_CASES`, default 64).
    pub cases: u64,
    /// Upper bound on shrink-candidate evaluations after a failure.
    pub max_shrink_evals: u32,
    /// Run exactly one case with this seed (`TESTKIT_SEED`).
    pub seed: Option<u64>,
}

impl Config {
    /// Reads `TESTKIT_CASES` and `TESTKIT_SEED` from the environment.
    pub fn from_env() -> Self {
        let parse = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        Self {
            cases: parse("TESTKIT_CASES").unwrap_or(64),
            max_shrink_evals: 1000,
            seed: parse("TESTKIT_SEED"),
        }
    }
}

/// Stable 64-bit FNV-1a hash of the test name — the default base seed,
/// so each property explores its own deterministic stream and a red test
/// stays red on re-run.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `prop` against `cfg.cases` inputs drawn from `gen`; on failure,
/// shrinks the input and panics with the counterexample and the
/// reproducing seed.
pub fn run<T, F>(name: &str, cfg: &Config, gen: Gen<T>, prop: F)
where
    T: Debug + Clone + 'static,
    F: Fn(&T) -> Result<(), String>,
{
    let case_seeds: Vec<u64> = match cfg.seed {
        Some(s) => vec![s],
        None => {
            let mut sm = SplitMix64::new(name_seed(name));
            (0..cfg.cases).map(|_| sm.next_u64()).collect()
        }
    };

    for (case, &seed) in case_seeds.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = gen.sample(&mut rng);
        if let Err(msg) = prop(&input) {
            let (shrunk, err, evals) =
                shrink_failure(&gen, input, msg, &prop, cfg.max_shrink_evals);
            panic!(
                "property `{name}` failed at case {case}/{total}\n\
                 \u{20}   error: {err}\n\
                 \u{20}   input (after {evals} shrink evals): {shrunk:?}\n\
                 \u{20}   reproduce with: TESTKIT_SEED={seed} cargo test {short}\n",
                total = case_seeds.len(),
                short = name.rsplit("::").next().unwrap_or(name),
            );
        }
    }
}

/// Greedily walks the shrink tree: keep the first candidate that still
/// fails, stop when no candidate fails or the evaluation budget runs out.
fn shrink_failure<T, F>(
    gen: &Gen<T>,
    mut current: T,
    mut err: String,
    prop: &F,
    budget: u32,
) -> (T, String, u32)
where
    T: Debug + Clone + 'static,
    F: Fn(&T) -> Result<(), String>,
{
    let mut evals = 0u32;
    'outer: loop {
        for cand in gen.shrink(&current) {
            if evals >= budget {
                break 'outer;
            }
            evals += 1;
            if let Err(msg) = prop(&cand) {
                current = cand;
                err = msg;
                continue 'outer;
            }
        }
        break;
    }
    (current, err, evals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> Config {
        Config {
            cases: 64,
            max_shrink_evals: 1000,
            seed: None,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let seen = std::cell::Cell::new(0u32);
        run(
            "t::always_true",
            &test_cfg(),
            (0u32..100).into_gen(),
            |_| {
                seen.set(seen.get() + 1);
                Ok(())
            },
        );
        assert_eq!(seen.get(), 64);
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // Property "v < 50" fails for v >= 50; halving shrink must land
        // exactly on the smallest counterexample, 50.
        let result = std::panic::catch_unwind(|| {
            run("t::lt_fifty", &test_cfg(), (0u32..1000).into_gen(), |&v| {
                if v < 50 {
                    Ok(())
                } else {
                    Err(format!("{v} not < 50"))
                }
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("input (after"), "message was: {msg}");
        assert!(msg.contains(": 50\n"), "expected shrink to 50, got: {msg}");
        assert!(msg.contains("TESTKIT_SEED="), "message was: {msg}");
    }

    #[test]
    fn explicit_seed_reproduces_input() {
        let capture = |cfg: &Config| {
            let got = std::cell::Cell::new(0u64);
            run("t::capture", cfg, (0u64..u64::MAX).into_gen(), |&v| {
                got.set(v);
                Ok(())
            });
            got.get()
        };
        let with_seed = Config {
            seed: Some(777),
            ..test_cfg()
        };
        assert_eq!(capture(&with_seed), capture(&with_seed));
    }

    #[test]
    fn vec_generator_respects_length_bounds() {
        let g = vec(0.0f64..1.0, 3..10);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = g.sample(&mut rng);
            assert!((3..10).contains(&v.len()));
            assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn vec_shrink_never_violates_min_length() {
        let g = vec(0u32..10, 2..6);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = g.sample(&mut rng);
            for cand in g.shrink(&v) {
                assert!(cand.len() >= 2, "shrunk below min: {cand:?}");
            }
        }
    }

    #[test]
    fn tuple_generator_shrinks_componentwise() {
        let g = (0u32..100, 0u32..100).into_gen();
        let cands = g.shrink(&(40, 60));
        assert!(cands.iter().any(|&(a, b)| a < 40 && b == 60));
        assert!(cands.iter().any(|&(a, b)| a == 40 && b < 60));
    }

    #[test]
    fn flat_map_builds_dependent_inputs() {
        let g = (1usize..5).into_gen().flat_map(|n| vec(0u32..10, n));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = g.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    // Exercises the macro end-to-end: this expands to a regular `#[test]`
    // that runs with the rest of the suite.
    crate::property_tests! {
        fn macro_assertions_compile_and_fire(a in -50i32..50, b in -50i32..50) {
            crate::prop_assert!(a + b == b + a);
            crate::prop_assert_eq!(a + b, b + a);
        }
    }
}
