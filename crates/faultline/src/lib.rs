//! Deterministic in-process TCP fault injection for serving tests.
//!
//! A [`FaultProxy`] sits between a test client and an upstream server
//! (both on loopback), forwarding bytes while applying one [`Fault`]
//! plan per accepted connection — byte throttling, mid-stream
//! disconnects, split writes, stalls. Faults shape the *request*
//! (client → upstream) direction; responses are relayed untouched, so
//! any corruption a test observes was produced by the server, not the
//! harness.
//!
//! [`flood`] drives a seeded burst of concurrent connections whose
//! start offsets come from an [`rngkit`] schedule ([`jitter_schedule`]),
//! and [`HttpReply`] parses what came back. The *schedule* is
//! deterministic in the seed; which connections an overloaded server
//! sheds is an OS-scheduling outcome the caller asserts properties of
//! (counts, status sets), not exact membership.
//!
//! Everything here is plain `std::net` + threads: no async runtime, no
//! external crates, usable straight from `#[test]` functions.

use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// One connection's fault plan, applied to the client → upstream byte
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Relay untouched (the control arm).
    Passthrough,
    /// Relay in `chunk`-byte writes with `pause` between them: a slow
    /// client. Pointed at the head bytes this is a slowloris; pointed
    /// at a body it is a trickler.
    Throttle {
        /// Bytes per write.
        chunk: usize,
        /// Sleep between writes.
        pause: Duration,
    },
    /// Relay exactly `bytes`, then hard-close both halves: the client
    /// vanished mid-request.
    CutAfter {
        /// Bytes relayed before the disconnect.
        bytes: usize,
    },
    /// Relay everything, but in `chunk`-byte writes flushed
    /// back-to-back (no sleep): exercises reassembly, not timeouts.
    SplitWrites {
        /// Bytes per write.
        chunk: usize,
    },
    /// Relay `bytes`, go silent for `pause`, then relay the rest: a
    /// stalled-then-recovered sender.
    StallAfter {
        /// Bytes relayed before the stall.
        bytes: usize,
        /// Length of the silence.
        pause: Duration,
    },
}

/// A loopback TCP proxy applying one [`Fault`] per accepted connection:
/// connection `i` gets `plans[i]`, connections past the end get
/// [`Fault::Passthrough`].
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_loop: Option<thread::JoinHandle<()>>,
}

/// Safety valve so a forwarding thread whose peer never closes cannot
/// outlive the test process by much.
const RELAY_READ_TIMEOUT: Duration = Duration::from_secs(30);

impl FaultProxy {
    /// Binds an ephemeral loopback port and starts relaying to
    /// `upstream`.
    pub fn start(upstream: SocketAddr, plans: Vec<Fault>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_loop = thread::spawn(move || {
            for (index, conn) in listener.incoming().enumerate() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = conn else { continue };
                let plan = plans.get(index).copied().unwrap_or(Fault::Passthrough);
                thread::spawn(move || relay(client, upstream, plan));
            }
        });
        Ok(Self {
            addr,
            stop,
            accept_loop: Some(accept_loop),
        })
    }

    /// Where test clients connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on wakeup.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_loop.take() {
            let _ = handle.join();
        }
    }
}

/// Connects one proxied pair and runs both directions: the fault on
/// the request path in this thread, the response path in a helper.
fn relay(client: TcpStream, upstream: SocketAddr, plan: Fault) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_read_timeout(Some(RELAY_READ_TIMEOUT));
    let _ = server.set_read_timeout(Some(RELAY_READ_TIMEOUT));
    let _ = server.set_nodelay(true);
    let _ = client.set_nodelay(true);
    let (Ok(server_read), Ok(client_write)) = (server.try_clone(), client.try_clone()) else {
        return;
    };
    let response_path = thread::spawn(move || copy_until_eof(server_read, client_write));
    forward_with_fault(client, server, plan);
    let _ = response_path.join();
}

/// Plain byte relay until EOF or error; closes the write half after.
fn copy_until_eof(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 8192];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// The request-direction relay, shaped by `plan`.
fn forward_with_fault(mut from: TcpStream, mut to: TcpStream, plan: Fault) {
    match plan {
        Fault::Passthrough => copy_until_eof(from, to),
        Fault::SplitWrites { chunk } => {
            let _ = relay_chunked(&mut from, &mut to, chunk.max(1), None, usize::MAX);
            let _ = to.shutdown(Shutdown::Write);
        }
        Fault::Throttle { chunk, pause } => {
            let _ = relay_chunked(&mut from, &mut to, chunk.max(1), Some(pause), usize::MAX);
            let _ = to.shutdown(Shutdown::Write);
        }
        Fault::CutAfter { bytes } => {
            let _ = relay_chunked(&mut from, &mut to, 8192, None, bytes);
            // Hard close both halves: from the server's side the client
            // is simply gone, response undeliverable.
            let _ = to.shutdown(Shutdown::Both);
            let _ = from.shutdown(Shutdown::Both);
        }
        Fault::StallAfter { bytes, pause } => {
            let _ = relay_chunked(&mut from, &mut to, 8192, None, bytes);
            thread::sleep(pause);
            copy_until_eof(from, to);
        }
    }
}

/// Relays up to `limit` bytes in `chunk`-sized flushed writes, sleeping
/// `pause` after each. Returns bytes relayed.
fn relay_chunked(
    from: &mut TcpStream,
    to: &mut TcpStream,
    chunk: usize,
    pause: Option<Duration>,
    limit: usize,
) -> usize {
    let mut buf = vec![0u8; chunk];
    let mut sent = 0usize;
    while sent < limit {
        let want = chunk.min(limit - sent);
        let n = match from.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
            break;
        }
        sent += n;
        if let Some(pause) = pause {
            thread::sleep(pause);
        }
    }
    sent
}

/// A parsed HTTP/1.1 response: status, headers, and the
/// `Content-Length`-framed body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// Numeric status code from the status line.
    pub status: u16,
    /// Header (name, value) pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body: exactly `Content-Length` bytes when declared, else
    /// read to EOF.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// Reads one response off `reader`.
    pub fn read_from<R: Read>(reader: &mut BufReader<R>) -> std::io::Result<Self> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a status line",
            ));
        }
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed inside the header block"));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad("malformed header"))?;
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let declared = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        let body = match declared {
            Some(len) => {
                let mut body = vec![0u8; len];
                reader.read_exact(&mut body)?;
                body
            }
            None => {
                let mut body = Vec::new();
                reader.read_to_end(&mut body)?;
                body
            }
        };
        Ok(Self {
            status,
            headers,
            body,
        })
    }

    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends `request` to `addr` and reads one response.
pub fn send_request(addr: SocketAddr, request: &[u8]) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(RELAY_READ_TIMEOUT))?;
    stream.write_all(request)?;
    stream.flush()?;
    HttpReply::read_from(&mut BufReader::new(stream))
}

/// The per-connection start offsets (milliseconds) `flood` uses:
/// deterministic in `(seed, connections, max_jitter_ms)`.
pub fn jitter_schedule(seed: u64, connections: usize, max_jitter_ms: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..connections)
        .map(|_| rng.gen_range(0..max_jitter_ms.max(1)))
        .collect()
}

/// Fires `connections` copies of `request` at `addr` concurrently,
/// each delayed by its [`jitter_schedule`] offset. Slot `i` of the
/// result is connection `i`'s reply, `None` when the connection or
/// read failed (e.g. the server cut it).
pub fn flood(
    addr: SocketAddr,
    seed: u64,
    connections: usize,
    max_jitter_ms: u64,
    request: &[u8],
) -> Vec<Option<HttpReply>> {
    let schedule = jitter_schedule(seed, connections, max_jitter_ms);
    let request = Arc::new(request.to_vec());
    let workers: Vec<_> = schedule
        .into_iter()
        .map(|delay_ms| {
            let request = Arc::clone(&request);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(delay_ms));
                send_request(addr, &request).ok()
            })
        })
        .collect();
    workers
        .into_iter()
        .map(|w| w.join().unwrap_or(None))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-shot upstream: accepts connections, reads until the blank
    /// line plus any `Content-Length` body, and answers with a fixed
    /// 200 whose body echoes how many request bytes it saw.
    fn tiny_upstream() -> (SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                thread::spawn(move || {
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut total = 0usize;
                    let mut declared = 0usize;
                    loop {
                        let mut line = String::new();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => return, // cut before the head ended
                            Ok(n) => total += n,
                        }
                        let trimmed = line.trim_end_matches(['\r', '\n']);
                        if let Some(v) = trimmed
                            .to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(str::trim)
                        {
                            declared = v.parse().unwrap_or(0);
                        }
                        if trimmed.is_empty() {
                            break;
                        }
                    }
                    let mut body = vec![0u8; declared];
                    if reader.read_exact(&mut body).is_err() {
                        return; // cut inside the body
                    }
                    total += declared;
                    let reply = format!("saw {total} bytes");
                    let mut out = stream;
                    let _ = out.write_all(
                        format!(
                            "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{reply}",
                            reply.len()
                        )
                        .as_bytes(),
                    );
                });
            }
        });
        (addr, stop)
    }

    const REQUEST: &[u8] = b"POST /echo HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";

    #[test]
    fn passthrough_and_split_writes_deliver_identical_replies() {
        let (upstream, stop) = tiny_upstream();
        let direct = send_request(upstream, REQUEST).unwrap();
        let proxy = FaultProxy::start(
            upstream,
            vec![Fault::Passthrough, Fault::SplitWrites { chunk: 3 }],
        )
        .unwrap();
        let via_proxy = send_request(proxy.addr(), REQUEST).unwrap();
        let split = send_request(proxy.addr(), REQUEST).unwrap();
        assert_eq!(direct, via_proxy);
        assert_eq!(direct, split);
        assert_eq!(split.status, 200);
        assert_eq!(split.body, b"saw 53 bytes");
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(upstream);
    }

    #[test]
    fn cut_after_kills_the_connection_mid_body() {
        let (upstream, stop) = tiny_upstream();
        // 45 bytes is inside the body (head is 43 bytes): the upstream
        // sees EOF mid-body and answers nothing.
        let proxy = FaultProxy::start(upstream, vec![Fault::CutAfter { bytes: 45 }]).unwrap();
        let err = send_request(proxy.addr(), REQUEST).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected error kind {:?}",
            err.kind()
        );
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(upstream);
    }

    #[test]
    fn stall_after_recovers_and_delivers() {
        let (upstream, stop) = tiny_upstream();
        let proxy = FaultProxy::start(
            upstream,
            vec![Fault::StallAfter {
                bytes: 20,
                pause: Duration::from_millis(30),
            }],
        )
        .unwrap();
        let reply = send_request(proxy.addr(), REQUEST).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, b"saw 53 bytes");
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(upstream);
    }

    #[test]
    fn jitter_schedule_is_deterministic_in_the_seed() {
        let a = jitter_schedule(42, 16, 5);
        let b = jitter_schedule(42, 16, 5);
        let c = jitter_schedule(43, 16, 5);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should disagree somewhere");
        assert!(a.iter().all(|&ms| ms < 5));
    }

    #[test]
    fn flood_answers_in_connection_order() {
        let (upstream, stop) = tiny_upstream();
        let replies = flood(upstream, 7, 6, 4, REQUEST);
        assert_eq!(replies.len(), 6);
        for reply in replies {
            let reply = reply.expect("unfaulted flood against a healthy upstream");
            assert_eq!(reply.status, 200);
            assert_eq!(reply.body, b"saw 53 bytes");
        }
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(upstream);
    }
}
