//! Tier-2 statistical acceptance suite: the statistics of the pipeline,
//! not just its determinism.
//!
//! Every assertion here is a *trend* (error shrinks as ε grows) or a
//! generous absolute bound, evaluated at fixed seeds — deterministic on
//! every run, yet still binding the underlying statistics: mis-scaled
//! noise, a double-spent budget, or a broken estimator shifts or
//! flattens the error-vs-ε curve and trips the trend assertions.
//!
//! The sweeps cover the three statistical layers of the workspace:
//! every registered margin method in `dphist::MarginRegistry`, the
//! Kendall / Spearman / MLE correlation estimators, and the end-to-end
//! `fit_staged → save → load → sample_range` path against generator
//! ground truth.

use datagen::margin::TableMargin;
use datagen::synthetic::{MarginKind, SyntheticSpec};
use dpcopula::kendall::{kendall_tau, SamplingStrategy};
use dpcopula::shard::{build_margin_summaries, dp_tau_matrix_sharded, merge_margins, shard_specs};
use dpcopula::synthesizer::CorrelationMethod;
use dpcopula::{DpCopula, DpCopulaConfig, EngineOptions, FittedModel};
use dphist::histogram::Histogram1D;
use dphist::MarginRegistry;
use dpmech::Epsilon;
use modelstore::ModelArtifact;
use obskit::MetricsSink;
use statcheck::{correlation_mean_abs_error, is_decreasing_trend};

/// Expected counts of a discretised-Gaussian margin over `domain` bins,
/// scaled to `total` records — the ground truth the DP publications are
/// scored against.
fn gaussian_truth(domain: usize, total: f64) -> Vec<f64> {
    let margin = TableMargin::gaussian(domain);
    let mut prev = 0.0;
    (0..domain as u32)
        .map(|k| {
            let c = margin.cdf(k);
            let p = c - prev;
            prev = c;
            p * total
        })
        .collect()
}

/// Normalised L1 distance between a published histogram and the truth.
fn l1_error(published: &[f64], truth: &[f64]) -> f64 {
    let total: f64 = truth.iter().sum();
    published
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / total
}

#[test]
fn every_margin_method_improves_with_epsilon() {
    let registry = MarginRegistry::builtin();
    let truth = gaussian_truth(64, 8_000.0);
    let epsilons = [0.05, 0.4, 4.0];
    let seeds = 8u64;
    for name in registry.names() {
        let publisher = registry.get(name).unwrap();
        let errs: Vec<f64> = epsilons
            .iter()
            .enumerate()
            .map(|(ei, &eps)| {
                let eps = Epsilon::new(eps).unwrap();
                (0..seeds)
                    .map(|s| {
                        let mut rng = parkit::stream_rng(0xACCE5, ei as u64, s);
                        l1_error(&publisher.publish(&truth, eps, &mut rng), &truth)
                    })
                    .sum::<f64>()
                    / seeds as f64
            })
            .collect();
        assert!(
            is_decreasing_trend(&errs),
            "margin method `{name}` error does not shrink with epsilon: {errs:?}"
        );
        // At generous budget the publication must actually be close.
        assert!(
            errs[epsilons.len() - 1] < 0.30,
            "margin method `{name}` is inaccurate even at eps = 4: {errs:?}"
        );
    }
}

#[test]
fn sharded_margins_track_single_shard_error_on_every_method() {
    // Sharding is privacy-free for the margins (parallel composition),
    // paying instead with one extra noise term per shard in each merged
    // bin: the error budget grows like sqrt(shards). For every
    // registered margin method and N in {2, 4}, the sharded error must
    // keep the decreasing error-vs-ε trend AND stay within the
    // sqrt(N)-scaled tolerance band of the single-shard error.
    let spec = SyntheticSpec {
        records: 8_000,
        dims: 2,
        domain: 64,
        margin: MarginKind::Gaussian,
        rho: 0.5,
        seed: 0x54A2D,
    };
    let data = spec.generate();
    let col = &data.columns()[..1];
    let n = col[0].len();
    let exact: Vec<f64> = Histogram1D::from_values(&col[0], 64).counts().to_vec();
    let epsilons = [0.1, 0.8, 6.4];
    let seeds = 6u64;
    let sink = MetricsSink::off();

    let sweep = |name: &str, shards: usize| -> Vec<f64> {
        epsilons
            .iter()
            .enumerate()
            .map(|(ei, &eps)| {
                let eps = Epsilon::new(eps).unwrap();
                (0..seeds)
                    .map(|s| {
                        let specs = shard_specs(n, shards);
                        let summaries = build_margin_summaries(
                            col,
                            &[64],
                            &specs,
                            name,
                            eps,
                            0xD1CE + 100 * ei as u64 + s,
                            2,
                            &sink,
                        );
                        l1_error(&merge_margins(&summaries)[0], &exact)
                    })
                    .sum::<f64>()
                    / seeds as f64
            })
            .collect()
    };

    let registry = MarginRegistry::builtin();
    for name in registry.names() {
        let single = sweep(name, 1);
        assert!(
            is_decreasing_trend(&single),
            "`{name}` single-shard error does not shrink with epsilon: {single:?}"
        );
        for shards in [2usize, 4] {
            let sharded = sweep(name, shards);
            assert!(
                is_decreasing_trend(&sharded),
                "`{name}` at {shards} shards: error does not shrink with epsilon: {sharded:?}"
            );
            let tolerance = (shards as f64).sqrt() * 1.8;
            for (ei, (&s_err, &one_err)) in sharded.iter().zip(&single).enumerate() {
                assert!(
                    s_err <= one_err * tolerance + 0.02,
                    "`{name}` at {shards} shards, eps {}: error {s_err} vs \
                     single-shard {one_err} (tolerance x{tolerance:.2})",
                    epsilons[ei]
                );
            }
        }
    }
}

#[test]
fn merged_tau_stays_close_to_exact_pooled_tau() {
    // The sharded Kendall path merges within-shard concordance summaries
    // with cross-shard corrections; at a generous budget the remaining
    // error is the record subsample, so the released τ must sit within
    // MAE 0.05 of the exact pooled τ over ALL records, at pinned seeds.
    let spec = SyntheticSpec {
        records: 4_000,
        dims: 3,
        domain: 64,
        margin: MarginKind::Gaussian,
        rho: 0.6,
        seed: 0x7A0,
    };
    let data = spec.generate();
    let cols = data.columns();
    let pairs = [(0usize, 1usize), (0, 2), (1, 2)];
    let exact: Vec<f64> = pairs
        .iter()
        .map(|&(i, j)| kendall_tau(&cols[i], &cols[j]))
        .collect();
    let eps = Epsilon::new(40.0).unwrap();
    for shards in [2usize, 4] {
        for seed in [3u64, 17, 0xBAD5EED] {
            let specs = shard_specs(cols[0].len(), shards);
            let p = dp_tau_matrix_sharded(
                cols,
                &specs,
                eps,
                SamplingStrategy::Fixed(1_500),
                seed,
                2,
                &MetricsSink::off(),
            )
            .unwrap();
            // Invert the released sin(π/2·τ) map back to τ.
            let mae: f64 = pairs
                .iter()
                .zip(&exact)
                .map(|(&(i, j), &t)| {
                    (p[(i, j)].clamp(-1.0, 1.0).asin() * std::f64::consts::FRAC_2_PI - t).abs()
                })
                .sum::<f64>()
                / pairs.len() as f64;
            assert!(
                mae < 0.05,
                "merged tau MAE vs exact pooled tau at {shards} shards, seed {seed}: {mae}"
            );
        }
    }
}

#[test]
fn sharded_fit_tracks_single_shard_error_end_to_end() {
    // The full fit pipeline at N in {2, 4} shards: correlation recovery
    // keeps its error-vs-ε trend and lands within tolerance of the
    // single-shard fit at every budget level.
    let spec = SyntheticSpec {
        records: 2_000,
        dims: 3,
        domain: 64,
        margin: MarginKind::Gaussian,
        rho: 0.6,
        seed: 0x5AFE,
    };
    let data = spec.generate();
    let truth = spec.correlation();
    let seeds = 6u64;
    let sweep = |shards: usize| -> Vec<f64> {
        [0.3, 2.0, 20.0]
            .iter()
            .enumerate()
            .map(|(ei, &eps)| {
                (0..seeds)
                    .map(|s| {
                        let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(eps).unwrap()));
                        let mut opts = EngineOptions::with_workers(2);
                        opts.shards = shards;
                        let seed = 1000 * (ei as u64 + 1) + s;
                        let (model, _) = dp
                            .fit_staged(data.columns(), &data.domains(), seed, &opts)
                            .unwrap();
                        correlation_mean_abs_error(&truth, &model.artifact().correlation)
                    })
                    .sum::<f64>()
                    / seeds as f64
            })
            .collect()
    };
    let single = sweep(1);
    for shards in [2usize, 4] {
        let sharded = sweep(shards);
        assert!(
            is_decreasing_trend(&sharded),
            "{shards}-shard fit error does not shrink with epsilon: {sharded:?}"
        );
        for (ei, (&s_err, &one_err)) in sharded.iter().zip(&single).enumerate() {
            assert!(
                s_err <= one_err * 1.5 + 0.03,
                "{shards}-shard fit error {s_err} vs single-shard {one_err} at sweep \
                 level {ei}"
            );
        }
    }
}

#[test]
fn correlation_estimators_recover_dependence_as_epsilon_grows() {
    // Small n keeps the rank-statistic sensitivities (4/(n+1), 30/(n-1))
    // large enough that the ε-driven noise dominates the error, so the
    // trend is attributable to the budget and not to sampling luck.
    let spec = SyntheticSpec {
        records: 500,
        dims: 3,
        domain: 64,
        margin: MarginKind::Gaussian,
        rho: 0.6,
        seed: 0xC0FE,
    };
    let data = spec.generate();
    let truth = spec.correlation();
    let opts = EngineOptions::with_workers(2);
    let seeds = 6u64;
    // (label, config at eps, eps sweep). MLE's subsample-and-aggregate
    // partition rule needs l > C(m,2)/(0.025 ε₂) partitions of ≥ 2
    // records, so its sweep starts higher and uses a larger dataset.
    let kendall = |e: f64| DpCopulaConfig::kendall(Epsilon::new(e).unwrap());
    let spearman = |e: f64| DpCopulaConfig {
        method: CorrelationMethod::Spearman,
        ..kendall(e)
    };
    for (label, cfg_at) in [
        ("kendall", &kendall as &dyn Fn(f64) -> DpCopulaConfig),
        ("spearman", &spearman),
    ] {
        let errs: Vec<f64> = [0.3, 2.0, 20.0]
            .iter()
            .enumerate()
            .map(|(ei, &eps)| {
                (0..seeds)
                    .map(|s| {
                        let dp = DpCopula::new(cfg_at(eps));
                        let seed = 1000 * (ei as u64 + 1) + s;
                        let (model, _) = dp
                            .fit_staged(data.columns(), &data.domains(), seed, &opts)
                            .unwrap();
                        correlation_mean_abs_error(&truth, &model.artifact().correlation)
                    })
                    .sum::<f64>()
                    / seeds as f64
            })
            .collect();
        assert!(
            is_decreasing_trend(&errs),
            "{label} correlation error does not shrink with epsilon: {errs:?}"
        );
        assert!(
            errs[2] < 0.15,
            "{label} stays far from the generator dependence at eps = 20: {errs:?}"
        );
    }

    // MLE flavour on its own dataset: the Auto partition rule demands
    // `required_partitions(m, ε₂) · MIN_BLOCK_SIZE` records (4324 at
    // ε = 1, m = 3), so it gets a larger sample and a higher ε floor.
    let spec = SyntheticSpec {
        records: 8_000,
        ..spec
    };
    let data = spec.generate();
    let mle_errs: Vec<f64> = [1.0, 4.0, 16.0]
        .iter()
        .enumerate()
        .map(|(ei, &eps)| {
            (0..seeds)
                .map(|s| {
                    let dp = DpCopula::new(DpCopulaConfig::mle(Epsilon::new(eps).unwrap()));
                    let seed = 5000 * (ei as u64 + 1) + s;
                    let (model, _) = dp
                        .fit_staged(data.columns(), &data.domains(), seed, &opts)
                        .unwrap();
                    correlation_mean_abs_error(&truth, &model.artifact().correlation)
                })
                .sum::<f64>()
                / seeds as f64
        })
        .collect();
    assert!(
        is_decreasing_trend(&mle_errs),
        "MLE correlation error does not shrink with epsilon: {mle_errs:?}"
    );
}

#[test]
fn end_to_end_serving_recovers_generator_truth() {
    let spec = SyntheticSpec {
        records: 6_000,
        dims: 3,
        domain: 32,
        margin: MarginKind::Gaussian,
        rho: 0.7,
        seed: 0xE2E,
    };
    let data = spec.generate();
    let truth_margin = gaussian_truth(32, spec.records as f64);
    let tau_truth = kendall_tau(&data.columns()[0], &data.columns()[1]);
    let dir = std::env::temp_dir().join(format!("statcheck_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let serve_error = |eps: f64, fit_seed: u64| -> (f64, f64) {
        let dp = DpCopula::new(DpCopulaConfig::kendall(Epsilon::new(eps).unwrap()));
        let (model, _) = dp
            .fit_staged(
                data.columns(),
                &data.domains(),
                fit_seed,
                &EngineOptions::with_workers(2),
            )
            .unwrap();
        // Round-trip through the artifact store: the audit must score
        // what a deployment would actually serve, not the in-memory fit.
        let path = dir.join(format!("m_{eps}_{fit_seed}.dpcm"));
        model.save(&path).unwrap();
        let served = FittedModel::from_artifact(ModelArtifact::load(&path).unwrap()).unwrap();
        let cols = served.try_sample_range(0, spec.records, 3).unwrap();
        assert_eq!(cols, model.sample_range(0, spec.records, 1));
        for col in &cols {
            assert!(col.iter().all(|&v| (v as usize) < spec.domain));
        }
        let mut hist = vec![0.0_f64; spec.domain];
        for &v in &cols[0] {
            hist[v as usize] += 1.0;
        }
        let margin_err = l1_error(&hist, &truth_margin);
        let tau_err = (kendall_tau(&cols[0], &cols[1]) - tau_truth).abs();
        (margin_err, tau_err)
    };

    // Average each ε level over a few fit seeds: at ε = 0.1 the noise
    // (Kendall scale 4/((n+1)ε₂), EFPA at ε₁/m) dominates the error, at
    // ε = 20 the residual bias does, so the averaged trend is attributable
    // to the budget rather than to one lucky draw.
    let seeds = 4u64;
    let avg = |eps: f64, base: u64| -> (f64, f64) {
        let (mut m, mut t) = (0.0, 0.0);
        for s in 0..seeds {
            let (me, te) = serve_error(eps, base + s);
            m += me;
            t += te;
        }
        (m / seeds as f64, t / seeds as f64)
    };
    let (m_low, t_low) = avg(0.1, 0xBEEF);
    let (m_high, t_high) = avg(20.0, 0xFACE);
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        is_decreasing_trend(&[m_low, m_high]),
        "served margin error does not improve with budget: {m_low} -> {m_high}"
    );
    assert!(
        is_decreasing_trend(&[t_low, t_high]),
        "served dependence error does not improve with budget: {t_low} -> {t_high}"
    );
    // Generous absolute quality gates at the generous budget.
    assert!(m_high < 0.10, "served margin L1 at eps=20: {m_high}");
    assert!(
        t_high < 0.10,
        "served Kendall-tau error at eps=20: {t_high}"
    );
}
