//! Goodness-of-fit primitives with in-crate critical values.
//!
//! Everything here is closed-form or computed from mathkit's special
//! functions — no external statistical tables, so the crate stays
//! dependency-free and the values are pinned by golden tests below.

use mathkit::dist::{Continuous, Gamma};
use mathkit::Matrix;

/// One-sample Kolmogorov–Smirnov statistic: the supremum distance
/// between the empirical CDF of `sample` and the hypothesised continuous
/// CDF `cdf`.
///
/// # Panics
/// Panics on an empty sample.
pub fn ks_statistic(sample: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(!sample.is_empty(), "KS needs at least one observation");
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    let n = xs.len() as f64;
    let mut d = 0.0_f64;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Asymptotic one-sample KS critical value at significance `alpha`:
/// `c(alpha) / sqrt(n)` with `c(alpha) = sqrt(-ln(alpha / 2) / 2)` — the
/// inverse of the Kolmogorov tail bound `P(D > d) ≈ 2 exp(-2 n d²)`.
/// Good for `n ≳ 35`, the only regime the harness uses it in.
///
/// # Panics
/// Panics unless `0 < alpha < 1` and `n > 0`.
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    assert!(n > 0, "KS critical value needs n > 0");
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
    (-(alpha / 2.0).ln() / 2.0).sqrt() / (n as f64).sqrt()
}

/// Pearson chi-square statistic `Σ (O - E)² / E` over bins with
/// `expected > 0`; bins with non-positive expectation are pooled into
/// their neighbour on the left (or right, for the first bin) so sparse
/// tails don't blow the statistic up.
///
/// # Panics
/// Panics when lengths differ, when fewer than two bins are given, or
/// when the total expectation is not positive.
pub fn chi_square_statistic(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "one expectation per bin");
    assert!(observed.len() >= 2, "chi-square needs at least two bins");
    assert!(
        expected.iter().sum::<f64>() > 0.0,
        "expected counts must have positive mass"
    );
    // Pool zero-expectation bins forward so every term divides by > 0.
    let mut stat = 0.0;
    let mut o_acc = 0.0;
    let mut e_acc = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        o_acc += o;
        e_acc += e;
        if e_acc > 0.0 {
            let d = o_acc - e_acc;
            stat += d * d / e_acc;
            o_acc = 0.0;
            e_acc = 0.0;
        }
    }
    // A trailing run of empty expectation pools backwards into the last
    // counted bin; its observed mass still has to be charged somewhere.
    if e_acc == 0.0 && o_acc > 0.0 {
        stat += o_acc * o_acc / expected.iter().sum::<f64>();
    }
    stat
}

/// Upper critical value of the chi-square distribution with `df` degrees
/// of freedom at significance `alpha`: the `1 - alpha` quantile of
/// `χ²(df) = Gamma(df/2, scale 2)`.
///
/// # Panics
/// Panics unless `df > 0` and `0 < alpha < 1`.
pub fn chi_square_critical(df: usize, alpha: f64) -> f64 {
    assert!(df > 0, "chi-square needs df > 0");
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
    Gamma::new(df as f64 / 2.0, 2.0)
        .expect("df/2 > 0")
        .quantile(1.0 - alpha)
}

/// Rank-correlation recovery metric: mean absolute difference of the
/// off-diagonal entries of two square matrices — the distance between a
/// recovered dependence structure and the generator's truth. Returns 0
/// for 1×1 matrices (no off-diagonal entries to compare).
///
/// # Panics
/// Panics when the matrices are not square with equal dimensions.
pub fn correlation_mean_abs_error(truth: &Matrix, estimate: &Matrix) -> f64 {
    let m = truth.rows();
    assert_eq!(truth.cols(), m, "truth must be square");
    assert_eq!(
        (estimate.rows(), estimate.cols()),
        (m, m),
        "estimate must match the truth's shape"
    );
    if m < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut terms = 0usize;
    for i in 0..m {
        for j in 0..m {
            if i != j {
                sum += (truth[(i, j)] - estimate[(i, j)]).abs();
                terms += 1;
            }
        }
    }
    sum / terms as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::{Rng, SeedableRng};

    #[test]
    fn ks_critical_matches_asymptotic_table() {
        // c(alpha) for the classic significance levels, times 1/sqrt(n).
        let pins = [(0.10, 1.22387), (0.05, 1.35810), (0.01, 1.62762)];
        for (alpha, c) in pins {
            let got = ks_critical(100, alpha) * 10.0;
            assert!((got - c).abs() < 1e-5, "alpha={alpha}: {got} vs {c}");
        }
        // Scales as 1/sqrt(n).
        let r = ks_critical(400, 0.05) / ks_critical(100, 0.05);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_accepts_true_distribution_rejects_shifted() {
        let mut rng = StdRng::seed_from_u64(41);
        let sample: Vec<f64> = (0..2_000).map(|_| rng.gen::<f64>()).collect();
        let uniform_cdf = |x: f64| x.clamp(0.0, 1.0);
        let d = ks_statistic(&sample, uniform_cdf);
        assert!(d < ks_critical(sample.len(), 0.01), "d = {d}");
        // The same draws against a mis-located CDF must reject.
        let shifted_cdf = |x: f64| (x - 0.1).clamp(0.0, 1.0);
        let d_bad = ks_statistic(&sample, shifted_cdf);
        assert!(d_bad > ks_critical(sample.len(), 0.01), "d_bad = {d_bad}");
    }

    #[test]
    fn chi_square_critical_matches_table() {
        // (df, alpha, critical) — standard chi-square table doubles.
        let pins = [
            (1, 0.05, 3.841458821),
            (5, 0.05, 11.07049769),
            (10, 0.05, 18.30703805),
            (10, 0.01, 23.20925116),
            (31, 0.05, 44.98534328),
            (63, 0.05, 82.52872654),
        ];
        for (df, alpha, want) in pins {
            let got = chi_square_critical(df, alpha);
            assert!(
                (got - want).abs() < 1e-5 * want,
                "chi2({df}, {alpha}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn chi_square_statistic_handles_exact_and_empty_bins() {
        // Perfect fit: zero statistic.
        let e = [10.0, 20.0, 30.0];
        assert_eq!(chi_square_statistic(&e, &e), 0.0);
        // Known value: sum (O-E)^2/E.
        let o = [12.0, 18.0, 30.0];
        let want = 4.0 / 10.0 + 4.0 / 20.0;
        assert!((chi_square_statistic(&o, &e) - want).abs() < 1e-12);
        // A zero-expectation bin pools into the next instead of dividing
        // by zero: the [5, 5] observed mass meets the pooled e = 10.
        let o = [5.0, 5.0, 30.0];
        let e = [0.0, 10.0, 30.0];
        let s = chi_square_statistic(&o, &e);
        assert!(s.is_finite() && s.abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn correlation_error_is_zero_on_truth_and_positive_off_it() {
        let truth = mathkit::correlation::ar1_correlation(3, 0.6);
        assert_eq!(correlation_mean_abs_error(&truth, &truth), 0.0);
        let mut off = truth.clone();
        off[(0, 1)] += 0.3;
        off[(1, 0)] += 0.3;
        let e = correlation_mean_abs_error(&truth, &off);
        assert!((e - 0.6 / 6.0).abs() < 1e-12, "e = {e}");
    }
}
