//! Minimal JSON emission for `BENCH_statcheck.json`.
//!
//! The workspace has zero registry dependencies, so — like the bench
//! crate — the report is written by hand. This module keeps the
//! formatting in one place and escapes strings properly instead of
//! trusting ad-hoc `writeln!` calls.

use crate::audit::AuditResult;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats one audit result as a JSON object line.
pub fn audit_json(r: &AuditResult) -> String {
    format!(
        "{{\"mechanism\": {}, \"declared_epsilon\": {:.4}, \"empirical_epsilon\": {:.6}, \
         \"margin\": {:.6}, \"slack\": {:.4}, \"trials\": {}, \"qualified_bins\": {}, \
         \"pass\": {}}}",
        json_string(&r.mechanism),
        r.declared_epsilon,
        r.empirical_epsilon,
        r.margin(),
        r.slack,
        r.trials,
        r.qualified_bins,
        r.passes()
    )
}

/// Assembles the full `BENCH_statcheck.json` document: the audited
/// mechanisms (in run order) plus the negative control, under a config
/// header.
pub fn render_report(
    full: bool,
    results: &[AuditResult],
    negative_control: &AuditResult,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"statcheck_audit\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"mode\": {}, \"mechanisms\": {}}},",
        json_string(if full { "full" } else { "smoke" }),
        results.len()
    );
    let _ = writeln!(out, "  \"audits\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", audit_json(r));
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"negative_control\": {}",
        audit_json(negative_control)
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_shape_is_valid_enough() {
        let r = AuditResult {
            mechanism: "identity".into(),
            declared_epsilon: 1.0,
            empirical_epsilon: 0.8,
            qualified_bins: 12,
            trials: 100,
            slack: 1.35,
        };
        let doc = render_report(false, std::slice::from_ref(&r), &r);
        assert!(doc.starts_with("{\n") && doc.ends_with("}\n"));
        assert!(doc.contains("\"mechanism\": \"identity\""));
        assert!(doc.contains("\"pass\": true"));
        // Balanced braces/brackets (cheap structural sanity).
        let count = |c: char| doc.matches(c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }
}
