//! The statcheck CI tier: audits every registered margin method for
//! empirical privacy-budget violations, verifies the auditor itself
//! still catches a deliberately broken mechanism, and emits
//! `BENCH_statcheck.json` with per-mechanism empirical-ε margins.
//!
//! Exit status:
//! * `0` — every registered method within budget AND the broken-Laplace
//!   negative control flagged;
//! * `1` — a registered method exceeded its declared ε (a privacy bug),
//!   or the negative control passed (the auditor lost its teeth).
//!
//! `STATCHECK_FULL=1` switches from the smoke tier (one ε, ~1.5k trials
//! per arm) to the deep sweep (three ε levels, 15k trials per arm).

use dphist::MarginRegistry;
use statcheck::{audit_publisher, report, AuditConfig, BrokenLaplace};

fn main() {
    let full = std::env::var("STATCHECK_FULL").is_ok_and(|v| v == "1");
    let epsilons: &[f64] = if full { &[0.5, 1.0, 2.0] } else { &[1.0] };
    let cfg_at = |eps: f64| {
        if full {
            AuditConfig::full(eps)
        } else {
            AuditConfig::smoke(eps)
        }
    };
    println!(
        "statcheck: empirical DP audit, {} tier, eps sweep {:?}",
        if full { "full" } else { "smoke" },
        epsilons
    );

    let registry = MarginRegistry::builtin();
    let mut results = Vec::new();
    let mut violations = 0usize;
    for name in registry.names() {
        let publisher = registry.get(name).expect("name from the registry");
        for &eps in epsilons {
            let r = audit_publisher(publisher.as_ref(), &cfg_at(eps));
            println!(
                "  {:<16} eps {:>4}: empirical {:>7.4}  margin {:>+8.4}  [{}]",
                r.mechanism,
                eps,
                r.empirical_epsilon,
                r.margin(),
                if r.passes() { "pass" } else { "VIOLATION" }
            );
            if !r.passes() {
                violations += 1;
            }
            results.push(r);
        }
    }

    // Negative control: the auditor must flag a mechanism whose noise is
    // calibrated to half the true sensitivity (true loss 2ε). Audited at
    // the first sweep ε so smoke and full tiers both exercise it.
    let control = audit_publisher(&BrokenLaplace, &cfg_at(epsilons[0]));
    println!(
        "  {:<16} eps {:>4}: empirical {:>7.4}  margin {:>+8.4}  [{}]",
        control.mechanism,
        epsilons[0],
        control.empirical_epsilon,
        control.margin(),
        if control.passes() {
            "UNDETECTED"
        } else {
            "flagged, as it must be"
        }
    );

    let doc = report::render_report(full, &results, &control);
    let path = "BENCH_statcheck.json";
    std::fs::write(path, &doc).expect("write BENCH_statcheck.json");
    println!("wrote {path} ({} audits + negative control)", results.len());

    if violations > 0 {
        eprintln!("statcheck: {violations} empirical-epsilon violation(s) — a registered margin method leaks more than its declared budget");
        std::process::exit(1);
    }
    if control.passes() {
        eprintln!(
            "statcheck: negative control passed its audit — the auditor can no longer detect a \
             halved-sensitivity bug (empirical {:.4} <= {:.4} * {:.4})",
            control.empirical_epsilon, control.slack, control.declared_epsilon
        );
        std::process::exit(1);
    }
    println!("statcheck: all mechanisms within budget, auditor teeth verified");
}
