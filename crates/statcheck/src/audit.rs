//! Empirical DP auditor: a lower bound on the privacy loss a mechanism
//! actually incurs, measured from its outputs.
//!
//! ## Method
//!
//! ε-DP says: for *every* pair of neighboring datasets `D ~ D'` and
//! every output set `S`, `P[M(D) ∈ S] ≤ e^ε · P[M(D') ∈ S]`. The
//! auditor attacks the definition directly:
//!
//! 1. craft the neighboring pair — two histograms differing by one
//!    record in one cell (the canonical sensitivity-1 neighbors every
//!    `Publish1d` method in this workspace calibrates against);
//! 2. run the mechanism on both inputs over many seeded trials (trial
//!    `t` on input `D` draws from `parkit::stream_rng(base_seed, 1, t)`
//!    and on `D'` from stream 2, so the audit is deterministic and the
//!    two output samples are independent);
//! 3. project each output to a scalar (the published count of the
//!    differing cell — projection is post-processing, so the projected
//!    mechanism is at most as private as the real one and any violation
//!    found here is a violation of the full release);
//! 4. histogram both samples over a common grid and, per bin, form a
//!    conservative **lower confidence bound** on `|ln(p_D(bin) /
//!    p_D'(bin))|`: the smoothed log-ratio minus `z` standard errors.
//!    The empirical ε is the maximum over bins, in both directions.
//!
//! A correct ε-DP mechanism keeps every bin's true log-ratio within
//! ±ε, so the lower bound stays below ε (the `z·se` subtraction absorbs
//! sampling noise; the `slack` factor in [`AuditResult::passes`]
//! absorbs what little remains). A mechanism that spends its budget
//! twice or calibrates to half the true sensitivity — [`BrokenLaplace`]
//! — concentrates bins at log-ratio 2ε, which no amount of slack under
//! 2 forgives. This is the Laplace geometry: with outputs centered at
//! `c` and `c + 1`, every bin entirely outside `[c, c+1]` has density
//! ratio exactly `e^{1/b}`, so roughly half of each sample sits in bins
//! that witness the mechanism's true loss.

use dphist::Publish1d;
use dpmech::{Epsilon, Laplace};
use rngkit::RngCore;

/// Streams feeding the two arms of the audit; disjoint from the
/// workspace's pipeline streams by construction (the audit never runs
/// inside a synthesis).
const STREAM_D: u64 = 1;
const STREAM_D_PRIME: u64 = 2;

/// Additive smoothing applied to every bin count before forming ratios:
/// keeps empty bins finite and biases extreme ratios toward zero, which
/// is the conservative direction for a lower bound.
const SMOOTHING: f64 = 0.5;

/// Standard errors subtracted from each bin's log-ratio. Two-sided
/// z = 2 keeps the per-bin false-alarm rate ≈ 2.3% before the max; the
/// qualification threshold and slack absorb the rest.
const Z: f64 = 2.0;

/// Configuration of one audit run.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Declared privacy budget of the mechanism under audit.
    pub epsilon: f64,
    /// Trials per arm. Smoke tiers use ~1–2k; deep sweeps 10k+.
    pub trials: usize,
    /// Cells in the crafted input histograms.
    pub cells: usize,
    /// Per-cell count of the base input; `D'` adds one record to cell 0.
    pub base_count: f64,
    /// Bins of the common output histogram.
    pub bins: usize,
    /// A bin only competes for the max when its *pooled* (smoothed)
    /// count across both arms reaches this many observations — ratios
    /// from nearly-empty bins are folklore, not evidence.
    pub min_pooled: f64,
    /// Base seed; the audit is a pure function of it.
    pub base_seed: u64,
    /// Multiplicative slack on the declared ε before the audit fails:
    /// `empirical_epsilon ≤ slack · epsilon` passes. Must be < 2 to
    /// keep halved-sensitivity bugs detectable.
    pub slack: f64,
}

impl AuditConfig {
    /// Smoke-tier defaults at the given ε: fast enough to run every
    /// registered margin method in CI, sensitive enough to flag a
    /// doubled privacy loss.
    pub fn smoke(epsilon: f64) -> Self {
        Self {
            epsilon,
            trials: 1_500,
            cells: 16,
            base_count: 20.0,
            bins: 24,
            min_pooled: 40.0,
            base_seed: 0xA0D1_7001,
            slack: 1.35,
        }
    }

    /// Deep-sweep defaults (`STATCHECK_FULL=1`): 10× the trials, finer
    /// output grid, same decision rule.
    pub fn full(epsilon: f64) -> Self {
        Self {
            trials: 15_000,
            bins: 48,
            min_pooled: 120.0,
            ..Self::smoke(epsilon)
        }
    }
}

/// Outcome of one audit run.
#[derive(Debug, Clone)]
pub struct AuditResult {
    /// Name of the audited mechanism.
    pub mechanism: String,
    /// The ε the mechanism claims to spend.
    pub declared_epsilon: f64,
    /// Empirical lower bound on the privacy loss observed.
    pub empirical_epsilon: f64,
    /// Number of bins that met the pooled-count qualification.
    pub qualified_bins: usize,
    /// Trials per arm actually run.
    pub trials: usize,
    /// The slack factor the pass/fail verdict used.
    pub slack: f64,
}

impl AuditResult {
    /// Whether the mechanism stayed within its declared budget:
    /// `empirical_epsilon ≤ slack · declared_epsilon`.
    pub fn passes(&self) -> bool {
        self.empirical_epsilon <= self.slack * self.declared_epsilon
    }

    /// Headroom before failure: `slack · declared − empirical`.
    /// Negative exactly when the audit fails; shrinking margins across
    /// bench snapshots are an early regression signal.
    pub fn margin(&self) -> f64 {
        self.slack * self.declared_epsilon - self.empirical_epsilon
    }
}

/// Audits any scalar mechanism: `observe(input, rng)` must run the
/// mechanism on `input` with randomness from `rng` and return the
/// scalar observable. See the module docs for the method.
///
/// # Panics
/// Panics on a degenerate config (`trials == 0`, `bins < 2`,
/// `cells == 0`, non-positive ε) or a non-finite observable.
pub fn audit_mechanism(
    name: &str,
    cfg: &AuditConfig,
    mut observe: impl FnMut(&[f64], &mut dyn RngCore) -> f64,
) -> AuditResult {
    assert!(cfg.trials > 0, "audit needs trials");
    assert!(cfg.bins >= 2, "audit needs at least two output bins");
    assert!(cfg.cells > 0, "audit needs at least one input cell");
    assert!(
        cfg.epsilon.is_finite() && cfg.epsilon > 0.0,
        "declared epsilon must be positive"
    );
    let d: Vec<f64> = vec![cfg.base_count; cfg.cells];
    let mut d_prime = d.clone();
    d_prime[0] += 1.0; // the one extra record

    let mut run = |input: &[f64], stream: u64| -> Vec<f64> {
        (0..cfg.trials)
            .map(|t| {
                let mut rng = parkit::stream_rng(cfg.base_seed, stream, t as u64);
                let y = observe(input, &mut rng);
                assert!(y.is_finite(), "{name}: non-finite observable {y}");
                y
            })
            .collect()
    };
    let ys_d = run(&d, STREAM_D);
    let ys_dp = run(&d_prime, STREAM_D_PRIME);

    // Common grid over the central mass of the pooled samples: clamping
    // the extremes into the edge bins is post-processing, so it cannot
    // manufacture a violation, and it keeps one wild draw from
    // stretching the grid until every bin is empty.
    let mut pooled: Vec<f64> = ys_d.iter().chain(&ys_dp).copied().collect();
    pooled.sort_by(|a, b| a.partial_cmp(b).expect("finite observables"));
    let q = |p: f64| pooled[((pooled.len() - 1) as f64 * p).round() as usize];
    let (lo, hi) = (q(0.005), q(0.995));
    let width = (hi - lo).max(f64::MIN_POSITIVE);
    let bin_of = |y: f64| {
        let z = ((y - lo) / width * cfg.bins as f64).floor();
        (z.max(0.0) as usize).min(cfg.bins - 1)
    };
    let mut counts_d = vec![0.0_f64; cfg.bins];
    let mut counts_dp = vec![0.0_f64; cfg.bins];
    for &y in &ys_d {
        counts_d[bin_of(y)] += 1.0;
    }
    for &y in &ys_dp {
        counts_dp[bin_of(y)] += 1.0;
    }

    let mut empirical: f64 = 0.0;
    let mut qualified = 0usize;
    for (&ca, &cb) in counts_d.iter().zip(&counts_dp) {
        let (a, b) = (ca + SMOOTHING, cb + SMOOTHING);
        if a + b < cfg.min_pooled {
            continue;
        }
        qualified += 1;
        let se = (1.0 / a + 1.0 / b).sqrt();
        let lcb = (a / b).ln().abs() - Z * se;
        empirical = empirical.max(lcb.max(0.0));
    }
    AuditResult {
        mechanism: name.to_string(),
        declared_epsilon: cfg.epsilon,
        empirical_epsilon: empirical,
        qualified_bins: qualified,
        trials: cfg.trials,
        slack: cfg.slack,
    }
}

/// Audits a [`Publish1d`] margin method: the observable is the
/// published count of the cell the neighboring inputs differ in.
///
/// # Panics
/// Panics when the declared ε in `cfg` is not a valid [`Epsilon`], or
/// on the degenerate configs [`audit_mechanism`] rejects.
pub fn audit_publisher(publisher: &dyn Publish1d, cfg: &AuditConfig) -> AuditResult {
    let eps = Epsilon::new(cfg.epsilon).expect("declared epsilon must be valid");
    audit_mechanism(publisher.name(), cfg, |input, rng| {
        publisher.publish(input, eps, rng)[0]
    })
}

/// A deliberately broken Laplace release: calibrates its noise to half
/// the true L1 sensitivity (`b = 1/(2ε)` instead of `1/ε`), the
/// signature of a wrong-sensitivity or double-spent-budget bug. Its
/// true privacy loss is 2ε; the auditor must flag it, which is the
/// standing self-test that the harness has teeth.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrokenLaplace;

impl Publish1d for BrokenLaplace {
    fn publish(&self, counts: &[f64], epsilon: Epsilon, rng: &mut dyn RngCore) -> Vec<f64> {
        let lap = Laplace::new(0.0, 1.0 / (2.0 * epsilon.value())).expect("eps > 0");
        counts.iter().map(|&c| c + lap.sample(rng)).collect()
    }

    fn name(&self) -> &'static str {
        "broken-laplace-half-sensitivity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphist::MarginRegistry;

    #[test]
    fn correct_laplace_passes_and_broken_fails() {
        let cfg = AuditConfig::smoke(1.0);
        let registry = MarginRegistry::builtin();
        let identity = registry.get("identity").unwrap();
        let ok = audit_publisher(identity.as_ref(), &cfg);
        assert!(
            ok.passes(),
            "identity flagged: empirical {} vs declared {}",
            ok.empirical_epsilon,
            ok.declared_epsilon
        );
        let bad = audit_publisher(&BrokenLaplace, &cfg);
        assert!(
            !bad.passes(),
            "broken Laplace slipped through: empirical {} ≤ {} · {}",
            bad.empirical_epsilon,
            bad.slack,
            bad.declared_epsilon
        );
        // The broken release reads close to its true loss of 2ε.
        assert!(
            bad.empirical_epsilon > 1.5 * cfg.epsilon,
            "empirical {} not near 2ε",
            bad.empirical_epsilon
        );
        assert!(bad.margin() < 0.0 && ok.margin() > 0.0);
    }

    #[test]
    fn audit_is_deterministic_in_the_seed() {
        let cfg = AuditConfig {
            trials: 400,
            ..AuditConfig::smoke(0.8)
        };
        let a = audit_publisher(&BrokenLaplace, &cfg);
        let b = audit_publisher(&BrokenLaplace, &cfg);
        assert_eq!(a.empirical_epsilon, b.empirical_epsilon);
        let other = AuditConfig {
            base_seed: cfg.base_seed + 1,
            ..cfg
        };
        let c = audit_publisher(&BrokenLaplace, &other);
        assert_ne!(a.empirical_epsilon, c.empirical_epsilon);
    }

    #[test]
    fn generic_mechanism_hook_audits_closures() {
        // A non-private "mechanism" that publishes the exact count:
        // neighboring inputs are perfectly distinguishable, so the
        // empirical bound must blow well past any reasonable ε.
        let cfg = AuditConfig {
            trials: 300,
            ..AuditConfig::smoke(1.0)
        };
        let leak = audit_mechanism("exact-release", &cfg, |input, _| input[0]);
        assert!(!leak.passes(), "exact release must fail its audit");
        assert!(leak.empirical_epsilon > 2.0, "{}", leak.empirical_epsilon);
    }
}
