//! Monotone-trend assertions for error-vs-ε sweeps.
//!
//! Point values of a DP release are noise; asserting them makes tests
//! flaky or meaningless. What the theory *does* pin — for every
//! mechanism in this workspace — is the direction: more budget, less
//! error. A sweep at fixed seeds is deterministic, so "the error
//! sequence trends down" is a stable assertion that still binds the
//! statistics (a double-spent budget or mis-scaled noise shifts the
//! whole curve and usually flattens or inverts it).

/// Ordinary-least-squares slope of `ys` against the index `0..n`.
/// Returns 0 for fewer than two points.
pub fn ols_slope(ys: &[f64]) -> f64 {
    let n = ys.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let x_mean = (nf - 1.0) / 2.0;
    let y_mean = ys.iter().sum::<f64>() / nf;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in ys.iter().enumerate() {
        let dx = i as f64 - x_mean;
        num += dx * (y - y_mean);
        den += dx * dx;
    }
    num / den
}

/// Whether `ys` (error at increasing ε, in sweep order) trends down:
/// the final value must improve on the first *and* the OLS slope must be
/// negative. Tolerating interior wobble — adjacent ε levels of a noisy
/// method may invert — while still rejecting flat or rising curves is
/// exactly the seed-stable contract acceptance tests need.
pub fn is_decreasing_trend(ys: &[f64]) -> bool {
    ys.len() >= 2 && ys[ys.len() - 1] < ys[0] && ols_slope(ys) < 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_a_line_is_exact() {
        let ys = [7.0, 5.0, 3.0, 1.0];
        assert!((ols_slope(&ys) + 2.0).abs() < 1e-12);
        assert_eq!(ols_slope(&[1.0]), 0.0);
    }

    #[test]
    fn trend_tolerates_wobble_but_rejects_flat_and_rising() {
        assert!(is_decreasing_trend(&[10.0, 11.0, 4.0, 2.0]));
        assert!(is_decreasing_trend(&[5.0, 1.0]));
        assert!(!is_decreasing_trend(&[2.0, 2.0, 2.0]));
        assert!(!is_decreasing_trend(&[1.0, 2.0, 3.0]));
        // Last below first but overall rising mass: slope decides.
        assert!(!is_decreasing_trend(&[5.0, 1.0, 9.0, 4.9]));
        assert!(!is_decreasing_trend(&[1.0]));
    }
}
