//! # statcheck — statistical acceptance harness + empirical DP auditor
//!
//! Every other test tier in this workspace pins *determinism*:
//! bit-identical fan-out, `.dpcm` round-trips, seed-stable releases.
//! None of it verifies the *statistics* — that Laplace noise has the
//! promised scale, that published margins and repaired correlation
//! matrices actually converge on the truth as ε grows, or that a
//! mechanism doesn't leak more than its declared budget. DPCopula's
//! whole evaluation (Li et al., EDBT 2014, Figs 3–11) is statistical,
//! and empirical privacy audits of exactly this copula pipeline have
//! found real leakage in published variants — the class of bug this
//! crate exists to catch in CI.
//!
//! Three layers, all deterministic given a base seed (randomness flows
//! exclusively through [`parkit::stream_rng`]):
//!
//! * [`gof`] — goodness-of-fit primitives: one-sample
//!   Kolmogorov–Smirnov, chi-square against expected counts, and a
//!   rank-correlation recovery metric, with critical values computed
//!   in-crate (no external tables or deps) and pinned by golden tests;
//! * [`audit`] — the empirical DP auditor: runs any
//!   [`dphist::Publish1d`] (or any scalar mechanism) on crafted
//!   neighboring datasets over many seeded trials, histograms the
//!   outputs, and computes an empirical privacy-loss **lower bound**
//!   that must stay below the declared ε (times a small slack). A
//!   mechanism that double-spends its budget or mis-states its
//!   sensitivity — modelled by [`audit::BrokenLaplace`], which
//!   calibrates noise to half the true sensitivity — reads ≈ 2ε and is
//!   flagged;
//! * [`trend`] — monotone-trend assertions (error must *shrink* as ε
//!   grows) so acceptance tests bind the direction of the statistics,
//!   which is stable under the fixed seeds, instead of point values,
//!   which are not.
//!
//! The `statcheck` binary sweeps every method in
//! [`dphist::MarginRegistry`] through the auditor, verifies the broken
//! mechanism is caught, and emits `BENCH_statcheck.json` with
//! per-mechanism empirical-ε margins; `scripts/ci.sh` runs it as a fast
//! smoke tier and `STATCHECK_FULL=1` (or `scripts/statcheck_full.sh`)
//! deepens the trial counts. The tier-2 acceptance sweeps live in
//! `tests/acceptance.rs`.

#![warn(missing_docs)]

pub mod audit;
pub mod gof;
pub mod report;
pub mod trend;

pub use audit::{audit_mechanism, audit_publisher, AuditConfig, AuditResult, BrokenLaplace};
pub use gof::{
    chi_square_critical, chi_square_statistic, correlation_mean_abs_error, ks_critical,
    ks_statistic,
};
pub use trend::{is_decreasing_trend, ols_slope};
