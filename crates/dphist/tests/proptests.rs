//! Property-based tests for the DP histogram substrate: structural
//! invariants of range sums, the lazy Privelet+ decomposition, the prefix
//! grid, and the publication algorithms' shape contracts.

use dphist::efpa::Efpa;
use dphist::histogram::{scan_range_count, Histogram1D, HistogramNd};
use dphist::php::Php;
use dphist::prefix::PrefixGrid;
use dphist::privelet::{Privelet1d, PriveletPlus};
use dphist::{DimRange, Publish1d, RangeCountEstimator};
use dpmech::Epsilon;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use testkit::prop::{just, vec, Gen, IntoGen};
use testkit::{prop_assert, prop_assert_eq, property_tests};

/// A small random dataset: up to 3 dimensions, domains up to 16.
fn dataset() -> Gen<(Vec<Vec<u32>>, Vec<usize>)> {
    (1usize..4, 2usize..17, 1usize..60)
        .into_gen()
        .flat_map(|(dims, domain, n)| {
            (
                vec(vec(0u32..domain as u32, n), dims),
                just(vec![domain; dims]),
            )
                .into_gen()
        })
}

/// A random query over the given domains.
fn query_for(domains: &[usize], seed: u64) -> Vec<DimRange> {
    use rngkit::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    domains
        .iter()
        .map(|&d| {
            let a = rng.gen_range(0..d as u32);
            let b = rng.gen_range(0..d as u32);
            (a.min(b), a.max(b))
        })
        .collect()
}

property_tests! {
    fn histogram_range_sum_matches_scan((cols, domains) in dataset(), qseed in 0u64..500) {
        let h = HistogramNd::from_columns(&cols, &domains);
        let q = query_for(&domains, qseed);
        prop_assert!((h.range_sum(&q) - scan_range_count(&cols, &q)).abs() < 1e-9);
    }

    fn prefix_grid_matches_histogram((cols, domains) in dataset(), qseed in 0u64..500) {
        let h = HistogramNd::from_columns(&cols, &domains);
        let p = PrefixGrid::from_histogram(&h);
        let q = query_for(&domains, qseed);
        prop_assert!((p.range_sum(&q) - h.range_sum(&q)).abs() < 1e-9);
    }

    fn marginals_sum_to_total((cols, domains) in dataset()) {
        let h = HistogramNd::from_columns(&cols, &domains);
        for dim in 0..domains.len() {
            let m = h.marginal(dim);
            prop_assert!((m.total() - h.total()).abs() < 1e-9);
        }
    }

    fn publishers_preserve_length(
        counts in vec(0.0f64..500.0, 1..200),
        seed in 0u64..100,
    ) {
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(Efpa.publish(&counts, eps, &mut rng).len(), counts.len());
        prop_assert_eq!(Privelet1d.publish(&counts, eps, &mut rng).len(), counts.len());
        prop_assert_eq!(Php::default().publish(&counts, eps, &mut rng).len(), counts.len());
    }

    fn lazy_privelet_with_huge_budget_matches_truth(
        (cols, domains) in dataset(),
        qseed in 0u64..200,
    ) {
        // At eps = 1e6 the noise is negligible: the lazy decomposition must
        // reproduce the exact count for any query.
        let mut p = PriveletPlus::publish(
            cols.clone(),
            &domains,
            Epsilon::new(1e6).unwrap(),
            qseed,
        );
        let q = query_for(&domains, qseed);
        let truth = scan_range_count(&cols, &q);
        prop_assert!(
            (p.range_count(&q) - truth).abs() < 1e-3,
            "estimate {} vs truth {}", p.range_count(&q), truth
        );
    }

    fn lazy_privelet_is_deterministic_per_release(
        (cols, domains) in dataset(),
        qseed in 0u64..200,
    ) {
        let mut p1 = PriveletPlus::publish(cols.clone(), &domains, Epsilon::new(0.5).unwrap(), 7);
        let mut p2 = PriveletPlus::publish(cols, &domains, Epsilon::new(0.5).unwrap(), 7);
        let q = query_for(&domains, qseed);
        prop_assert_eq!(p1.range_count(&q), p2.range_count(&q));
    }

    fn histogram_1d_range_sums_are_additive(
        values in vec(0u32..32, 1..100),
        split in 0u32..31,
    ) {
        let h = Histogram1D::from_values(&values, 32);
        let left = h.range_sum(0, split);
        let right = h.range_sum(split + 1, 31);
        prop_assert!((left + right - h.total()).abs() < 1e-9);
    }
}
