//! N-dimensional summed-area table (prefix-sum grid) for O(2^d) range
//! sums over materialised noisy histograms.
//!
//! P-HP and the identity baseline release a full noisy grid; answering a
//! single large range query by summation would touch up to half the cells
//! (5·10^7 for the US census grid), so workloads of 1000 queries need the
//! classic inclusion–exclusion trick instead.

use crate::histogram::HistogramNd;
use crate::{DimRange, RangeCountEstimator};

/// Prefix-sum grid: `sums[flat(i_1..i_d)] = sum of counts over the box
/// `[0..=i_1] x ... x [0..=i_d]`.
#[derive(Debug, Clone)]
pub struct PrefixGrid {
    domains: Vec<usize>,
    strides: Vec<usize>,
    sums: Vec<f64>,
}

impl PrefixGrid {
    /// Builds the table from a (noisy) histogram in `O(d * cells)`.
    pub fn from_histogram(h: &HistogramNd) -> Self {
        let domains = h.domains().to_vec();
        let mut strides = vec![1usize; domains.len()];
        for i in (0..domains.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * domains[i + 1];
        }
        let mut sums = h.counts().to_vec();
        // Running sums along each axis in turn.
        let cells = sums.len();
        for (dim, (&stride, &domain)) in strides.iter().zip(&domains).enumerate() {
            let _ = dim;
            if domain == 1 {
                continue;
            }
            // For every cell whose index along `dim` is > 0, add the
            // predecessor along `dim`.
            let block = stride * domain; // size of one full axis span
            let mut base = 0;
            while base < cells {
                for offset in 0..stride {
                    let mut idx = base + offset + stride;
                    let end = base + block;
                    while idx < end {
                        sums[idx] += sums[idx - stride];
                        idx += stride;
                    }
                }
                base += block;
            }
        }
        Self {
            domains,
            strides,
            sums,
        }
    }

    /// Prefix value at the (clipped, inclusive) corner; `None` for an
    /// all-before-origin corner (contributes 0).
    fn corner(&self, idx: &[i64]) -> f64 {
        let mut flat = 0usize;
        for ((&i, &stride), &domain) in idx.iter().zip(&self.strides).zip(&self.domains) {
            if i < 0 {
                return 0.0;
            }
            let i = (i as usize).min(domain - 1);
            flat += i * stride;
        }
        self.sums[flat]
    }

    /// Range sum over the hyper-rectangle by inclusion–exclusion in
    /// `O(2^d)`.
    pub fn range_sum(&self, query: &[DimRange]) -> f64 {
        assert_eq!(query.len(), self.domains.len(), "query arity mismatch");
        for &(lo, hi) in query {
            if lo > hi {
                return 0.0;
            }
        }
        let d = query.len();
        let mut total = 0.0;
        let mut corner = vec![0i64; d];
        for mask in 0..(1u32 << d) {
            let mut sign = 1.0;
            for (j, &(lo, hi)) in query.iter().enumerate() {
                if mask & (1 << j) != 0 {
                    corner[j] = i64::from(lo) - 1;
                    sign = -sign;
                } else {
                    corner[j] = i64::from(hi);
                }
            }
            total += sign * self.corner(&corner);
        }
        total
    }
}

impl RangeCountEstimator for PrefixGrid {
    fn range_count(&mut self, query: &[DimRange]) -> f64 {
        self.range_sum(query)
    }

    fn dims(&self) -> usize {
        self.domains.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::{Rng, SeedableRng};

    #[test]
    fn matches_direct_range_sum_1d() {
        let cols = vec![vec![0u32, 1, 1, 3, 3, 3]];
        let h = HistogramNd::from_columns(&cols, &[4]);
        let p = PrefixGrid::from_histogram(&h);
        for lo in 0..4u32 {
            for hi in lo..4u32 {
                assert_eq!(p.range_sum(&[(lo, hi)]), h.range_sum(&[(lo, hi)]));
            }
        }
    }

    #[test]
    fn matches_direct_range_sum_3d_random() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 500;
        let domains = [5usize, 7, 3];
        let cols: Vec<Vec<u32>> = domains
            .iter()
            .map(|&d| (0..n).map(|_| rng.gen_range(0..d as u32)).collect())
            .collect();
        let h = HistogramNd::from_columns(&cols, &domains);
        let p = PrefixGrid::from_histogram(&h);
        for _ in 0..200 {
            let q: Vec<DimRange> = domains
                .iter()
                .map(|&d| {
                    let a = rng.gen_range(0..d as u32);
                    let b = rng.gen_range(0..d as u32);
                    (a.min(b), a.max(b))
                })
                .collect();
            let direct = h.range_sum(&q);
            let fast = p.range_sum(&q);
            assert!((direct - fast).abs() < 1e-9, "query {q:?}");
        }
    }

    #[test]
    fn clips_out_of_domain_queries() {
        let cols = vec![vec![0u32, 1], vec![0u32, 1]];
        let h = HistogramNd::from_columns(&cols, &[2, 2]);
        let p = PrefixGrid::from_histogram(&h);
        assert_eq!(p.range_sum(&[(0, 100), (0, 100)]), 2.0);
        assert_eq!(p.range_sum(&[(1, 0), (0, 1)]), 0.0);
    }

    #[test]
    fn works_with_negative_noisy_counts() {
        let mut h = HistogramNd::zeros(&[2, 2]);
        h.counts_mut().copy_from_slice(&[1.0, -2.0, 3.0, -4.0]);
        let p = PrefixGrid::from_histogram(&h);
        assert!((p.range_sum(&[(0, 1), (0, 1)]) + 2.0).abs() < 1e-12);
        assert!((p.range_sum(&[(1, 1), (1, 1)]) + 4.0).abs() < 1e-12);
    }
}
