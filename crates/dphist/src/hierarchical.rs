//! Hay's hierarchical histogram with consistency ("Boosting the accuracy
//! of differentially-private histograms through consistency", Hay,
//! Rastogi, Miklau, Suciu; VLDB 2010) — reference \[19\] of the DPCopula
//! paper and another drop-in choice for its DP margins.
//!
//! A binary tree is built over the (power-of-two padded) bins; every node
//! count is released with `Lap(height / epsilon)` (one record touches one
//! node per level, so the tree has L1 sensitivity = height). The noisy
//! tree is then projected onto the consistent subspace (children summing
//! to parents) by Hay's closed-form two-pass least-squares, which is what
//! "boosts" the accuracy: consistent leaves have variance `O(height^3)`
//! better than naive leaves for range queries.

use crate::Publish1d;
use dpmech::{laplace_noise, Epsilon};
use mathkit::wavelet::pad_to_pow2;
use rngkit::RngCore;

/// Hay's hierarchical method (binary fan-out).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hierarchical;

/// Index helpers for an implicit perfect binary tree stored as a heap:
/// root at 1, children of `v` at `2v`/`2v+1`; leaves at `pad..2*pad`.
fn leaf_count(v: usize, pad: usize) -> usize {
    // Total leaves divided by the number of nodes at v's depth.
    let depth = usize::BITS - 1 - v.leading_zeros();
    pad >> depth
}

impl Publish1d for Hierarchical {
    fn publish(&self, counts: &[f64], epsilon: Epsilon, rng: &mut dyn RngCore) -> Vec<f64> {
        if counts.is_empty() {
            return Vec::new();
        }
        let (padded, orig_len) = pad_to_pow2(counts);
        let pad = padded.len();
        if pad == 1 {
            return vec![counts[0] + laplace_noise(rng, 1.0 / epsilon.value())];
        }
        let levels = pad.trailing_zeros() as usize + 1; // root..leaves

        // Exact node sums, heap-indexed (index 0 unused).
        let mut exact = vec![0.0; 2 * pad];
        exact[pad..(pad + pad)].copy_from_slice(&padded);
        for v in (1..pad).rev() {
            exact[v] = exact[2 * v] + exact[2 * v + 1];
        }

        // Noisy tree: scale = levels / epsilon.
        let scale = levels as f64 / epsilon.value();
        let z: Vec<f64> = exact
            .iter()
            .enumerate()
            .map(|(v, &c)| {
                if v == 0 {
                    0.0
                } else {
                    c + laplace_noise(rng, scale)
                }
            })
            .collect();

        // Pass 1 (bottom-up): weighted combination of own noisy count and
        // children's adjusted sums. For a node whose subtree has l levels
        // (leaf: l = 1):
        //   z~[v] = (2^l - 2^(l-1)) / (2^l - 1) * z[v]
        //         + (2^(l-1) - 1) / (2^l - 1) * (z~[2v] + z~[2v+1]).
        let mut zt = vec![0.0; 2 * pad];
        for v in (1..2 * pad).rev() {
            let m = leaf_count(v, pad); // leaves under v = 2^(l-1)
            if m == 1 {
                zt[v] = z[v];
            } else {
                let two_l = 2.0 * m as f64; // 2^l
                let half = m as f64; // 2^(l-1)
                zt[v] = ((two_l - half) * z[v] + (half - 1.0) * (zt[2 * v] + zt[2 * v + 1]))
                    / (two_l - 1.0);
            }
        }

        // Pass 2 (top-down): enforce children-sum-to-parent.
        //   h[root] = z~[root];
        //   h[v] = z~[v] + (h[parent] - z~[sibling] - z~[v]) / 2.
        let mut h = vec![0.0; 2 * pad];
        h[1] = zt[1];
        for v in 2..2 * pad {
            let parent = v / 2;
            let sibling = v ^ 1;
            h[v] = zt[v] + (h[parent] - zt[v] - zt[sibling]) / 2.0;
        }

        let mut out = h[pad..(pad + pad)].to_vec();
        out.truncate(orig_len);
        out
    }

    fn name(&self) -> &'static str {
        "hierarchical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram1D;
    use crate::identity::Identity;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn leaf_counts() {
        assert_eq!(leaf_count(1, 8), 8); // root
        assert_eq!(leaf_count(2, 8), 4);
        assert_eq!(leaf_count(3, 8), 4);
        assert_eq!(leaf_count(7, 8), 2);
        assert_eq!(leaf_count(8, 8), 1); // first leaf
        assert_eq!(leaf_count(15, 8), 1); // last leaf
    }

    #[test]
    fn output_length_and_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Hierarchical
            .publish(&[], Epsilon::new(1.0).unwrap(), &mut rng)
            .is_empty());
        assert_eq!(
            Hierarchical
                .publish(&[7.0], Epsilon::new(1.0).unwrap(), &mut rng)
                .len(),
            1
        );
        assert_eq!(
            Hierarchical
                .publish(&vec![1.0; 100], Epsilon::new(1.0).unwrap(), &mut rng)
                .len(),
            100
        );
    }

    #[test]
    fn high_budget_reconstructs() {
        let counts: Vec<f64> = (0..64).map(|i| f64::from(i % 9) * 20.0).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let out = Hierarchical.publish(&counts, Epsilon::new(200.0).unwrap(), &mut rng);
        let max_err = out
            .iter()
            .zip(&counts)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(max_err < 2.0, "max err {max_err}");
    }

    #[test]
    fn consistency_holds_after_projection() {
        // Reconstruct the tree from the output leaves: range sums over
        // dyadic blocks must be internally consistent by construction;
        // check the stronger statement that consistent leaf noise reduces
        // large-range variance vs the identity baseline.
        let counts = vec![50.0; 256];
        let eps = Epsilon::new(0.2).unwrap();
        let trials = 60;
        let mut rng = StdRng::seed_from_u64(3);
        let sd_of = |publisher: &dyn Fn(&mut StdRng) -> Vec<f64>, rng: &mut StdRng| {
            let errs: Vec<f64> = (0..trials)
                .map(|_| {
                    let noisy = publisher(rng);
                    let h = Histogram1D::from_counts(noisy);
                    h.range_sum(0, 255) - 256.0 * 50.0
                })
                .collect();
            let m = errs.iter().sum::<f64>() / errs.len() as f64;
            (errs.iter().map(|e| (e - m).powi(2)).sum::<f64>() / errs.len() as f64).sqrt()
        };
        let sd_hier = sd_of(&|r| Hierarchical.publish(&counts, eps, r), &mut rng);
        let sd_id = sd_of(&|r| Identity.publish(&counts, eps, r), &mut rng);
        // Full-range query: identity sums 256 noise terms (sd ~ 16 lam);
        // the consistent root estimate concentrates far below that.
        assert!(
            sd_hier < sd_id / 2.0,
            "hierarchical sd {sd_hier} vs identity sd {sd_id}"
        );
    }

    #[test]
    fn noise_scales_inversely_with_budget() {
        let counts = vec![10.0; 128];
        let mut rng = StdRng::seed_from_u64(4);
        let l1 = |eps: f64, rng: &mut StdRng| -> f64 {
            Hierarchical
                .publish(&counts, Epsilon::new(eps).unwrap(), rng)
                .iter()
                .zip(&counts)
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        let loose: f64 = (0..5).map(|_| l1(20.0, &mut rng)).sum();
        let tight: f64 = (0..5).map(|_| l1(0.05, &mut rng)).sum();
        assert!(tight > 10.0 * loose, "tight {tight} loose {loose}");
    }
}
