//! The identity ("Dwork") baseline: independent Laplace noise on every bin.
//!
//! Publishing a full histogram has L1 sensitivity 1 under add/remove-one
//! neighbouring (one record lands in exactly one bin), so each bin gets
//! `Lap(1/epsilon)` noise. Works well in low dimensions, drowns sparse
//! high-dimensional histograms in noise — which is exactly the failure mode
//! DPCopula is designed around (§1 of the paper).

use crate::histogram::HistogramNd;
use crate::{DimRange, Publish1d, RangeCountEstimator};
use dpmech::{Epsilon, LaplaceMechanism};
use rngkit::{Rng, RngCore};

/// The Laplace-per-bin baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Publish1d for Identity {
    fn publish(&self, counts: &[f64], epsilon: Epsilon, rng: &mut dyn RngCore) -> Vec<f64> {
        LaplaceMechanism::new(epsilon, 1.0).release_vec(counts, rng)
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// A materialised noisy N-D histogram answering range counts by summation.
#[derive(Debug, Clone)]
pub struct NoisyGrid {
    hist: HistogramNd,
}

impl NoisyGrid {
    /// Publishes the full grid with `Lap(1/epsilon)` per cell.
    pub fn publish<R: Rng + ?Sized>(exact: &HistogramNd, epsilon: Epsilon, rng: &mut R) -> Self {
        let mech = LaplaceMechanism::new(epsilon, 1.0);
        let mut hist = exact.clone();
        for c in hist.counts_mut() {
            *c = mech.release(*c, rng);
        }
        Self { hist }
    }

    /// Access to the noisy grid.
    pub fn histogram(&self) -> &HistogramNd {
        &self.hist
    }
}

impl RangeCountEstimator for NoisyGrid {
    fn range_count(&mut self, query: &[DimRange]) -> f64 {
        self.hist.range_sum(query)
    }

    fn dims(&self) -> usize {
        self.hist.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn preserves_length_and_roughly_counts() {
        let counts = vec![100.0, 0.0, 50.0, 25.0];
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = Identity.publish(&counts, Epsilon::new(1.0).unwrap(), &mut rng);
        assert_eq!(noisy.len(), 4);
        for (n, c) in noisy.iter().zip(&counts) {
            assert!((n - c).abs() < 25.0, "noise unexpectedly large: {n} vs {c}");
        }
    }

    #[test]
    fn noise_shrinks_with_budget() {
        let counts = vec![0.0; 2000];
        let mut rng = StdRng::seed_from_u64(2);
        let loose = Identity.publish(&counts, Epsilon::new(10.0).unwrap(), &mut rng);
        let tight = Identity.publish(&counts, Epsilon::new(0.1).unwrap(), &mut rng);
        let mad = |v: &[f64]| v.iter().map(|x| x.abs()).sum::<f64>() / v.len() as f64;
        assert!(mad(&tight) > 20.0 * mad(&loose));
    }

    #[test]
    fn noisy_grid_answers_queries() {
        let cols = vec![vec![0u32, 0, 1, 1, 1], vec![0u32, 1, 0, 1, 1]];
        let exact = HistogramNd::from_columns(&cols, &[2, 2]);
        let mut rng = StdRng::seed_from_u64(3);
        // Large budget: answers should be near exact.
        let mut grid = NoisyGrid::publish(&exact, Epsilon::new(100.0).unwrap(), &mut rng);
        let q = vec![(1u32, 1u32), (0u32, 1u32)];
        assert!((grid.range_count(&q) - 3.0).abs() < 0.5);
        assert_eq!(grid.dims(), 2);
    }
}
