//! StructureFirst (Xu, Zhang, Xiao, Yang, Yu; ICDE 2012) — the companion
//! of [`crate::noisefirst`] in reference \[41\] of the DPCopula paper and
//! the last §4.1-listed margin method.
//!
//! Where NoiseFirst perturbs first and merges as post-processing,
//! StructureFirst picks the histogram *structure* first, privately:
//! `k-1` segment boundaries are drawn one at a time with the exponential
//! mechanism (utility = negative total SSE of the resulting
//! segmentation, evaluated on the exact counts), then each segment's
//! total is released with Laplace noise and smeared uniformly.
//!
//! Budget: `structure_fraction * epsilon` for the boundary draws
//! (sequential composition across the `k-1` draws), the rest for the
//! segment counts (segments are disjoint: parallel composition).

use crate::Publish1d;
use dpmech::{exponential_mechanism, laplace_noise, Epsilon};
use rngkit::RngCore;

/// StructureFirst publication algorithm.
#[derive(Debug, Clone, Copy)]
pub struct StructureFirst {
    /// Number of segments (the paper tunes `k`; 32 is a solid default for
    /// the ~1000-bin margins of the evaluation).
    pub segments: usize,
    /// Fraction of the budget spent on structure selection.
    pub structure_fraction: f64,
}

impl Default for StructureFirst {
    fn default() -> Self {
        Self {
            segments: 32,
            structure_fraction: 0.5,
        }
    }
}

struct Prefix {
    sum: Vec<f64>,
    sq: Vec<f64>,
}

impl Prefix {
    fn new(v: &[f64]) -> Self {
        let mut sum = vec![0.0];
        let mut sq = vec![0.0];
        for &x in v {
            sum.push(sum.last().unwrap() + x);
            sq.push(sq.last().unwrap() + x * x);
        }
        Self { sum, sq }
    }

    /// SSE of fitting bins `[i, j)` by their mean (0 for empty).
    fn sse(&self, i: usize, j: usize) -> f64 {
        if j <= i {
            return 0.0;
        }
        let n = (j - i) as f64;
        let s = self.sum[j] - self.sum[i];
        let q = self.sq[j] - self.sq[i];
        (q - s * s / n).max(0.0)
    }

    fn range_sum(&self, i: usize, j: usize) -> f64 {
        self.sum[j] - self.sum[i]
    }
}

impl Publish1d for StructureFirst {
    fn publish(&self, counts: &[f64], epsilon: Epsilon, rng: &mut dyn RngCore) -> Vec<f64> {
        let b = counts.len();
        if b == 0 {
            return Vec::new();
        }
        let k = self.segments.clamp(1, b);
        if b == 1 || k == 1 {
            // Single segment: just a noisy average.
            let total: f64 = counts.iter().sum();
            let noisy = total + laplace_noise(rng, 1.0 / epsilon.value());
            return vec![noisy / b as f64; b];
        }
        let eps_structure = epsilon.fraction(self.structure_fraction.clamp(0.05, 0.95));
        let eps_counts =
            Epsilon::new(epsilon.value() - eps_structure.value()).expect("positive remainder");
        let eps_per_boundary = eps_structure.divide(k - 1);

        let prefix = Prefix::new(counts);

        // Greedy private boundary selection: repeatedly split the segment
        // whose best split reduces SSE most, choosing the split point with
        // the exponential mechanism. SSE has sensitivity <= 2 per record
        // change (one bin count moving by 1).
        let mut boundaries: Vec<usize> = vec![0, b]; // sorted cut positions
        for _ in 0..(k - 1) {
            // Candidate scores: for every interior position, the SSE of
            // the segmentation refined by a cut there.
            let base_sse: f64 = boundaries.windows(2).map(|w| prefix.sse(w[0], w[1])).sum();
            let mut scores = Vec::with_capacity(b - 1);
            let mut positions = Vec::with_capacity(b - 1);
            for cut in 1..b {
                if boundaries.binary_search(&cut).is_ok() {
                    continue;
                }
                let idx = boundaries.partition_point(|&x| x < cut);
                let (lo, hi) = (boundaries[idx - 1], boundaries[idx]);
                let gain = prefix.sse(lo, hi) - prefix.sse(lo, cut) - prefix.sse(cut, hi);
                scores.push(-(base_sse - gain).sqrt());
                positions.push(cut);
            }
            if positions.is_empty() {
                break;
            }
            let pick = exponential_mechanism(rng, &scores, eps_per_boundary, 2.0);
            let cut = positions[pick];
            let idx = boundaries.partition_point(|&x| x < cut);
            boundaries.insert(idx, cut);
        }

        // Noisy segment totals (disjoint: parallel composition) smeared
        // uniformly.
        let mut out = vec![0.0; b];
        let scale = 1.0 / eps_counts.value();
        for w in boundaries.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let total = prefix.range_sum(lo, hi) + laplace_noise(rng, scale);
            let avg = total / (hi - lo) as f64;
            for v in &mut out[lo..hi] {
                *v = avg;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "structurefirst"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    #[test]
    fn output_length_and_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(StructureFirst::default()
            .publish(&[], Epsilon::new(1.0).unwrap(), &mut rng)
            .is_empty());
        assert_eq!(
            StructureFirst::default()
                .publish(&[3.0], Epsilon::new(1.0).unwrap(), &mut rng)
                .len(),
            1
        );
    }

    #[test]
    fn finds_step_boundaries_with_generous_budget() {
        let mut counts = vec![100.0; 50];
        counts.extend(vec![0.0; 50]);
        counts.extend(vec![300.0; 28]);
        let mut rng = StdRng::seed_from_u64(2);
        let out = StructureFirst {
            segments: 8,
            structure_fraction: 0.5,
        }
        .publish(&counts, Epsilon::new(50.0).unwrap(), &mut rng);
        let l1: f64 = out.iter().zip(&counts).map(|(a, b)| (a - b).abs()).sum();
        let total: f64 = counts.iter().sum();
        assert!(l1 / total < 0.05, "relative L1 {}", l1 / total);
    }

    #[test]
    fn single_segment_is_a_flat_average() {
        let counts = vec![10.0, 20.0, 30.0, 40.0];
        let mut rng = StdRng::seed_from_u64(3);
        let out = StructureFirst {
            segments: 1,
            structure_fraction: 0.5,
        }
        .publish(&counts, Epsilon::new(100.0).unwrap(), &mut rng);
        assert!(out.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        assert!((out[0] - 25.0).abs() < 1.0);
    }

    #[test]
    fn total_mass_preserved_roughly() {
        let counts: Vec<f64> = (0..200).map(|i| f64::from(i % 13) * 5.0).collect();
        let total: f64 = counts.iter().sum();
        let mut rng = StdRng::seed_from_u64(4);
        let out = StructureFirst::default().publish(&counts, Epsilon::new(1.0).unwrap(), &mut rng);
        let noisy: f64 = out.iter().sum();
        // 32 segments each Lap(2): total sd ~ sqrt(32 * 8) ~ 16.
        assert!((noisy - total).abs() < 200.0, "total {noisy} vs {total}");
    }

    #[test]
    fn noise_scales_with_budget() {
        let counts = vec![50.0; 96];
        let mut rng = StdRng::seed_from_u64(5);
        let l1 = |eps: f64, rng: &mut StdRng| -> f64 {
            StructureFirst::default()
                .publish(&counts, Epsilon::new(eps).unwrap(), rng)
                .iter()
                .zip(&counts)
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        let loose: f64 = (0..5).map(|_| l1(50.0, &mut rng)).sum();
        let tight: f64 = (0..5).map(|_| l1(0.05, &mut rng)).sum();
        assert!(tight > loose, "tight {tight} loose {loose}");
    }
}
