//! EFPA-DCT: the EFPA scheme over an orthonormal cosine basis.
//!
//! A paper-faithful extension (the DPCopula paper leaves the choice of
//! marginal histogram method open): identical structure to [`crate::efpa`]
//! — keep the first `k` coefficients, pick `k` with the exponential
//! mechanism over the expected total error, perturb with Laplace noise —
//! but over the DCT-II basis. The implicit even extension removes the
//! wrap-around jump that makes the DFT compress skewed margins poorly,
//! which is exactly the regime DPCopula's census margins live in (see the
//! `ablation_margins` experiment).
//!
//! Privacy: the DCT is orthonormal, so the coefficient vector has L2
//! sensitivity 1; the `k` retained coefficients have L1 sensitivity at
//! most `sqrt(k)`, and Laplace noise `Lap(sqrt(k)/eps_p)` per coefficient
//! gives `eps_p`-DP. Selection spends `eps/2`, perturbation `eps/2`.

use crate::Publish1d;
use dpmech::{exponential_mechanism, laplace_noise, Epsilon};
use mathkit::dct::{dct2, dct3};
use rngkit::RngCore;

/// EFPA over the DCT-II basis.
#[derive(Debug, Clone, Copy, Default)]
pub struct EfpaDct;

impl EfpaDct {
    /// Expected injected noise energy when keeping `k` coefficients under
    /// perturbation budget `eps_p`: `k * Var(Lap(sqrt(k)/eps_p)) =
    /// 2 k^2 / eps_p^2`.
    fn noise_energy(k: usize, eps_p: f64) -> f64 {
        let k = k as f64;
        2.0 * k * k / (eps_p * eps_p)
    }
}

impl Publish1d for EfpaDct {
    fn publish(&self, counts: &[f64], epsilon: Epsilon, rng: &mut dyn RngCore) -> Vec<f64> {
        let a = counts.len();
        if a == 0 {
            return Vec::new();
        }
        if a == 1 {
            return vec![counts[0] + laplace_noise(rng, 1.0 / epsilon.value())];
        }
        let eps_select = epsilon.fraction(0.5);
        let eps_perturb = epsilon.fraction(0.5);

        let c = dct2(counts);
        let energy: Vec<f64> = c.iter().map(|v| v * v).collect();
        let total: f64 = energy.iter().sum();

        // Tail energy after keeping the first k coefficients.
        let mut kept = 0.0;
        let scores: Vec<f64> = (1..=a)
            .map(|k| {
                kept += energy[k - 1];
                let tail = (total - kept).max(0.0);
                -(tail + Self::noise_energy(k, eps_perturb.value())).sqrt()
            })
            .collect();
        let k = 1 + exponential_mechanism(rng, &scores, eps_select, 2.0);

        let lambda = (k as f64).sqrt() / eps_perturb.value();
        let mut ch = vec![0.0; a];
        for (dst, src) in ch.iter_mut().zip(&c).take(k) {
            *dst = src + laplace_noise(rng, lambda);
        }
        dct3(&ch)
    }

    fn name(&self) -> &'static str {
        "efpa-dct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efpa::Efpa;
    use crate::histogram::Histogram1D;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    /// A skewed, monotone-ish margin (income-like) — the case that
    /// motivates the DCT variant.
    fn skewed(a: usize, n: f64) -> Vec<f64> {
        let raw: Vec<f64> = (0..a)
            .map(|i| {
                let x = (i + 1) as f64;
                (-((x.ln() - 3.5) / 0.9).powi(2) / 2.0).exp() / x
            })
            .collect();
        let s: f64 = raw.iter().sum();
        raw.iter().map(|v| v * n / s).collect()
    }

    #[test]
    fn output_length_and_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(EfpaDct
            .publish(&[], Epsilon::new(1.0).unwrap(), &mut rng)
            .is_empty());
        assert_eq!(
            EfpaDct
                .publish(&[5.0], Epsilon::new(1.0).unwrap(), &mut rng)
                .len(),
            1
        );
        assert_eq!(
            EfpaDct
                .publish(&skewed(586, 1e5), Epsilon::new(1.0).unwrap(), &mut rng)
                .len(),
            586
        );
    }

    #[test]
    fn high_budget_reconstructs() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = skewed(256, 100_000.0);
        let out = EfpaDct.publish(&h, Epsilon::new(50.0).unwrap(), &mut rng);
        let l1: f64 = out.iter().zip(&h).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 1_500.0, "L1 error {l1}");
    }

    #[test]
    fn beats_dft_efpa_on_skewed_margin_for_range_queries() {
        use rngkit::Rng as _;
        let h = skewed(512, 100_000.0);
        let hist = Histogram1D::from_counts(h.clone());
        let eps = Epsilon::new(0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let queries: Vec<(u32, u32)> = (0..150)
            .map(|_| {
                let a = rng.gen_range(0..512u32);
                let b = rng.gen_range(0..512u32);
                (a.min(b), a.max(b))
            })
            .collect();
        let rel_err = |noisy: Vec<f64>, rng: &mut StdRng| -> f64 {
            let _ = rng;
            let nh = Histogram1D::from_counts(noisy);
            queries
                .iter()
                .map(|&(lo, hi)| {
                    let t = hist.range_sum(lo, hi);
                    (nh.range_sum(lo, hi) - t).abs() / t.max(100.0)
                })
                .sum::<f64>()
                / queries.len() as f64
        };
        let mut dct_err = 0.0;
        let mut dft_err = 0.0;
        for _ in 0..5 {
            dct_err += rel_err(EfpaDct.publish(&h, eps, &mut rng), &mut rng);
            dft_err += rel_err(Efpa.publish(&h, eps, &mut rng), &mut rng);
        }
        assert!(
            dct_err < dft_err,
            "DCT {dct_err} should beat DFT {dft_err} on a skewed margin"
        );
    }

    #[test]
    fn noise_scales_with_budget() {
        let h = skewed(128, 10_000.0);
        let mut rng = StdRng::seed_from_u64(4);
        let l1 = |eps: f64, rng: &mut StdRng| -> f64 {
            EfpaDct
                .publish(&h, Epsilon::new(eps).unwrap(), rng)
                .iter()
                .zip(&h)
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        let loose: f64 = (0..5).map(|_| l1(20.0, &mut rng)).sum();
        let tight: f64 = (0..5).map(|_| l1(0.02, &mut rng)).sum();
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }
}
